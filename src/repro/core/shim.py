"""Shim layers (§3.2.2).

Shims intercept application traffic at the socket layer and interact
with the agg boxes so applications need no modification:

- :class:`WorkerShim` redirects a worker's outgoing partial result to
  the first agg box along its path (or lets it pass through to the
  master when no box is on the path), splitting data across multiple
  aggregation trees by key hash;
- :class:`MasterShim` records per-request metadata (how many partial
  results the workers will produce), announces it to the boxes, collects
  the aggregated results, and *emulates empty partial results* from all
  but one worker so that unmodified master logic -- which expects one
  response per worker -- still works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.tree import AggregationTree
from repro.netsim.routing import stable_hash


@dataclass(frozen=True)
class Redirect:
    """Where a worker's partial result should go."""

    tree_index: int
    #: Entry box id, or None to pass through to the master unmodified.
    box_id: Optional[str]


@dataclass(frozen=True)
class ShimEvent:
    """One observable action of the shim fault-handling machinery.

    Kinds:
        ``retry``       a connect attempt to ``target`` timed out;
        ``unreachable`` a box exhausted its attempts and was rewired out;
        ``fallback``    a sender skipped dead boxes and landed on the
                        next reachable on-path box ``target``;
        ``bypass``      a sender ran out of on-path boxes and went
                        direct to the master;
        ``degraded``    a delivery into ``target`` was slowed by a
                        capacity degradation;
        ``churn``       a worker was churning and its emission waited;
        ``breaker-open``  the target's circuit breaker refused the send
                        without burning retry clock;
        ``deadline``    a send exhausted its total retry-time budget
                        (:attr:`repro.faults.RetryPolicy.deadline`) and
                        degraded early;
        ``nack``        a reachable box refused new work (shed window or
                        pressured health) and was planned out of the
                        request's tree;
        ``partition``   a worker was isolated from the master by an
                        active partition scope (``target`` names the
                        scope) and dropped from the request (partial
                        delivery);
        ``hedge``       a slow delivery into ``target`` was raced
                        against the hedge deadline instead of waited
                        out (the charged cost is capped at the
                        deadline plus one healthy send).
    """

    at: float
    kind: str
    source: str
    target: str
    attempt: int = 0
    detail: str = ""


class WorkerShim:
    """Socket-level interception on a worker host."""

    def __init__(self, host: str, worker_index: int,
                 trees: Sequence[AggregationTree]) -> None:
        if not trees:
            raise ValueError("worker shim needs at least one tree")
        self.host = host
        self.worker_index = worker_index
        self._trees = list(trees)
        for tree in self._trees:
            if worker_index not in tree.worker_entry:
                raise ValueError(
                    f"worker {worker_index} missing from tree {tree.key}"
                )

    def redirect_for(self, partition_key: str) -> Redirect:
        """Pick the aggregation tree (by key hash) and its entry box.

        Online services hash request identifiers; batch applications hash
        data keys (§3.1, "Multiple aggregation trees per application").
        """
        index = stable_hash(partition_key) % len(self._trees)
        tree = self._trees[index]
        return Redirect(tree_index=index,
                        box_id=tree.worker_entry[self.worker_index])

    def split(self, items: Sequence[Tuple[str, Any]]
              ) -> Dict[int, List[Any]]:
        """Partition keyed items across the trees (batch applications)."""
        parts: Dict[int, List[Any]] = {i: [] for i in range(len(self._trees))}
        for key, item in items:
            parts[stable_hash(key) % len(self._trees)].append(item)
        return parts

    def send(self, value: Any, transport: Any,
             partition_key: str = "") -> Tuple[Optional[str], Any, float]:
        """Send one partial result, degrading down the ladder (§3.1).

        ``transport`` carries the platform's connection semantics:
        ``connect(source, box_id) -> bool`` (burns retry/backoff clock on
        the first probe of a box), ``deliver_box(box_id, worker_index,
        value)``, ``deliver_master(worker_index, value)`` and
        ``record(kind, source, target)`` for ladder events.

        The ladder: try the entry box (with the transport's retries);
        unreachable boxes are skipped up the ancestor chain to the next
        on-path box (*fallback*); when no box remains, the partial goes
        direct to the master (*bypass*).  Returns whatever the transport
        delivery returned: ``(landing_box_or_None, emitted, bytes)``.
        """
        redirect = self.redirect_for(partition_key)
        tree = self._trees[redirect.tree_index]
        source = f"worker:{self.worker_index}"
        target = redirect.box_id
        fell_back = False
        while target is not None:
            if transport.connect(source, target):
                if fell_back:
                    transport.record("fallback", source, target)
                return transport.deliver_box(target, self.worker_index, value)
            fell_back = True
            target = tree.boxes[target].parent
        if fell_back:
            transport.record("bypass", source, "master")
        return transport.deliver_master(self.worker_index, value)


@dataclass
class _RequestEntry:
    """Master-side state about one in-flight request."""

    request_id: str
    n_workers: int
    expected_per_tree: Dict[int, int]
    received: Dict[int, Any] = field(default_factory=dict)
    direct_results: List[Tuple[int, Any]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        trees_done = all(
            index in self.received
            for index, expected in self.expected_per_tree.items()
            if expected > 0
        )
        return trees_done


class MasterShim:
    """Socket-level interception on the master host."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._requests: Dict[str, _RequestEntry] = {}

    def intercept_request(self, request_id: str,
                          trees: Sequence[AggregationTree],
                          excluded: Sequence[int] = (),
                          ) -> Dict[int, int]:
        """Record an outgoing request's metadata.

        Returns, per tree index, the number of partial results the boxes
        of that tree should expect at their leaves -- the announcement
        the shim sends to agg boxes (§3.2.2, "Partial result collection").

        ``excluded`` names worker indices that will *not* emit (workers
        behind a network partition, dropped by the platform's
        partial-delivery path): they are subtracted from each tree's
        expected count so partial requests still complete, and boxes
        never wait for partials that cannot arrive.
        """
        if request_id in self._requests:
            raise ValueError(f"duplicate request id {request_id!r}")
        if not trees:
            raise ValueError("request needs at least one tree")
        n_workers = len(trees[0].worker_entry)
        skipped = set(excluded)
        expected = {
            tree.tree_index: sum(
                1 for worker, entry in tree.worker_entry.items()
                if entry is not None and worker not in skipped
            )
            for tree in trees
        }
        self._requests[request_id] = _RequestEntry(
            request_id=request_id,
            n_workers=n_workers,
            expected_per_tree=expected,
        )
        return expected

    def deliver_aggregate(self, request_id: str, tree_index: int,
                          value: Any) -> None:
        """An aggregation tree's root result arrived."""
        entry = self._entry(request_id)
        if tree_index in entry.received:
            raise ValueError(
                f"duplicate aggregate for {request_id!r} tree {tree_index}"
            )
        entry.received[tree_index] = value

    def deliver_direct(self, request_id: str, worker_index: int,
                       value: Any) -> None:
        """A worker's unaggregated partial result arrived (no on-path box)."""
        entry = self._entry(request_id)
        entry.direct_results.append((worker_index, value))

    def is_complete(self, request_id: str) -> bool:
        return self._entry(request_id).complete

    def emulate_worker_responses(self, request_id: str,
                                 merge: Any = None) -> List[Tuple[int, Any]]:
        """Produce one response per worker for the unmodified master.

        All aggregated data is attached to the lowest worker index; every
        other worker yields an *empty* partial result.  Safe because the
        aggregation function is associative and commutative (§3.2.2,
        "Empty partial results").  ``merge`` combines the per-tree
        aggregates when the application used multiple trees (the master's
        final aggregation step); with one tree it may be None.
        """
        entry = self._entry(request_id)
        if not entry.complete:
            raise RuntimeError(f"request {request_id!r} still in flight")
        aggregates = [entry.received[i] for i in sorted(entry.received)]
        direct = [value for _, value in sorted(entry.direct_results)]
        parts = aggregates + direct
        if len(parts) == 1:
            combined = parts[0]
        else:
            if merge is None:
                raise ValueError(
                    "multiple aggregates need a merge function at the master"
                )
            combined = merge(parts)
        responses: List[Tuple[int, Any]] = [(0, combined)]
        responses.extend((i, None) for i in range(1, entry.n_workers))
        return responses

    def pending_requests(self) -> List[str]:
        return sorted(
            rid for rid, entry in self._requests.items() if not entry.complete
        )

    def _entry(self, request_id: str) -> _RequestEntry:
        entry = self._requests.get(request_id)
        if entry is None:
            raise KeyError(f"unknown request {request_id!r}")
        return entry
