"""Failure detection and recovery (§3.1, "Handling failures").

A lightweight detector runs at every agg box and at the master's shim,
monitoring its *downstream* boxes.  When node N detects that box F
failed, it contacts F's children (boxes or workers) and instructs them
to redirect future partial results to N itself; N also tells them which
results were already processed so nothing is resent (duplicate
suppression, which the box runtime enforces via its processed-sources
set).

The structural half -- removing F from a tree and re-parenting its
children -- is :func:`rewire_failed_box`; the detector half is a small
heartbeat monitor usable in both the functional platform and tests.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.tree import AggregationTree


def rewire_failed_box(tree: AggregationTree,
                      failed_box: str) -> AggregationTree:
    """Return a copy of ``tree`` with ``failed_box`` removed.

    The failed box's children (boxes and directly-attached workers) are
    re-parented to its own parent -- the upstream node N that detected
    the failure (the master when F was a root).  Lanes are joined so the
    rewired segments still follow the tree's switch lane.
    """
    if failed_box not in tree.boxes:
        raise KeyError(f"box {failed_box!r} is not part of tree {tree.key}")
    rewired = copy.deepcopy(tree)
    failed = rewired.boxes.pop(failed_box)
    parent_id = failed.parent

    # The lane from a child continues through the failed box's lane
    # (minus the duplicated junction switch).
    def joined_lane(child_lane: Tuple[str, ...]) -> Tuple[str, ...]:
        return child_lane + failed.lane_to_parent[1:]

    if parent_id is not None:
        parent = rewired.boxes[parent_id]
        parent.children.remove(failed_box)

    for child_id in failed.children:
        child = rewired.boxes[child_id]
        child.parent = parent_id
        child.lane_to_parent = joined_lane(child.lane_to_parent)
        if parent_id is not None:
            rewired.boxes[parent_id].children.append(child_id)

    for worker_index in failed.direct_workers:
        if parent_id is None:
            # Workers now ship straight to the master.
            rewired.worker_entry[worker_index] = None
            rewired.worker_lane[worker_index] = joined_lane(
                rewired.worker_lane[worker_index]
            )
        else:
            rewired.worker_entry[worker_index] = parent_id
            rewired.worker_lane[worker_index] = joined_lane(
                rewired.worker_lane[worker_index]
            )
            rewired.boxes[parent_id].direct_workers.append(worker_index)

    return rewired


@dataclass
class FailureDetector:
    """Heartbeat-based monitoring of downstream boxes.

    Every monitored box must produce a heartbeat at least every
    ``timeout`` seconds; :meth:`missing` reports the boxes considered
    failed at a given time.  Deterministic (driven by explicit clocks)
    so tests and the emulator can exercise exact timings.
    """

    timeout: float = 1.0
    _last_seen: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def watch(self, box_id: str, now: float = 0.0) -> None:
        """Start monitoring a downstream box."""
        self._last_seen.setdefault(box_id, now)

    def heartbeat(self, box_id: str, now: float) -> None:
        """Record a heartbeat from ``box_id`` at local time ``now``.

        Heartbeats are *clamped* against clock regressions: a heartbeat
        stamped earlier than the last one seen (a skewed or rewound
        sender clock) keeps the newer timestamp instead of silently
        rewinding the box towards a spurious timeout.  Legitimate skew
        (see ``clock-skew`` fault events) thus delays detection of a
        *silent* box but never fails a *live* one.
        """
        if box_id not in self._last_seen:
            raise KeyError(f"not watching box {box_id!r}")
        self._last_seen[box_id] = max(self._last_seen[box_id], now)

    def missing(self, now: float) -> List[str]:
        """Boxes whose heartbeat is overdue at time ``now``.

        The boundary is strict: a box is missing only when *more* than
        ``timeout`` seconds have passed since its last heartbeat, so a
        heartbeat landing exactly on the deadline still counts as alive
        (``now - seen > timeout``, not ``>=``).
        """
        return sorted(
            box_id for box_id, seen in self._last_seen.items()
            if now - seen > self.timeout
        )

    def forget(self, box_id: str) -> None:
        self._last_seen.pop(box_id, None)

    def watched(self) -> Set[str]:
        return set(self._last_seen)
