"""The NetAgg platform core (§3 of the paper).

- :mod:`repro.core.tree` -- construction of distributed aggregation
  trees over the agg boxes of a topology (switch lanes, box assignment,
  multiple disjoint trees per application);
- :mod:`repro.core.shim` -- the edge-server shim layers: transparent
  redirection, request metadata, partial-result collection and
  empty-result emulation at the master;
- :mod:`repro.core.platform` -- the platform object: box runtimes wired
  to a topology, application registration, functional end-to-end request
  execution;
- :mod:`repro.core.failure` -- failure detection and recovery (child
  rewiring + duplicate suppression);
- :mod:`repro.core.straggler` -- straggler mitigation (per-request
  redirect, permanent failover for repeat offenders);
- :mod:`repro.core.breaker` -- per-target circuit breakers on the shim
  send path (closed/open/half-open on the virtual clock);
- :mod:`repro.core.admission` -- admission control at the master shim
  (per-tenant token buckets, queue-depth NACKs);
- :mod:`repro.core.overload` -- the platform's overload-control
  configuration tying queues, breakers and admission together;
- :mod:`repro.core.partition` -- partition tolerance: gray-failure
  detection (seeded-EWMA latency outliers), hedged deliveries, and
  partial-aggregate completeness records;
- :mod:`repro.core.optimizer` -- the self-healing control plane: a
  deterministic audit -> strategy -> action-plan -> apply loop that
  migrates subtrees off sick boxes with two-phase drain-then-cutover.
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionNack,
    AdmissionPolicy,
    TokenBucket,
)
from repro.core.breaker import (
    BreakerBoard,
    BreakerPolicy,
    BreakerTransition,
    CircuitBreaker,
)
from repro.core.failure import FailureDetector, rewire_failed_box
from repro.core.multicast import (
    MulticastTree,
    build_multicast_tree,
    multicast_link_copies,
    plan_multicast_flows,
    plan_unicast_flows,
)
from repro.core.optimizer import (
    Action,
    ActionPlan,
    ApplyResult,
    Auditor,
    AuditReport,
    OptimizerLoop,
    PlanApplier,
    StrategyConfig,
    get_strategy,
)
from repro.core.overload import OverloadConfig
from repro.core.partition import (
    Completeness,
    GrayDetector,
    GrayPolicy,
    PartitionPolicy,
    SubtreeUnreachable,
)
from repro.core.platform import NetAggPlatform
from repro.core.recovery import (
    InFlightRequest,
    MigrationAborted,
    MigrationLog,
    RecoveryLog,
)
from repro.core.shim import MasterShim, WorkerShim
from repro.core.sockets import (
    NetAggSocketFactory,
    SocketFactory,
)
from repro.core.straggler import StragglerMonitor, StragglerPolicy
from repro.core.tree import AggregationTree, BoxVertex, TreeBuilder

__all__ = [
    "AggregationTree",
    "BoxVertex",
    "TreeBuilder",
    "MasterShim",
    "WorkerShim",
    "NetAggPlatform",
    "FailureDetector",
    "rewire_failed_box",
    "StragglerMonitor",
    "StragglerPolicy",
    "InFlightRequest",
    "RecoveryLog",
    "MigrationAborted",
    "MigrationLog",
    "Action",
    "ActionPlan",
    "ApplyResult",
    "Auditor",
    "AuditReport",
    "OptimizerLoop",
    "PlanApplier",
    "StrategyConfig",
    "get_strategy",
    "CircuitBreaker",
    "BreakerBoard",
    "BreakerPolicy",
    "BreakerTransition",
    "AdmissionController",
    "AdmissionNack",
    "AdmissionPolicy",
    "TokenBucket",
    "OverloadConfig",
    "Completeness",
    "GrayDetector",
    "GrayPolicy",
    "PartitionPolicy",
    "SubtreeUnreachable",
    "SocketFactory",
    "NetAggSocketFactory",
    "MulticastTree",
    "build_multicast_tree",
    "plan_multicast_flows",
    "plan_unicast_flows",
    "multicast_link_copies",
]
