"""On-path multicast -- the paper's §5 extension, implemented.

"Application-specific middleboxes can implement efficient versions of
multicast or broadcast protocols (one-to-many); this would enable
further performance improvement of iterative applications with a
distributed broadcast phase, such as graph processing or logistic
regression."

This module reuses the aggregation machinery in reverse: the same
deterministic lanes and box choices build a *distribution tree* rooted
at a source host whose leaves are the receivers.  Each box duplicates
its input once per downstream branch, so a payload crosses every link
at most once -- versus unicast, which sends one copy per receiver over
the source's edge link and the shared core.

:func:`plan_multicast_flows` prices a distribution against the flow
simulator; :func:`multicast_link_copies` exposes the per-link copy
counts the savings come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aggregation.base import lane_links
from repro.core.tree import AggregationTree, TreeBuilder
from repro.netsim.simulator import FlowSpec
from repro.topology.base import Topology


@dataclass
class MulticastTree:
    """A distribution tree: the aggregation tree with edges reversed."""

    source: str
    receivers: Tuple[str, ...]
    tree: AggregationTree

    def fan_out_of(self, box_id: str) -> int:
        vertex = self.tree.boxes[box_id]
        return len(vertex.children) + len(vertex.direct_workers)


def build_multicast_tree(
    topo: Topology,
    key: str,
    source: str,
    receivers: Sequence[str],
    tree_index: int = 0,
) -> MulticastTree:
    """Build the distribution tree from ``source`` to ``receivers``.

    Construction runs the aggregation-tree builder with the source in
    the master role and the receivers as "workers", then interprets
    parent->child edges as the downstream direction.
    """
    builder = TreeBuilder(topo)
    tree = builder.build(key, source, list(receivers), tree_index)
    return MulticastTree(source=source, receivers=tuple(receivers),
                         tree=tree)


def plan_multicast_flows(
    topo: Topology,
    multicast: MulticastTree,
    payload_bytes: float,
    flow_prefix: str = "mc",
    start_time: float = 0.0,
    chunks: int = 8,
) -> List[FlowSpec]:
    """Flow specs for one multicast distribution.

    One segment per tree edge per *chunk*: boxes forward each chunk as
    soon as it has arrived (cut-through per chunk), so the distribution
    pipelines down the tree instead of serialising a full payload copy
    per level.  Receivers with no on-path box get direct unicast copies.
    """
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    tree = multicast.tree
    specs: List[FlowSpec] = []
    chunk_bytes = payload_bytes / chunks
    #: (box id, chunk) -> flow id that delivered the chunk to the box.
    in_flow: Dict[Tuple[str, int], str] = {}

    def deps(*flow_ids) -> Tuple[str, ...]:
        return tuple(f for f in flow_ids if f is not None)

    def prev_chunk(flow_id: str, chunk: int) -> Optional[str]:
        # Same-edge serialisation: chunk c leaves only after chunk c-1,
        # which is what pipelines the distribution down the tree.
        if chunk == 0:
            return None
        return flow_id.rsplit(":c", 1)[0] + f":c{chunk - 1}"

    for chunk in range(chunks):
        # Source -> root boxes.
        for root in tree.roots():
            vertex = tree.boxes[root]
            flow_id = f"{flow_prefix}:down:{root}:c{chunk}"
            # The root's lane_to_parent runs from its switch to the
            # source's ToR; downstream traffic traverses it in reverse.
            lane = tuple(reversed(vertex.lane_to_parent))
            specs.append(FlowSpec(
                flow_id=flow_id,
                size=chunk_bytes,
                path=lane_links((multicast.source,) + lane)
                + (vertex.info.downlink, vertex.info.proc_link),
                start_time=start_time,
                kind="multicast",
                children=deps(prev_chunk(flow_id, chunk)),
            ))
            in_flow[(root, chunk)] = flow_id

        # Box -> child boxes, breadth-first.
        frontier = list(tree.roots())
        while frontier:
            box_id = frontier.pop()
            vertex = tree.boxes[box_id]
            for child in vertex.children:
                child_vertex = tree.boxes[child]
                flow_id = f"{flow_prefix}:down:{child}:c{chunk}"
                lane = tuple(reversed(child_vertex.lane_to_parent))
                specs.append(FlowSpec(
                    flow_id=flow_id,
                    size=chunk_bytes,
                    path=(vertex.info.uplink,)
                    + lane_links(lane)
                    + (child_vertex.info.downlink,
                       child_vertex.info.proc_link),
                    start_time=start_time,
                    kind="multicast",
                    children=deps(in_flow[(box_id, chunk)],
                                  prev_chunk(flow_id, chunk)),
                ))
                in_flow[(child, chunk)] = flow_id
                frontier.append(child)

        # Box -> attached receivers; direct receivers from the source.
        for index, receiver in enumerate(multicast.receivers):
            entry = tree.worker_entry[index]
            flow_id = f"{flow_prefix}:recv:{index}:c{chunk}"
            if entry is None:
                lane = tuple(reversed(tree.worker_lane[index]))
                specs.append(FlowSpec(
                    flow_id=flow_id,
                    size=chunk_bytes,
                    path=lane_links(
                        (multicast.source,) + lane + (receiver,)
                    ),
                    start_time=start_time,
                    kind="multicast",
                    children=deps(prev_chunk(flow_id, chunk)),
                ))
                continue
            vertex = tree.boxes[entry]
            lane = tuple(reversed(tree.worker_lane[index]))
            specs.append(FlowSpec(
                flow_id=flow_id,
                size=chunk_bytes,
                path=(vertex.info.uplink,) + lane_links(lane + (receiver,)),
                start_time=start_time,
                kind="multicast",
                children=deps(in_flow[(entry, chunk)],
                              prev_chunk(flow_id, chunk)),
            ))
    return specs


def plan_unicast_flows(
    topo: Topology,
    source: str,
    receivers: Sequence[str],
    payload_bytes: float,
    flow_prefix: str = "uc",
    start_time: float = 0.0,
) -> List[FlowSpec]:
    """The baseline: one independent unicast copy per receiver."""
    from repro.netsim.routing import EcmpRouter

    router = EcmpRouter()
    specs = []
    for index, receiver in enumerate(receivers):
        flow_id = f"{flow_prefix}:{index}"
        path = router.choose(topo.equal_cost_paths(source, receiver),
                             flow_id)
        specs.append(FlowSpec(
            flow_id=flow_id,
            size=payload_bytes,
            path=path,
            start_time=start_time,
            kind="unicast",
        ))
    return specs


def multicast_link_copies(specs: Sequence[FlowSpec],
                          payload_bytes: float,
                          shared_only: bool = False) -> Dict[str, float]:
    """How many payload-equivalents each wire link carries.

    Chunked flows count fractionally (bytes on the link divided by the
    payload size), so chunking does not distort the comparison.  With
    ``shared_only`` the dedicated box attachment links (never contended
    by other traffic) are excluded -- the savings that matter are on
    *shared* host and inter-switch links.
    """
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    copies: Dict[str, float] = {}
    for spec in specs:
        for link in spec.path:
            if link.startswith("proc:"):
                continue
            if shared_only and "box:" in link:
                continue
            copies[link] = copies.get(link, 0.0) + spec.size / payload_bytes
    return copies
