"""Socket-level traffic interception (§3.2.2, "Network interception").

The prototype wraps Java's socket class via ``SocketImplFactory`` so
applications "transparently generate an instance of the custom NetAgg
socket class when a new socket is created".  This module is the Python
analogue: an in-memory socket API (connect/send/recv/close) plus a
factory switch.  Applications written against :class:`SocketFactory`
need *zero changes* to run on NetAgg -- installing
:class:`NetAggSocketFactory` reroutes their partial-result connections
into agg boxes while control connections pass through untouched.

The demo application flow:

- a worker ``connect()``s to the master and ``send()``s framed partial
  results;
- with the plain factory, bytes arrive at the master's inbox;
- with the NetAgg factory, the shim classifies the connection (data
  plane vs control plane by port), redirects data-plane bytes into the
  entry agg box of the worker's aggregation tree, and the master's
  socket instead receives the box-built aggregate plus emulated empty
  results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.platform import NetAggPlatform
from repro.wire.framing import ChunkReassembler, frame

#: Well-known ports of the demo protocol: DATA carries partial results
#: (the shim redirects it), CONTROL carries everything else.
DATA_PORT = 9410
CONTROL_PORT = 9411


class SocketError(RuntimeError):
    """Connection-level failures (closed endpoints, unknown hosts)."""


@dataclass
class Endpoint:
    """One application endpoint: per-port inboxes of received frames."""

    host: str
    inboxes: Dict[int, Deque[Tuple[str, bytes]]] = field(
        default_factory=dict
    )

    def inbox(self, port: int) -> Deque[Tuple[str, bytes]]:
        return self.inboxes.setdefault(port, deque())

    def recv(self, port: int) -> Optional[Tuple[str, bytes]]:
        """Next (source host, frame payload), or None when empty."""
        box = self.inbox(port)
        return box.popleft() if box else None


class Connection:
    """One logical connection created by a socket factory."""

    def __init__(self, src: str, dst: str, port: int,
                 deliver: Callable[[str, str, int, bytes], None]) -> None:
        self.src = src
        self.dst = dst
        self.port = port
        self._deliver = deliver
        self._reassembler = ChunkReassembler()
        self._closed = False
        self.bytes_sent = 0

    def send(self, data: bytes) -> int:
        """Stream bytes; complete frames are delivered to the endpoint."""
        if self._closed:
            raise SocketError(f"send on closed connection to {self.dst}")
        self.bytes_sent += len(data)
        for payload in self._reassembler.feed(data):
            self._deliver(self.src, self.dst, self.port, payload)
        return len(data)

    def send_frame(self, payload: bytes) -> int:
        """Convenience: frame and send one payload."""
        return self.send(frame(payload))

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class SocketFactory:
    """The plain factory: bytes go where the application pointed them."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, Endpoint] = {}

    def endpoint(self, host: str) -> Endpoint:
        ep = self._endpoints.get(host)
        if ep is None:
            ep = Endpoint(host=host)
            self._endpoints[host] = ep
        return ep

    def connect(self, src: str, dst: str, port: int) -> Connection:
        self.endpoint(dst)  # materialise the destination
        return Connection(src, dst, port, self._deliver)

    def _deliver(self, src: str, dst: str, port: int,
                 payload: bytes) -> None:
        self.endpoint(dst).inbox(port).append((src, payload))


class NetAggSocketFactory(SocketFactory):
    """The shim: data-plane connections are redirected into agg boxes.

    The application code is identical -- it still ``connect()``s to the
    master and sends its frames.  The factory intercepts DATA_PORT
    connections whose destination is a registered request's master,
    feeds the bytes into the worker's entry box instead, and delivers
    the aggregate to the master when the boxes finish, alongside
    emulated empty frames from the other workers (§3.2.2).
    """

    def __init__(self, platform: NetAggPlatform, app: str) -> None:
        super().__init__()
        self._platform = platform
        self._app = app
        #: (master, request) -> request routing state.
        self._requests: Dict[Tuple[str, str], "_RequestRouting"] = {}

    # -- request registration (done by the master shim) ---------------------

    def register_request(self, request_id: str, master: str,
                         worker_hosts: List[str],
                         n_trees: int = 1) -> None:
        """The master's shim announces a scatter (§3.2.2 metadata)."""
        key = (master, request_id)
        if key in self._requests:
            raise SocketError(f"duplicate request {request_id!r}")
        trees = self._platform.build_trees(request_id, master,
                                           worker_hosts, n_trees)
        from repro.netsim.routing import stable_hash

        tree = trees[stable_hash(request_id) % len(trees)]
        routing = _RequestRouting(
            request_id=request_id,
            master=master,
            worker_hosts=list(worker_hosts),
            tree=tree,
        )
        self._requests[key] = routing
        for box_id, vertex in tree.boxes.items():
            expected = len(vertex.direct_workers) + len(vertex.children)
            self._platform.box_runtime(box_id).announce(
                self._app, routing.box_request, expected
            )

    # -- interception --------------------------------------------------------

    def connect(self, src: str, dst: str, port: int) -> Connection:
        if port != DATA_PORT:
            return super().connect(src, dst, port)
        return Connection(src, dst, port, self._redirect)

    def _redirect(self, src: str, dst: str, port: int,
                  payload: bytes) -> None:
        routing = self._find_routing(src, dst)
        if routing is None:
            # Not partial-result traffic we know about: pass through.
            super()._deliver(src, dst, port, payload)
            return
        index = routing.worker_hosts.index(src)
        entry = routing.tree.worker_entry[index]
        if entry is None:
            super()._deliver(src, dst, port, payload)
            routing.direct_done += 1
            self._maybe_finish(routing)
            return
        ready = self._platform.box_runtime(entry).submit_chunk(
            self._app, routing.box_request, f"worker:{index}",
            frame(payload),
        )
        if ready is not None:
            self._climb(routing, entry, ready)
        self._maybe_finish(routing)

    # -- internals -----------------------------------------------------------

    def _find_routing(self, src: str, dst: str) -> Optional["_RequestRouting"]:
        for (master, _), routing in self._requests.items():
            if master == dst and src in routing.worker_hosts and \
                    not routing.delivered:
                return routing
        return None

    def _climb(self, routing: "_RequestRouting", box_id: str,
               ready) -> None:
        """Propagate an emitted aggregate towards the master."""
        vertex = routing.tree.boxes[box_id]
        if vertex.parent is None:
            routing.aggregates.append(ready.payload)
            return
        parent_rt = self._platform.box_runtime(vertex.parent)
        emitted = parent_rt.submit_chunk(
            self._app, routing.box_request, f"box:{box_id}",
            frame(ready.payload),
        )
        if emitted is not None:
            self._climb(routing, vertex.parent, emitted)

    def _maybe_finish(self, routing: "_RequestRouting") -> None:
        """Deliver to the master once every root aggregate is in."""
        if routing.delivered:
            return
        want_roots = len(routing.tree.roots())
        want_direct = len(routing.tree.direct_workers())
        if len(routing.aggregates) < want_roots or \
                routing.direct_done < want_direct:
            return
        routing.delivered = True
        master_inbox = self.endpoint(routing.master).inbox(DATA_PORT)
        # All aggregated data attributed to the first worker; the rest
        # send empty frames (the master's unmodified gather loop still
        # sees one response per worker).
        for i, host in enumerate(routing.worker_hosts):
            if i == 0:
                for payload in routing.aggregates:
                    master_inbox.append((host, payload))
            elif routing.tree.worker_entry[i] is not None:
                master_inbox.append((host, b""))


@dataclass
class _RequestRouting:
    request_id: str
    master: str
    worker_hosts: List[str]
    tree: Any
    aggregates: List[bytes] = field(default_factory=list)
    direct_done: int = 0
    delivered: bool = False

    @property
    def box_request(self) -> str:
        return f"{self.request_id}@t{self.tree.tree_index}"
