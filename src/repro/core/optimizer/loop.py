"""The control loop: audit -> strategy -> action-plan -> apply.

:class:`OptimizerLoop` ties the stages together behind one ``tick(at)``
call.  Each tick is deterministic and synchronous: the auditor
snapshots the live feeds, the selected strategy turns the report into
an :class:`~repro.core.optimizer.actions.ActionPlan`, and the applier
executes it through the drain-then-cutover protocol.  A ``dry_run``
loop stops after planning -- useful for cost previews and for tests
asserting strategy decisions without platform side effects.

The loop never sleeps or schedules itself; the caller decides the
cadence (an experiment ticks it per job arrival, the chaos suite per
generated step), which keeps every layer on its own virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.optimizer.actions import ActionPlan
from repro.core.optimizer.apply import ApplyResult, PlanApplier
from repro.core.optimizer.audit import Auditor, AuditReport
from repro.core.optimizer.strategies import (
    Strategy,
    StrategyConfig,
    get_strategy,
)
from repro.obs import METRICS


@dataclass(frozen=True)
class TickResult:
    """Everything one tick produced (report, plan, what was applied)."""

    report: AuditReport
    plan: ActionPlan
    result: Optional[ApplyResult] = None  #: None on dry-run ticks

    @property
    def acted(self) -> bool:
        return self.result is not None and bool(self.result.applied) \
            and not self.plan.is_noop


class OptimizerLoop:
    """One self-healing control loop over one platform."""

    def __init__(
        self,
        auditor: Auditor,
        strategy: Union[str, Strategy],
        applier: PlanApplier,
        config: Optional[StrategyConfig] = None,
        dry_run: bool = False,
    ) -> None:
        self._auditor = auditor
        self._strategy = (get_strategy(strategy)
                          if isinstance(strategy, str) else strategy)
        self._applier = applier
        self._config = config or StrategyConfig()
        self._dry_run = dry_run
        self._m_ticks = METRICS.counter("optimizer.ticks")
        self.history: list = []  #: TickResult per tick, oldest first

    @property
    def config(self) -> StrategyConfig:
        return self._config

    def tick(self, at: float, in_flight=None) -> TickResult:
        """Run one audit/strategy/apply cycle at virtual time ``at``."""
        report = self._auditor.audit(at)
        plan = self._strategy(report, self._config)
        result = None
        if not self._dry_run:
            result = self._applier.apply(plan, in_flight=in_flight)
        self._m_ticks.inc()
        tick = TickResult(report=report, plan=plan, result=result)
        self.history.append(tick)
        return tick
