"""Typed actions the optimizer strategies emit.

An :class:`Action` is one atomic operation on the platform -- migrate a
box's subtree upstream, drain a box out of future trees, return a
drained box to the planner, or do nothing -- plus a dry-run cost
estimate, so strategies can be compared (and capped) before anything
touches the data path.  An :class:`ActionPlan` is one strategy's output
for one audit: an ordered, deterministic batch of actions stamped with
the strategy name and virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

MIGRATE = "migrate"
DRAIN = "drain"
UNDRAIN = "undrain"
NOOP = "noop"

ACTION_KINDS = (MIGRATE, DRAIN, UNDRAIN, NOOP)


@dataclass(frozen=True)
class Action:
    """One optimizer action.

    Attributes:
        kind: one of :data:`ACTION_KINDS`.
        target: box id the action applies to (empty for ``noop``).
        reason: why the strategy chose it (audited metric + threshold),
            carried onto the ``optimizer.action`` trace instant so
            ``python -m repro analyze`` can attribute the decision.
        cost: dry-run estimate of the work the action moves -- for
            migrations/drains, the partials that would be parked and
            replayed; zero for undrain/noop.  A unitless proxy used to
            rank and cap actions, not a promise of bytes.
    """

    kind: str
    target: str = ""
    reason: str = ""
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.kind != NOOP and not self.target:
            raise ValueError(f"{self.kind} action needs a target")
        if self.cost < 0:
            raise ValueError("cost must be >= 0")


@dataclass(frozen=True)
class ActionPlan:
    """One strategy's ordered action batch for one audit."""

    strategy: str
    at: float
    actions: Tuple[Action, ...] = ()

    @property
    def is_noop(self) -> bool:
        return all(a.kind == NOOP for a in self.actions)

    @property
    def cost(self) -> float:
        return sum(a.cost for a in self.actions)

    def of_kind(self, kind: str) -> Tuple[Action, ...]:
        return tuple(a for a in self.actions if a.kind == kind)


def noop_plan(strategy: str, at: float, reason: str = "") -> ActionPlan:
    """The empty plan every strategy returns when nothing is wrong."""
    return ActionPlan(strategy=strategy, at=at,
                      actions=(Action(kind=NOOP, reason=reason),))
