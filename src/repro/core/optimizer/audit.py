"""The audit stage: one consistent snapshot of platform health.

An :class:`Auditor` is wired to *providers* -- callables returning the
live feeds the control loop consumes -- and folds them into a frozen
:class:`AuditReport` per tick:

- ``health``: per-box heartbeats (queue depth, health state including
  the platform-synthesised ``suspect`` for stale heartbeats), usually
  :meth:`repro.core.platform.NetAggPlatform.health_report`;
- ``utilization``: per-box offered-load fraction of processing
  capacity, usually derived from the simulator's ``link.util:*`` epoch
  samples (PR 5) or an experiment's own load accounting;
- ``drained``: boxes currently drained by earlier optimizer actions,
  usually :meth:`~repro.core.platform.NetAggPlatform.drained_boxes`;
- ``fct_p99``: tail flow-completion time, when the caller tracks one;
- ``alerts``: SLO burn-rate alerts fired since the last tick, usually
  :meth:`repro.obs.live.LiveTelemetry.drain_alerts` -- the live
  telemetry plane's observe -> alert -> act hook into the control
  loop.

Shim-retry pressure comes straight from the live metrics registry: the
auditor snapshots ``platform.shim.retry`` each tick and reports the
delta, so a retry storm between two audits is visible without any
per-request bookkeeping.  Every audit emits an ``optimizer.audit`` span
and bumps ``optimizer.audits``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.aggbox.overload import FAILED, PRESSURED, SHEDDING, SUSPECT
from repro.obs import METRICS, get_tracer


@dataclass(frozen=True)
class BoxAudit:
    """One box's audited state at one tick."""

    box_id: str
    state: str            #: heartbeat state (may be ``suspect``)
    pending: int          #: buffered partials across apps
    utilization: float    #: offered-load fraction of proc capacity
    sheds: int            #: cumulative shed decisions
    flushes: int          #: cumulative pressure-relief flushes
    drained: bool = False #: currently drained by the optimizer

    @property
    def distrusted(self) -> bool:
        """States the optimizer must not route new work towards."""
        return self.state in (PRESSURED, SHEDDING, FAILED, SUSPECT)


@dataclass(frozen=True)
class AuditReport:
    """Everything one optimizer tick knows about the platform."""

    at: float
    boxes: Tuple[BoxAudit, ...]
    retry_delta: int = 0         #: shim retries since the last audit
    fct_p99: Optional[float] = None
    #: SLO burn-rate alerts fired since the last audit (each an object
    #: with ``key``/``at``/``fast_burn``/``slow_burn``, typically a
    #: :class:`repro.obs.live.BurnRateAlert`).
    alerts: Tuple[object, ...] = ()

    def box(self, box_id: str) -> BoxAudit:
        for audit in self.boxes:
            if audit.box_id == box_id:
                return audit
        raise KeyError(f"no audit for box {box_id!r}")

    def in_state(self, *states: str) -> Tuple[BoxAudit, ...]:
        return tuple(a for a in self.boxes if a.state in states)

    def by_utilization(self) -> Tuple[BoxAudit, ...]:
        """Hottest first; ties broken by box id for determinism."""
        return tuple(sorted(self.boxes,
                            key=lambda a: (-a.utilization, a.box_id)))


class Auditor:
    """Builds :class:`AuditReport` snapshots from live providers."""

    def __init__(
        self,
        health: Callable[[], Dict[str, object]],
        utilization: Optional[Callable[[], Dict[str, float]]] = None,
        drained: Optional[Callable[[], set]] = None,
        fct_p99: Optional[Callable[[], Optional[float]]] = None,
        alerts: Optional[Callable[[], Sequence[object]]] = None,
    ) -> None:
        self._health = health
        self._utilization = utilization
        self._drained = drained
        self._fct_p99 = fct_p99
        self._alerts = alerts
        self._retry_counter = METRICS.counter("platform.shim.retry")
        self._m_audits = METRICS.counter("optimizer.audits")
        self._m_alerted = METRICS.counter("optimizer.audits.alerted")
        self._last_retries: Optional[int] = None

    def audit(self, at: float) -> AuditReport:
        """One consistent snapshot at virtual time ``at``."""
        tracer = get_tracer()
        span = tracer.begin("optimizer.audit", at, layer="optimizer") \
            if tracer.enabled else 0
        try:
            heartbeats = self._health()
            util = self._utilization() if self._utilization else {}
            drained = self._drained() if self._drained else set()
            retries = int(self._retry_counter.value)
            delta = (retries - self._last_retries
                     if self._last_retries is not None else 0)
            self._last_retries = retries
            boxes = tuple(
                BoxAudit(
                    box_id=box_id,
                    state=beat.state,
                    pending=beat.pending,
                    utilization=float(util.get(box_id, 0.0)),
                    sheds=beat.sheds,
                    flushes=beat.flushes,
                    drained=box_id in drained,
                )
                for box_id, beat in sorted(heartbeats.items())
            )
            alerts = tuple(self._alerts()) if self._alerts else ()
            report = AuditReport(
                at=at,
                boxes=boxes,
                retry_delta=delta,
                fct_p99=self._fct_p99() if self._fct_p99 else None,
                alerts=alerts,
            )
            self._m_audits.inc()
            if alerts:
                self._m_alerted.inc()
            return report
        finally:
            if span:
                tracer.end(span, at)
