"""``repro.core.optimizer`` -- the self-healing control plane.

A deterministic **audit -> strategy -> action-plan -> apply** loop that
turns the reactive overload machinery (PR 3) and the observability
feeds (PR 4/5) into closed-loop self-healing, in the spirit of
utilization-aware placement of scarce aggregation resources (SOAR,
arXiv 2110.14224):

- :mod:`~repro.core.optimizer.audit` -- snapshot heartbeats, queue
  depths, utilization and shim-retry deltas into a frozen
  :class:`AuditReport`;
- :mod:`~repro.core.optimizer.strategies` -- pluggable, deterministic
  policies (``stabilize_p99``, ``consolidate_underused``,
  ``rebalance_hot_edges``) emitting typed :class:`Action` batches with
  dry-run cost estimates;
- :mod:`~repro.core.optimizer.apply` -- the two-phase
  drain-then-cutover executor (partials parked and replayed, rollback
  on cutover-guard failure, §3.1 rewiring for the tree changes);
- :mod:`~repro.core.optimizer.loop` -- :class:`OptimizerLoop.tick`
  tying the stages together on the caller's virtual clock.

Everything the loop does is traced (``optimizer.*`` spans/instants)
and counted (``optimizer.audits`` / ``.actions`` / ``.migrations`` /
``.rollbacks`` ...), so ``python -m repro analyze`` attributes every
applied action.
"""

from repro.core.optimizer.actions import (
    ACTION_KINDS,
    DRAIN,
    MIGRATE,
    NOOP,
    UNDRAIN,
    Action,
    ActionPlan,
    noop_plan,
)
from repro.core.optimizer.apply import (
    APPLIED,
    FAILED_OVER,
    ROLLED_BACK,
    ApplyResult,
    MigrationOutcome,
    PlanApplier,
)
from repro.core.optimizer.audit import Auditor, AuditReport, BoxAudit
from repro.core.optimizer.loop import OptimizerLoop, TickResult
from repro.core.optimizer.strategies import (
    STRATEGIES,
    StrategyConfig,
    consolidate_underused,
    get_strategy,
    rebalance_hot_edges,
    stabilize_p99,
    strategy,
)

__all__ = [
    "ACTION_KINDS",
    "APPLIED",
    "Action",
    "ActionPlan",
    "ApplyResult",
    "AuditReport",
    "Auditor",
    "BoxAudit",
    "DRAIN",
    "FAILED_OVER",
    "MIGRATE",
    "MigrationOutcome",
    "NOOP",
    "OptimizerLoop",
    "PlanApplier",
    "ROLLED_BACK",
    "STRATEGIES",
    "StrategyConfig",
    "TickResult",
    "UNDRAIN",
    "consolidate_underused",
    "get_strategy",
    "noop_plan",
    "rebalance_hot_edges",
    "stabilize_p99",
    "strategy",
]
