"""Pluggable optimizer strategies: audit report in, action plan out.

A strategy is a pure function ``(report, config) -> ActionPlan``; the
registry maps names to implementations so experiments and the CLI can
select one by string.  All strategies are deterministic: candidates are
ranked by the audited metric with box-id tiebreaks, and capped at
``config.max_actions`` per tick, so one seed reproduces the exact
action sequence.

Built-ins:

``stabilize_p99``
    Reactive tail defence: migrate work off boxes whose health is
    ``suspect``/``pressured``/``shedding`` (the states behind retry
    storms and queue-driven tail inflation), worst queue first.
``consolidate_underused``
    Cost control: drain boxes whose utilization sits below the cold
    threshold so their work folds into busier neighbours; un-drain
    nothing (that is rebalancing's job).
``rebalance_hot_edges``
    Load balance: migrate work off boxes above the hot utilization
    threshold and return previously-drained boxes to the planner once
    they have cooled below the cold threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.optimizer.actions import (
    DRAIN,
    MIGRATE,
    UNDRAIN,
    Action,
    ActionPlan,
    noop_plan,
)
from repro.core.optimizer.audit import AuditReport

Strategy = Callable[[AuditReport, "StrategyConfig"], ActionPlan]

#: name -> strategy implementation.
STRATEGIES: Dict[str, Strategy] = {}


def strategy(name: str) -> Callable[[Strategy], Strategy]:
    """Register a strategy under ``name``."""
    def wrap(fn: Strategy) -> Strategy:
        if name in STRATEGIES:
            raise ValueError(f"strategy {name!r} already registered")
        STRATEGIES[name] = fn
        return fn
    return wrap


def get_strategy(name: str) -> Strategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(f"unknown strategy {name!r} (known: {known})")


@dataclass(frozen=True)
class StrategyConfig:
    """Thresholds shared by the built-in strategies.

    Attributes:
        hot_utilization: offered-load fraction above which a box is a
            rebalance candidate.
        cold_utilization: fraction below which a box is a consolidation
            candidate (and below which a drained box may return).
        max_actions: cap on non-noop actions per tick -- the control
            loop moves a little every tick rather than everything at
            once, so a mis-audit cannot thrash the whole deployment.
        min_active: never drain/migrate below this many un-drained,
            non-failed boxes (the cutover guard refuses otherwise).
    """

    hot_utilization: float = 0.75
    cold_utilization: float = 0.15
    max_actions: int = 2
    min_active: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.cold_utilization < self.hot_utilization:
            raise ValueError(
                "need 0 <= cold_utilization < hot_utilization "
                f"(got {self.cold_utilization}, {self.hot_utilization})"
            )
        if self.max_actions < 1:
            raise ValueError("max_actions must be >= 1")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")


def _active_count(report: AuditReport) -> int:
    """Boxes still accepting new trees (not drained, not failed)."""
    return sum(1 for a in report.boxes
               if not a.drained and a.state != "failed")


def _headroom(report: AuditReport, config: StrategyConfig) -> int:
    """How many boxes may still be taken out of rotation this tick."""
    return max(0, _active_count(report) - config.min_active)


@strategy("stabilize_p99")
def stabilize_p99(report: AuditReport,
                  config: StrategyConfig) -> ActionPlan:
    """Migrate off distrusted boxes, worst queue first."""
    candidates = [
        a for a in report.boxes
        if a.distrusted and not a.drained and a.state != "failed"
    ]
    candidates.sort(key=lambda a: (-a.pending, a.box_id))
    budget = min(config.max_actions, _headroom(report, config))
    actions: List[Action] = [
        Action(kind=MIGRATE, target=a.box_id,
               reason=f"state={a.state} pending={a.pending}",
               cost=float(a.pending))
        for a in candidates[:budget]
    ]
    if not actions:
        return noop_plan("stabilize_p99", report.at, reason="all trusted")
    return ActionPlan(strategy="stabilize_p99", at=report.at,
                      actions=tuple(actions))


@strategy("consolidate_underused")
def consolidate_underused(report: AuditReport,
                          config: StrategyConfig) -> ActionPlan:
    """Drain cold, healthy boxes so work folds into busier ones."""
    candidates = [
        a for a in report.boxes
        if not a.drained and a.state == "healthy"
        and a.utilization < config.cold_utilization and a.pending == 0
    ]
    candidates.sort(key=lambda a: (a.utilization, a.box_id))
    budget = min(config.max_actions, _headroom(report, config))
    actions = [
        Action(kind=DRAIN, target=a.box_id,
               reason=f"util={a.utilization:.2f}"
                      f"<{config.cold_utilization:g}",
               cost=float(a.pending))
        for a in candidates[:budget]
    ]
    if not actions:
        return noop_plan("consolidate_underused", report.at,
                         reason="nothing cold")
    return ActionPlan(strategy="consolidate_underused", at=report.at,
                      actions=tuple(actions))


@strategy("rebalance_hot_edges")
def rebalance_hot_edges(report: AuditReport,
                        config: StrategyConfig) -> ActionPlan:
    """Migrate off hot boxes; return cooled drained boxes to duty."""
    actions: List[Action] = []
    # Un-drains first: they add capacity before anything is removed,
    # and cost nothing (the box simply rejoins the planner).
    cooled = [
        a for a in report.boxes
        if a.drained and a.state not in ("failed",)
        and a.utilization <= config.cold_utilization
    ]
    cooled.sort(key=lambda a: (a.utilization, a.box_id))
    actions.extend(
        Action(kind=UNDRAIN, target=a.box_id,
               reason=f"cooled util={a.utilization:.2f}")
        for a in cooled[:config.max_actions]
    )
    hot = [
        a for a in report.boxes
        if not a.drained and a.state != "failed"
        and a.utilization >= config.hot_utilization
    ]
    hot.sort(key=lambda a: (-a.utilization, a.box_id))
    undrains = len(actions)
    budget = min(config.max_actions,
                 _headroom(report, config) + undrains)
    actions.extend(
        Action(kind=MIGRATE, target=a.box_id,
               reason=f"util={a.utilization:.2f}"
                      f">={config.hot_utilization:g}",
               cost=float(a.pending))
        for a in hot[:budget]
    )
    if not actions:
        return noop_plan("rebalance_hot_edges", report.at,
                         reason="balanced")
    return ActionPlan(strategy="rebalance_hot_edges", at=report.at,
                      actions=tuple(actions))
