"""The apply stage: action plans executed safely on a platform.

:class:`PlanApplier` turns an :class:`~repro.core.optimizer.actions.ActionPlan`
into platform state changes.  Migrations run a **two-phase
drain-then-cutover protocol**:

1. **drain** -- the box leaves the planner
   (:meth:`~repro.core.platform.NetAggPlatform.drain_box`), so every
   tree built from now on rewires around it through the §3.1 path; any
   buffered partials are *parked* (removed without touching the
   duplicate-suppression sets, so a replay lands exactly once);
2. **interruption window** -- the optional ``interrupt`` hook runs
   between the phases; the chaos suite uses it to crash boxes
   mid-migration;
3. **cutover** -- the guard re-checks that enough active boxes remain.
   On success the parked partials replay (into the still-live source,
   which finishes its in-flight folds while new work avoids it, or into
   the healthiest surviving box if the source died in the window).  On
   guard failure the migration **rolls back**: the box is un-drained
   and its parked partials replay straight back into it.

Migrations that land while a request is mid-flight go through
:meth:`repro.core.recovery.InFlightRequest.migrate_box` instead (pass
``in_flight``), which adds the expected-count arithmetic of §3.1.

Every action emits an ``optimizer.action`` instant; every migration an
``optimizer.migrate`` span wrapping ``optimizer.drain`` /
``optimizer.park`` / ``optimizer.cutover`` / ``optimizer.rollback``
instants, so ``python -m repro analyze`` can attribute each applied
action to its tick and outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.optimizer.actions import (
    DRAIN,
    MIGRATE,
    NOOP,
    UNDRAIN,
    Action,
    ActionPlan,
)
from repro.obs import METRICS, get_tracer

#: Migration outcomes (the ``outcome`` tag on ``optimizer.migrate``).
APPLIED = "applied"
ROLLED_BACK = "rolled-back"
FAILED_OVER = "failed-over"


@dataclass(frozen=True)
class MigrationOutcome:
    """How one migrate action ended."""

    box_id: str
    outcome: str          #: APPLIED, ROLLED_BACK or FAILED_OVER
    parked: int = 0       #: partials parked during the drain phase
    replayed_to: str = "" #: where they landed ("" when none)


@dataclass
class ApplyResult:
    """What one plan application actually did."""

    plan: ActionPlan
    applied: List[Action] = field(default_factory=list)
    skipped: List[Tuple[Action, str]] = field(default_factory=list)
    migrations: List[MigrationOutcome] = field(default_factory=list)

    @property
    def rollbacks(self) -> int:
        return sum(1 for m in self.migrations
                   if m.outcome == ROLLED_BACK)


class PlanApplier:
    """Executes action plans on a platform (or any drain-capable shim).

    ``platform`` must provide ``drain_box`` / ``undrain_box`` /
    ``drained_boxes`` / ``failed_boxes``; a full
    :class:`~repro.core.platform.NetAggPlatform` additionally provides
    ``box_runtime`` (for parking) and ``clock``.  ``interrupt`` is the
    chaos hook invoked between drain and cutover of every migration.
    ``min_active`` is the cutover guard: a migration or drain that
    would leave fewer than this many active (un-drained, un-failed)
    boxes rolls back / is skipped.
    """

    def __init__(self, platform, interrupt: Optional[Callable[[], None]]
                 = None, min_active: int = 1) -> None:
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        self._platform = platform
        self._interrupt = interrupt
        self._min_active = min_active
        self._m_actions = METRICS.counter("optimizer.actions")
        self._m_migrations = METRICS.counter("optimizer.migrations")
        self._m_drains = METRICS.counter("optimizer.drains")
        self._m_undrains = METRICS.counter("optimizer.undrains")
        self._m_rollbacks = METRICS.counter("optimizer.rollbacks")

    # -- public ---------------------------------------------------------------

    def apply(self, plan: ActionPlan, in_flight=None) -> ApplyResult:
        """Execute ``plan``; returns what was applied and skipped.

        ``in_flight`` (an :class:`repro.core.recovery.InFlightRequest`)
        routes migrations of boxes in its tree through the mid-request
        protocol, parked partials and expected-count arithmetic
        included.
        """
        at = self._now(plan.at)
        result = ApplyResult(plan=plan)
        tracer = get_tracer()
        span = tracer.begin("optimizer.apply", at, layer="optimizer",
                            strategy=plan.strategy,
                            actions=len(plan.actions)) \
            if tracer.enabled else 0
        try:
            for action in plan.actions:
                self._apply_one(action, plan, at, result, in_flight)
        finally:
            if span:
                tracer.end(span, self._now(at))
        return result

    # -- internals ------------------------------------------------------------

    def _now(self, floor: float) -> float:
        return max(floor, getattr(self._platform, "clock", floor))

    def _active_boxes(self, excluding: str = "") -> List[str]:
        drained = self._platform.drained_boxes()
        failed = self._platform.failed_boxes()
        boxes = getattr(self._platform, "box_ids", None)
        if boxes is None:
            boxes = sorted(
                info.box_id
                for info in self._platform.topology.all_boxes()
            )
        else:
            boxes = sorted(boxes())
        return [b for b in boxes
                if b not in drained and b not in failed
                and b != excluding]

    def _instant(self, name: str, at: float, **tags: object) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(name, at, layer="optimizer", **tags)

    def _apply_one(self, action: Action, plan: ActionPlan, at: float,
                   result: ApplyResult, in_flight) -> None:
        if action.kind == NOOP:
            result.applied.append(action)
            return
        self._instant("optimizer.action", at, kind=action.kind,
                      target=action.target, reason=action.reason,
                      strategy=plan.strategy, cost=action.cost)
        self._m_actions.inc()
        if action.kind == DRAIN:
            if len(self._active_boxes(excluding=action.target)) \
                    < self._min_active:
                result.skipped.append((action, "guard: too few active"))
                return
            self._platform.drain_box(action.target)
            self._instant("optimizer.drain", at, box=action.target)
            self._m_drains.inc()
            result.applied.append(action)
        elif action.kind == UNDRAIN:
            self._platform.undrain_box(action.target)
            self._instant("optimizer.undrain", at, box=action.target)
            self._m_undrains.inc()
            result.applied.append(action)
        elif action.kind == MIGRATE:
            outcome = self._migrate(action, plan, at, in_flight)
            result.migrations.append(outcome)
            if outcome.outcome == ROLLED_BACK:
                result.skipped.append((action, "rolled back"))
            else:
                result.applied.append(action)

    def _migrate(self, action: Action, plan: ActionPlan, at: float,
                 in_flight) -> MigrationOutcome:
        box_id = action.target
        tracer = get_tracer()
        span = tracer.begin("optimizer.migrate", at, layer="optimizer",
                            box=box_id, strategy=plan.strategy) \
            if tracer.enabled else 0
        try:
            outcome = self._migrate_phases(box_id, at, in_flight)
            self._m_migrations.inc()
            if outcome.outcome == ROLLED_BACK:
                self._m_rollbacks.inc()
            return outcome
        finally:
            if span:
                tracer.end(span, self._now(at))

    def _migrate_phases(self, box_id: str, at: float,
                        in_flight) -> MigrationOutcome:
        if in_flight is not None and box_id in in_flight.tree.boxes:
            return self._migrate_in_flight(box_id, at, in_flight)
        platform = self._platform

        # Phase 1: drain.  The box leaves the planner; its buffered
        # partials are parked so nothing is lost whatever happens next.
        platform.drain_box(box_id)
        self._instant("optimizer.drain", at, box=box_id)
        runtime = getattr(platform, "box_runtime", None)
        parked = runtime(box_id).park_pending() if runtime else []
        if parked:
            self._instant("optimizer.park", at, box=box_id,
                          parked=len(parked))

        # Phase 2: the interruption window.
        if self._interrupt is not None:
            self._interrupt()

        # Phase 3: cutover guard, then replay.
        now = self._now(at)
        alive = self._active_boxes(excluding=box_id)
        failed = platform.failed_boxes()
        if len(alive) < self._min_active and box_id not in failed:
            # No safe destination capacity: roll back.  Parked partials
            # replay into the still-live source under their original
            # tags (parking removed them from the suppression sets).
            platform.undrain_box(box_id)
            self._replay(box_id, parked)
            self._instant("optimizer.rollback", now, box=box_id,
                          parked=len(parked), outcome=ROLLED_BACK)
            return MigrationOutcome(box_id=box_id, outcome=ROLLED_BACK,
                                    parked=len(parked),
                                    replayed_to=box_id if parked else "")
        if box_id in failed:
            # The source died inside the window; the parked values
            # survive precisely because drain parked them first.
            dest = alive[0] if alive and parked else ""
            if dest:
                self._replay(dest, parked)
            self._instant("optimizer.cutover", now, box=box_id,
                          dest=dest or "none", outcome=FAILED_OVER)
            return MigrationOutcome(box_id=box_id, outcome=FAILED_OVER,
                                    parked=len(parked),
                                    replayed_to=dest)
        # Normal cutover: the box stays drained (future trees avoid
        # it); parked partials replay into it so its in-flight requests
        # still complete exactly.
        self._replay(box_id, parked)
        self._instant("optimizer.cutover", now, box=box_id,
                      dest=box_id if parked else "planner",
                      outcome=APPLIED)
        return MigrationOutcome(box_id=box_id, outcome=APPLIED,
                                parked=len(parked),
                                replayed_to=box_id if parked else "")

    def _migrate_in_flight(self, box_id: str, at: float,
                           in_flight) -> MigrationOutcome:
        """Mid-request migration: delegate to the §3.1 protocol."""
        self._instant("optimizer.drain", at, box=box_id)
        self._platform.drain_box(box_id)
        log = in_flight.migrate_box(box_id, interrupt=self._interrupt)
        if log.parked_sources:
            self._instant("optimizer.park", at, box=box_id,
                          parked=len(log.parked_sources))
        now = self._now(at)
        if log.rolled_back:
            self._platform.undrain_box(box_id)
            self._instant("optimizer.rollback", now, box=box_id,
                          parked=len(log.parked_sources),
                          outcome=ROLLED_BACK)
            return MigrationOutcome(
                box_id=box_id, outcome=ROLLED_BACK,
                parked=len(log.parked_sources),
                replayed_to=box_id if log.parked_sources else "",
            )
        outcome = FAILED_OVER if log.failed_over else APPLIED
        self._instant("optimizer.cutover", now, box=box_id,
                      dest=log.replayed_to or "none", outcome=outcome)
        return MigrationOutcome(
            box_id=box_id, outcome=outcome,
            parked=len(log.parked_sources),
            replayed_to=log.replayed_to,
        )

    def _replay(self, box_id: str, parked) -> None:
        """Replay parked partials into ``box_id``'s runtime."""
        runtime = getattr(self._platform, "box_runtime", None)
        if not parked or runtime is None:
            return
        target = runtime(box_id)
        for p in parked:
            target.submit_partial(p.app, p.request_id, p.source, p.value)
