"""Per-target circuit breakers for the shim send path.

A flapping agg box makes every shim burn its full retry budget
(``max_attempts * timeout`` plus backoffs) on every send.  A circuit
breaker remembers recent failures per target and fails fast instead:

- ``closed``: sends flow normally; consecutive connect failures are
  counted, and ``failure_threshold`` of them trip the breaker ``open``;
- ``open``: sends are refused immediately (zero clock burnt) until
  ``reset_timeout`` virtual seconds have passed since tripping;
- ``half-open``: after the reset timeout, exactly one probe attempt is
  allowed through; success closes the breaker, failure re-opens it and
  restarts the timeout.

All timing runs on the platform's deterministic virtual clock, so a
given workload + fault schedule produces bit-identical breaker traces.
Every transition is recorded for the chaos-invariant suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)

#: state -> states it may legally transition to.
BREAKER_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    CLOSED: (OPEN,),
    OPEN: (HALF_OPEN,),
    HALF_OPEN: (CLOSED, OPEN),
}


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/reset configuration shared by all of a platform's breakers.

    Attributes:
        failure_threshold: consecutive connect failures that trip a
            closed breaker open.
        reset_timeout: virtual seconds an open breaker refuses sends
            before allowing a half-open probe.
        success_threshold: successful half-open probes needed to close.
    """

    failure_threshold: int = 3
    reset_timeout: float = 0.5
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change of one breaker."""

    at: float
    target: str
    frm: str
    to: str
    reason: str = ""


class CircuitBreaker:
    """The breaker guarding one send target (an agg box)."""

    def __init__(self, target: str, policy: BreakerPolicy) -> None:
        self.target = target
        self._policy = policy
        self._state = CLOSED
        self._failures = 0
        self._successes = 0
        self._opened_at: Optional[float] = None
        self.transitions: List[BreakerTransition] = []

    @property
    def state(self) -> str:
        return self._state

    def _move(self, to: str, at: float, reason: str) -> None:
        if to not in BREAKER_TRANSITIONS[self._state]:
            raise RuntimeError(
                f"illegal breaker transition {self._state} -> {to} "
                f"({self.target})"
            )
        self.transitions.append(BreakerTransition(
            at=at, target=self.target, frm=self._state, to=to, reason=reason,
        ))
        self._state = to

    def allow(self, now: float) -> bool:
        """May a send attempt go through at virtual time ``now``?

        An open breaker whose reset timeout has elapsed moves to
        half-open and admits the probe; otherwise open refuses
        immediately (the caller records a ``breaker-open`` event and
        degrades down its ladder without burning retry clock).
        """
        if self._state == OPEN:
            if now >= self._opened_at + self._policy.reset_timeout:
                self._move(HALF_OPEN, now, "reset-timeout")
                self._successes = 0
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        """A connect to the target succeeded."""
        if self._state == HALF_OPEN:
            self._successes += 1
            if self._successes >= self._policy.success_threshold:
                self._move(CLOSED, now, "probe-success")
        self._failures = 0

    def force_probe(self, now: float, reason: str = "recovery") -> None:
        """Move an open breaker to half-open ahead of its timeout.

        Called when an out-of-band signal says the target is back (e.g.
        :meth:`repro.core.platform.NetAggPlatform.recover_box`): instead
        of refusing sends for the rest of ``reset_timeout``, the very
        next send probes the target.  A closed or already half-open
        breaker is left untouched; failure of the probe re-opens the
        breaker as usual, so a false recovery signal costs one attempt.
        """
        if self._state != OPEN:
            return
        self._move(HALF_OPEN, now, reason)
        self._successes = 0

    def record_failure(self, now: float) -> None:
        """A connect attempt to the target timed out."""
        if self._state == HALF_OPEN:
            self._move(OPEN, now, "probe-failure")
            self._opened_at = now
            return
        if self._state == CLOSED:
            self._failures += 1
            if self._failures >= self._policy.failure_threshold:
                self._move(OPEN, now,
                           f"{self._failures} consecutive failures")
                self._opened_at = now


class BreakerBoard:
    """All of a platform's per-target breakers, created on first use."""

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, target: str) -> CircuitBreaker:
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(target, self.policy)
            self._breakers[target] = breaker
        return breaker

    def states(self) -> Dict[str, str]:
        return {t: b.state for t, b in self._breakers.items()}

    def transitions(self) -> List[BreakerTransition]:
        """All recorded transitions, ordered by (time, target)."""
        merged = [
            t for b in self._breakers.values() for t in b.transitions
        ]
        merged.sort(key=lambda t: (t.at, t.target))
        return merged


def assert_legal_breaker_transitions(
    transitions: List[BreakerTransition],
) -> None:
    """Raise AssertionError when a recorded trace breaks the machine.

    Per target: the trace must start from ``closed``, be contiguous,
    and every hop must be in :data:`BREAKER_TRANSITIONS`.
    """
    state_by_target: Dict[str, str] = {}
    for t in transitions:
        state = state_by_target.get(t.target, CLOSED)
        assert t.frm == state, \
            f"{t.target}: trace gap at {t.at}: expected {state}, " \
            f"recorded {t.frm}"
        assert t.to in BREAKER_TRANSITIONS[t.frm], \
            f"{t.target}: illegal transition {t.frm} -> {t.to} at {t.at}"
        state_by_target[t.target] = t.to
