"""The platform's overload-control configuration.

One :class:`OverloadConfig` switches on the whole overload plane of a
:class:`repro.core.platform.NetAggPlatform`:

- ``queue``: the per-box :class:`repro.aggbox.overload.OverloadPolicy`
  (bounded pending queues + health state machine).  Inside the
  platform the shed policy is forced to ``flush``: a box that accepted
  a request's announcement must never refuse its partials (that would
  strand the parent's expected count), so mid-request pressure is
  relieved by partial flushes whose deltas the platform forwards
  upstream under fresh source tags.  ``reject-new``/``spill`` refusal
  semantics surface at *plan time* instead: pressured and shedding
  boxes are NACKed out of new trees (see ``avoid_pressured``).
- ``breaker``: per-target circuit breakers wrapped around the retry
  policy at connect time.
- ``admission``: token-bucket + queue-depth admission at the master
  shim; non-admitted requests terminate with a typed
  :class:`repro.core.admission.AdmissionNack`.
- ``avoid_pressured``: re-plan new trees away from boxes whose health
  feed reports ``pressured``/``shedding`` (or that sit inside a
  scheduled ``BOX_SHED`` window), pushing senders down the degradation
  ladder instead of into a saturated box.
- ``heartbeat_staleness``: heartbeats older than this many virtual
  seconds are reported as ``suspect`` instead of last-known-healthy,
  so the optimizer never trusts a silent box (None disables the
  check -- heartbeats are then trusted forever).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.aggbox.overload import FLUSH, OverloadPolicy
from repro.core.admission import AdmissionPolicy
from repro.core.breaker import BreakerPolicy


@dataclass(frozen=True)
class OverloadConfig:
    """Overload-control plane configuration for one platform."""

    queue: Optional[OverloadPolicy] = None
    breaker: Optional[BreakerPolicy] = None
    admission: Optional[AdmissionPolicy] = None
    #: Per-tenant admission overrides (tenant id -> policy); tenants not
    #: listed fall back to ``admission``.  Ignored when ``admission`` is
    #: None.  Used by the serving layer for per-tenant SLO budgets.
    admission_per_tenant: Optional[Mapping[str, AdmissionPolicy]] = None
    avoid_pressured: bool = True
    heartbeat_staleness: Optional[float] = None

    def __post_init__(self) -> None:
        if self.heartbeat_staleness is not None \
                and self.heartbeat_staleness <= 0:
            raise ValueError(
                "heartbeat_staleness must be positive (or None)"
            )

    def box_policy(self) -> Optional[OverloadPolicy]:
        """The queue policy as installed on platform boxes.

        The shed policy is forced to ``flush`` -- within the platform,
        refusal happens at plan/admission time, never mid-request.
        """
        if self.queue is None:
            return None
        if self.queue.shed == FLUSH:
            return self.queue
        return replace(self.queue, shed=FLUSH)
