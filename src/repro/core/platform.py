"""The NetAgg platform: boxes + shims wired to a topology.

This is the *functional* half of the reproduction: it executes real
application requests end-to-end through the same aggregation trees the
flow-level simulator prices, so results computed "through NetAgg" can be
checked for exact equality against a centralised computation.

Execution model:

- online requests (Solr-style) hash onto one aggregation tree each;
- batch jobs (Hadoop-style) split keyed data across all trees and merge
  the per-tree aggregates at the master;
- worker payloads travel as framed binary (the :mod:`repro.wire` layer),
  delivered to boxes in bounded chunks, so streaming deserialisation is
  exercised on every request;
- failed boxes are rewired out of the trees per §3.1 before execution.

Fault-aware execution: constructed with a
:class:`repro.faults.PlatformFaultInjector` (and optionally a
:class:`repro.faults.RetryPolicy`), the platform advances a
deterministic virtual clock and probes each box at connect time.  A box
that is down burns ``timeout`` per attempt plus jittered backoff; a box
that exhausts its attempts is rewired out of the request's trees
*before* expected counts are announced, so partial-result accounting
stays consistent.  Worker shims then walk the degradation ladder (entry
box -> next on-path ancestor -> direct to master) and every retry,
fallback, bypass, degradation and churn wait is recorded as a
:class:`repro.core.shim.ShimEvent` on the outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import AggregationFunction
from repro.aggbox.overload import (
    FAILED as BOX_FAILED,
    GRAY,
    HEALTHY,
    PRESSURED,
    SHEDDING,
    SUSPECT,
    BoxHeartbeat,
)
from repro.core.admission import AdmissionController
from repro.core.breaker import HALF_OPEN, BreakerBoard
from repro.core.failure import rewire_failed_box
from repro.core.overload import OverloadConfig
from repro.core.partition import (
    Completeness,
    GrayDetector,
    PartitionPolicy,
    SubtreeUnreachable,
)
from repro.core.shim import MasterShim, ShimEvent, WorkerShim
from repro.core.tree import AggregationTree, TreeBuilder
from repro.netsim.routing import stable_hash
from repro.obs import METRICS, get_tracer
from repro.topology.base import Topology
from repro.wire.framing import frame

#: Partial-result payloads are delivered to boxes in chunks of this size
#: to exercise frame reassembly across chunk boundaries.
_CHUNK_BYTES = 1024


@dataclass
class RequestOutcome:
    """Result of one end-to-end request execution."""

    request_id: str
    value: Any
    #: (worker_index, payload) pairs the master application observes; all
    #: but one are empty (the shim's empty-result emulation).
    worker_responses: List[Tuple[int, Any]]
    #: Boxes that performed aggregation work, in completion order.
    boxes_used: List[str]
    #: Trees used (one for online requests, all for batch jobs).
    trees_used: List[int]
    #: Bytes of framed partial-result data entering boxes.
    bytes_into_boxes: float
    #: Retries, fallbacks, bypasses, degradations and churn waits the
    #: shims performed while executing this request (empty when the
    #: platform has no fault injector).
    shim_events: List[ShimEvent] = field(default_factory=list)
    #: What fraction of the workers this value covers.  ``None`` on a
    #: platform without a :class:`repro.core.partition.PartitionPolicy`;
    #: otherwise always present, ``exact`` unless workers were dropped
    #: behind a partition (partial delivery).
    completeness: Optional[Completeness] = None

    def events_of_kind(self, kind: str) -> List[ShimEvent]:
        return [e for e in self.shim_events if e.kind == kind]


class NetAggPlatform:
    """Deployment of NetAgg over a topology with attached agg boxes.

    ``faults`` is a connect-time fault oracle (duck-typed after
    :class:`repro.faults.PlatformFaultInjector`: ``box_down``,
    ``degradation``, ``churn_until``, optionally ``overload_factor``
    and ``shedding``); ``retry`` the shim retry policy (defaults to
    :class:`repro.faults.RetryPolicy` when ``faults`` is given).
    Without an oracle every connect succeeds immediately and execution
    is identical to the fault-free platform.

    ``overload`` switches on the overload-control plane (see
    :class:`repro.core.overload.OverloadConfig`): bounded box queues
    with the health state machine, per-target circuit breakers at
    connect time, admission control at the master shim, and tree
    re-planning away from pressured boxes.

    ``partition`` switches on the partition-tolerance plane (see
    :class:`repro.core.partition.PartitionPolicy`): workers the fault
    oracle reports as isolated from the master (``isolated``) are
    dropped from the request instead of failing it, and the outcome
    carries a :class:`repro.core.partition.Completeness` record; slow
    deliveries are hedged against a deadline; and a
    :class:`repro.core.partition.GrayDetector` flags slow-but-alive
    boxes, which the health feed reports as ``gray`` and the planner
    routes around.  Without a policy, an isolated worker fails the
    whole request with :class:`SubtreeUnreachable` (the fail-stop
    baseline).
    """

    def __init__(self, topo: Topology, faults: Optional[Any] = None,
                 retry: Optional[Any] = None,
                 overload: Optional[OverloadConfig] = None,
                 partition: Optional[PartitionPolicy] = None) -> None:
        self._topo = topo
        self._builder = TreeBuilder(topo)
        self._overload = overload
        box_policy = overload.box_policy() if overload is not None else None
        self._boxes: Dict[str, AggBoxRuntime] = {
            info.box_id: AggBoxRuntime(info.box_id, policy=box_policy)
            for info in topo.all_boxes()
        }
        self._functions: Dict[str, AggregationFunction] = {}
        self._mergers: Dict[str, Callable[[Sequence[Any]], Any]] = {}
        self._failed: Set[str] = set()
        self._drained: Set[str] = set()
        self._master_shims: Dict[str, MasterShim] = {}
        self._faults = faults
        if retry is None and faults is not None:
            from repro.faults.retry import RetryPolicy
            retry = RetryPolicy()
        self._retry = retry
        self._partition = partition
        self._gray: Optional[GrayDetector] = None
        if partition is not None and faults is not None:
            seed = partition.gray.baseline
            if seed is None and self._retry is not None:
                # Seed the EWMA with the healthy send latency so the
                # detector can flag from the very first outlier.
                seed = self._retry.send_latency
            self._gray = GrayDetector(partition.gray, baseline=seed)
        self._breakers = (
            BreakerBoard(overload.breaker)
            if overload is not None and overload.breaker is not None
            else None
        )
        self._admission = (
            AdmissionController(overload.admission,
                                per_tenant=overload.admission_per_tenant)
            if overload is not None and overload.admission is not None
            else None
        )
        self._clock = 0.0

    # -- deployment ------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topo

    def box_runtime(self, box_id: str) -> AggBoxRuntime:
        return self._boxes[box_id]

    def register_app(
        self,
        app: str,
        function: AggregationFunction,
        serialise: Callable[[Any], bytes],
        deserialise: Callable[[bytes], Any],
    ) -> None:
        """Install an application's aggregation function on every box."""
        if app in self._functions:
            raise ValueError(f"app {app!r} already registered")
        self._functions[app] = function
        self._mergers[app] = lambda parts: function.merge(list(parts))
        for runtime in self._boxes.values():
            runtime.register_app(AppBinding(
                app=app,
                function=function,
                deserialise=deserialise,
                serialise=serialise,
            ))

    def apps(self) -> List[str]:
        return sorted(self._functions)

    @property
    def clock(self) -> float:
        """The platform's virtual clock (advanced by sends/retries)."""
        return self._clock

    def advance_clock(self, t: float) -> None:
        """Move the virtual clock forward to ``t`` (never backwards).

        Lets callers start a request inside a chosen fault window of the
        schedule (the clock otherwise only crawls by send latencies).
        """
        self._clock = max(self._clock, t)

    def begin_request(self, arrival: float) -> float:
        """Concurrency seam for the serving layer (open-loop arrivals).

        The platform is single-threaded on its virtual clock: concurrent
        callers serialise, and a request arriving while the platform is
        busy *queues*.  ``begin_request`` admits an arrival onto the
        clock -- advancing it when the platform is idle, leaving it
        alone when it is backlogged -- and returns the service start
        time (``>= arrival``), so callers can account queueing wait
        (``start - arrival``) separately from service time.
        """
        self.advance_clock(arrival)
        return self._clock

    @property
    def overload(self) -> Optional[OverloadConfig]:
        return self._overload

    @property
    def breakers(self) -> Optional[BreakerBoard]:
        """The per-target circuit breakers (None without overload config)."""
        return self._breakers

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The master-shim admission controller (None when disabled)."""
        return self._admission

    @property
    def partition_policy(self) -> Optional[PartitionPolicy]:
        """The partition-tolerance policy (None = fail-stop baseline)."""
        return self._partition

    @property
    def gray_detector(self) -> Optional[GrayDetector]:
        """The latency-outlier detector (None without a partition policy)."""
        return self._gray

    def health_report(
        self, staleness: Optional[float] = None,
    ) -> Dict[str, BoxHeartbeat]:
        """The health feed: one heartbeat per box, keyed by box id.

        ``staleness`` (defaulting to the overload config's
        ``heartbeat_staleness``) bounds how long a heartbeat is trusted:
        a box whose runtime clock lags the platform clock by more than
        the threshold has not been heard from in that long, and its
        report carries ``suspect`` instead of the last-known state.  A
        box already reporting ``failed`` stays ``failed`` (worse news
        wins).  ``None`` disables the check.

        With a partition policy, a box whose own heartbeat says
        ``healthy`` but that the latency-outlier detector has flagged
        is reported as ``gray`` -- the heartbeat protocol's blind spot
        made visible (gray failure: alive, probing fine, and slow).
        """
        if staleness is None and self._overload is not None:
            staleness = self._overload.heartbeat_staleness
        report: Dict[str, BoxHeartbeat] = {}
        for box_id, runtime in sorted(self._boxes.items()):
            beat = runtime.heartbeat(at=self._clock)
            if staleness is not None and beat.state != BOX_FAILED \
                    and self._clock - runtime.clock > staleness:
                beat = replace(beat, state=SUSPECT)
            if beat.state == HEALTHY and self._gray is not None \
                    and self._gray.is_gray(box_id):
                beat = replace(beat, state=GRAY)
            report[box_id] = beat
        return report

    def fail_box(self, box_id: str) -> None:
        """Mark a box failed; future trees route around it (§3.1)."""
        if box_id not in self._boxes:
            raise KeyError(f"unknown box {box_id!r}")
        self._failed.add(box_id)

    def recover_box(self, box_id: str) -> None:
        """Bring a failed box back into future tree plans.

        Recovery is an out-of-band liveness signal, so the box's
        circuit breaker (if any) is nudged from open to half-open:
        the next send probes the box immediately instead of waiting
        out the remainder of the breaker's reset timeout.
        """
        self._failed.discard(box_id)
        if self._breakers is not None:
            self._breakers.breaker(box_id).force_probe(self._clock)

    def failed_boxes(self) -> Set[str]:
        return set(self._failed)

    def drain_box(self, box_id: str) -> None:
        """Plan future trees around a live box (optimizer drain phase).

        Unlike :meth:`fail_box` the runtime stays up: parked partials
        can still be read out of it and, on rollback, replayed into it.
        """
        if box_id not in self._boxes:
            raise KeyError(f"unknown box {box_id!r}")
        self._drained.add(box_id)

    def undrain_box(self, box_id: str) -> None:
        """Return a drained box to the planner (cutover done/rolled back)."""
        self._drained.discard(box_id)

    def drained_boxes(self) -> Set[str]:
        return set(self._drained)

    # -- execution ------------------------------------------------------------

    def build_trees(self, key: str, master: str,
                    worker_hosts: Sequence[str],
                    n_trees: int = 1) -> List[AggregationTree]:
        """Aggregation trees for the endpoints, failures rewired out.

        Drained boxes (optimizer migrations in flight) are rewired out
        the same way -- their runtimes are alive, but new work must not
        land on them.
        """
        trees = self._builder.build_many(key, master, worker_hosts, n_trees)
        for i, tree in enumerate(trees):
            for box_id in sorted(self._failed | self._drained):
                if box_id in tree.boxes:
                    tree = rewire_failed_box(tree, box_id)
            trees[i] = tree
        return trees

    def execute_request(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        n_trees: int = 1,
        tenant: Optional[str] = None,
    ) -> RequestOutcome:
        """Run one online request end-to-end (one tree, by request hash).

        With admission control enabled, a non-admitted request raises
        :class:`repro.core.admission.AdmissionNack` before touching any
        tree (``tenant`` defaults to the app name).
        """
        self._check_app(app)
        self._admit(tenant or app)
        trees = self.build_trees(request_id, master,
                                 [h for h, _ in worker_partials], n_trees)
        chosen = trees[stable_hash(request_id) % len(trees)]
        return self._run_on_trees(app, request_id, master,
                                  worker_partials, [chosen],
                                  tenant=tenant or app)

    def execute_batch(
        self,
        app: str,
        job_id: str,
        master: str,
        worker_keyed_items: Sequence[Tuple[str, List[Tuple[str, Any]]]],
        n_trees: int = 1,
        rebundle: Optional[Callable[[List[Any]], Any]] = None,
        tenant: Optional[str] = None,
    ) -> RequestOutcome:
        """Run a batch job: keyed items split across all trees (§3.1).

        ``worker_keyed_items`` maps each worker host to its keyed partial
        data; ``rebundle`` turns one worker's per-tree item list into the
        partial-result value the aggregation function expects (defaults
        to the identity on lists).
        """
        self._check_app(app)
        self._admit(tenant or app)
        rebundle = rebundle or (lambda items: items)
        hosts = [h for h, _ in worker_keyed_items]
        trees = self.build_trees(job_id, master, hosts, n_trees)
        shims = [
            WorkerShim(host, index, trees)
            for index, host in enumerate(hosts)
        ]
        outcomes = []
        for tree in trees:
            partials: List[Tuple[str, Any]] = []
            for index, (host, keyed) in enumerate(worker_keyed_items):
                split = shims[index].split(keyed)
                partials.append((host, rebundle(split[tree.tree_index])))
            outcomes.append(self._run_on_trees(
                app, f"{job_id}:t{tree.tree_index}", master,
                partials, [tree], tenant=tenant or app,
            ))
        merged = self._mergers[app](
            [outcome.value for outcome in outcomes]
        )
        boxes_used = [b for o in outcomes for b in o.boxes_used]
        responses: List[Tuple[int, Any]] = [(0, merged)]
        responses.extend((i, None) for i in range(1, len(hosts)))
        parts = [o.completeness for o in outcomes
                 if o.completeness is not None]
        return RequestOutcome(
            request_id=job_id,
            value=merged,
            worker_responses=responses,
            boxes_used=boxes_used,
            trees_used=[t.tree_index for t in trees],
            bytes_into_boxes=sum(o.bytes_into_boxes for o in outcomes),
            shim_events=[e for o in outcomes for e in o.shim_events],
            completeness=Completeness.merged(parts) if parts else None,
        )

    # -- internals -----------------------------------------------------------

    def _check_app(self, app: str) -> None:
        if app not in self._functions:
            raise KeyError(f"app {app!r} is not registered")

    def _emit_event(self, events: List[ShimEvent], kind: str, source: str,
                    target: str, attempt: int = 0, detail: str = "",
                    request: str = "", **tags: object) -> None:
        """Record one shim lifecycle event everywhere it is observed:
        the outcome's audit trail, the ``platform.shim.<kind>`` tally
        in the metrics registry, and (when tracing) an instant on the
        platform timeline.  ``request`` threads the originating request
        id onto the instant (the critical-path extractor groups shim
        events per request by it); extra ``tags`` land on the instant
        only.
        """
        events.append(ShimEvent(at=self._clock, kind=kind, source=source,
                                target=target, attempt=attempt,
                                detail=detail))
        METRICS.counter(f"platform.shim.{kind}").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(f"shim.{kind}", self._clock, layer="platform",
                           source=source, target=target, attempt=attempt,
                           detail=detail, request=request, **tags)

    def _admit(self, tenant: str) -> None:
        """Admission gate: raises AdmissionNack when the shim refuses."""
        if self._admission is None:
            return
        depth = max(
            (runtime.pending_count() for runtime in self._boxes.values()),
            default=0,
        )
        self._admission.admit(tenant, self._clock, queue_depth=depth)

    def _box_unreachable(self, box_id: str,
                         master: Optional[str]) -> bool:
        """Down, or cut off from the master by an active partition.

        A partitioned box is alive but its aggregates cannot reach the
        master, so from the request's point of view it is exactly as
        unreachable as a crashed one -- connect attempts time out.
        """
        if self._faults.box_down(box_id, self._clock):
            return True
        if master is not None:
            isolated = getattr(self._faults, "isolated", None)
            if isolated is not None \
                    and isolated(box_id, master, self._clock) is not None:
                return True
        return False

    def _probe_box(self, box_id: str, request_key: str,
                   events: List[ShimEvent],
                   master: Optional[str] = None) -> bool:
        """Connect-time probe with retries, burning virtual clock.

        Each failed attempt costs ``timeout`` plus a jittered backoff;
        because the clock advances between attempts, a box that recovers
        during a backoff window is genuinely saved by the retry.

        With circuit breakers enabled, an open breaker fails the probe
        immediately (zero clock burnt); a half-open breaker allows one
        probe attempt only.  With a retry ``deadline``, attempts stop
        once the send's clock budget is exhausted.  ``master`` extends
        the verdict to partition scopes: a box isolated from the master
        fails its probes for as long as the partition holds.
        """
        policy = self._retry
        breaker = (self._breakers.breaker(box_id)
                   if self._breakers is not None else None)
        if breaker is not None and not breaker.allow(self._clock):
            self._emit_event(events, "breaker-open", request_key, box_id,
                             request=request_key)
            return False
        attempts = policy.max_attempts
        if breaker is not None and breaker.state == HALF_OPEN:
            attempts = 1
        tracer = get_tracer()
        probe_span = tracer.begin(
            "platform.probe", self._clock, layer="platform",
            target=box_id, request=request_key,
        ) if tracer.enabled else 0
        try:
            started = self._clock
            for attempt in range(1, attempts + 1):
                if policy.deadline is not None and attempt > 1 \
                        and self._clock - started >= policy.deadline:
                    self._emit_event(events, "deadline", request_key,
                                     box_id, attempt=attempt - 1,
                                     detail=f"budget {policy.deadline:g}",
                                     request=request_key)
                    return False
                if not self._box_unreachable(box_id, master):
                    self._clock += policy.send_latency
                    if breaker is not None:
                        breaker.record_success(self._clock)
                    return True
                self._clock += policy.timeout
                self._emit_event(events, "retry", request_key, box_id,
                                 attempt=attempt, request=request_key)
                if breaker is not None:
                    breaker.record_failure(self._clock)
                if attempt < attempts:
                    self._clock += policy.backoff(
                        attempt, key=f"{request_key}->{box_id}")
            return False
        finally:
            if probe_span:
                tracer.end(probe_span, self._clock)

    def _overload_nack_reason(self, box_id: str) -> Optional[str]:
        """Why a reachable box should be planned out of a new tree.

        Scheduled ``BOX_SHED`` windows and the box's own health feed
        (``pressured``/``shedding``) both refuse new work; the sender
        walks its ladder instead of loading the box further.  Under a
        partition policy with ``avoid_gray``, detector-flagged boxes
        are planned out the same way -- a gray box heartbeats fine, so
        only the latency feed can get it out of new trees.
        """
        if self._faults is not None:
            shedding = getattr(self._faults, "shedding", None)
            if shedding is not None and shedding(box_id, self._clock):
                return "shed-window"
        if self._overload is not None and self._overload.avoid_pressured:
            state = self._boxes[box_id].health
            if state in (PRESSURED, SHEDDING):
                return f"health={state}"
        if self._gray is not None and self._partition.avoid_gray \
                and self._gray.is_gray(box_id):
            # A gray flag must not outlive the episode: re-measure the
            # box with a hedged probe (clock charge capped at the hedge
            # deadline plus one healthy send) instead of trusting the
            # stale flag forever.  A recovered box clears itself here
            # and returns to the planner.
            cost = self._retry.send_latency * self._delivery_factor(box_id)
            self._gray.observe(box_id, cost, at=self._clock)
            if self._partition.hedging():
                cost = min(cost,
                           self._partition.hedge_deadline
                           + self._retry.send_latency)
            self._clock += cost
            if self._gray.is_gray(box_id):
                return "gray"
        return None

    def _resolve_tree(self, tree: AggregationTree, request_key: str,
                      probes: Dict[str, bool], events: List[ShimEvent],
                      nacked: Set[str]) -> AggregationTree:
        """Probe every box and rewire the unreachable ones out (§3.1).

        Runs *before* expected counts are announced, so boxes never wait
        for partials that degraded elsewhere.  Probe verdicts are cached
        in ``probes`` for the shims' ladder walks.  Reachable boxes that
        refuse new work (shed windows, pressured health) are NACKed and
        planned out the same way -- the overload re-planning path.
        """
        if self._faults is None and self._overload is None:
            return tree
        effective = tree
        for box_id in sorted(tree.boxes):
            reachable = probes.get(box_id)
            if reachable is None:
                reachable = (self._probe_box(box_id, request_key, events,
                                             master=tree.master)
                             if self._faults is not None else True)
                if reachable:
                    reason = self._overload_nack_reason(box_id)
                    if reason is not None:
                        reachable = False
                        nacked.add(box_id)
                        self._emit_event(events, "nack", request_key,
                                         box_id, detail=reason,
                                         request=request_key)
                probes[box_id] = reachable
            if not reachable and box_id in effective.boxes:
                effective = rewire_failed_box(effective, box_id)
                if box_id not in nacked:
                    self._emit_event(events, "unreachable", request_key,
                                     box_id,
                                     attempt=self._retry.max_attempts,
                                     request=request_key)
        return effective

    def _delivery_factor(self, box_id: str) -> float:
        """Combined slowdown of a delivery into ``box_id`` right now
        (capacity degradation x overload window x gray window)."""
        factor = self._faults.degradation(box_id, self._clock)
        overload = getattr(self._faults, "overload_factor", None)
        if overload is not None:
            factor *= overload(box_id, self._clock)
        gray = getattr(self._faults, "gray_factor", None)
        if gray is not None:
            factor *= gray(box_id, self._clock)
        return factor

    def _note_degradation(self, box_id: str, source: str,
                          events: List[ShimEvent],
                          request: str = "") -> None:
        """Charge a delivery's clock cost, inflated if the box is slow.

        The true (pre-hedge) cost feeds the gray detector: hedging
        hides latency from the request, not from the health machinery.
        With hedging on, a delivery slower than the hedge deadline is
        raced against a duplicate send down the healthy path, capping
        the charged cost at ``hedge_deadline`` plus one healthy send.
        """
        if self._faults is None:
            return
        factor = self._delivery_factor(box_id)
        cost = self._retry.send_latency * factor
        if self._gray is not None:
            self._gray.observe(box_id, cost, at=self._clock)
        policy = self._partition
        if policy is not None and policy.hedging() \
                and cost > policy.hedge_deadline:
            hedged = policy.hedge_deadline + self._retry.send_latency
            if hedged < cost:
                self._clock += hedged
                self._emit_event(
                    events, "hedge", source, box_id,
                    detail=f"saved {cost - hedged:g}", request=request,
                    cost=hedged)
                return
        self._clock += cost
        if factor > 1.0:
            self._emit_event(events, "degraded", source, box_id,
                             detail=f"x{factor:g}", request=request,
                             cost=cost)

    def _prune_excluded(self, tree: AggregationTree,
                        excluded: Dict[int, str]) -> AggregationTree:
        """Rewire out boxes whose every input is behind the partition.

        Runs *before* probing: a box that only serves excluded workers
        would otherwise burn the full retry budget timing out against
        the partition, for a subtree that cannot contribute anyway.
        Pruning cascades (a parent whose only child was pruned goes
        next), so the surviving tree has live inputs at every vertex.
        """
        if not excluded:
            return tree
        pruned = tree
        changed = True
        while changed:
            changed = False
            for box_id in sorted(pruned.boxes):
                vertex = pruned.boxes[box_id]
                if vertex.children:
                    continue
                if any(w not in excluded for w in vertex.direct_workers):
                    continue
                pruned = rewire_failed_box(pruned, box_id)
                changed = True
                break
        return pruned

    def _wait_out_churn(self, worker_index: int,
                        events: List[ShimEvent],
                        request: str = "") -> None:
        """A churning worker holds its emission until the window ends."""
        if self._faults is None:
            return
        until = self._faults.churn_until(worker_index, self._clock)
        if until is not None and until > self._clock:
            self._emit_event(events, "churn", f"worker:{worker_index}",
                             f"worker:{worker_index}",
                             detail=f"until {until:g}", request=request,
                             until=until)
            self._clock = until

    def _run_on_trees(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        trees: Sequence[AggregationTree],
        tenant: str = "",
    ) -> RequestOutcome:
        with get_tracer().span("platform.request", lambda: self._clock,
                               layer="platform", request=request_id,
                               app=app, workers=len(worker_partials),
                               trees=len(trees), tenant=tenant or app):
            return self._run_on_trees_traced(
                app, request_id, master, worker_partials, trees)

    def _run_on_trees_traced(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        trees: Sequence[AggregationTree],
    ) -> RequestOutcome:
        shim = self._master_shims.setdefault(master, MasterShim(master))
        events: List[ShimEvent] = []
        probes: Dict[str, bool] = {}
        nacked: Set[str] = set()
        # Partition check first: workers the fault oracle reports as
        # isolated from the master cannot deliver, no matter how many
        # retries are burnt.  With a partition policy they are dropped
        # (partial delivery); without one the request fails fast -- the
        # fail-stop baseline.
        excluded: Dict[int, str] = {}
        if self._faults is not None:
            isolated = getattr(self._faults, "isolated", None)
            if isolated is not None:
                for index, (host, _) in enumerate(worker_partials):
                    scope = isolated(host, master, self._clock)
                    if scope is not None:
                        excluded[index] = scope
        if excluded:
            missing = tuple(sorted(excluded))
            scopes = tuple(sorted(set(excluded.values())))
            if self._partition is None or not self._partition.allow_partial:
                raise SubtreeUnreachable(request_id, missing, scopes,
                                         detail="partial delivery disabled")
            if len(excluded) == len(worker_partials):
                raise SubtreeUnreachable(request_id, missing, scopes,
                                         detail="no reachable workers")
            for index in missing:
                self._emit_event(events, "partition", f"worker:{index}",
                                 excluded[index], request=request_id)
        # Resolve the effective trees next: partition-only subtrees are
        # pruned without probing, then unreachable boxes are rewired
        # out before announcement keeps every expected count honest.
        pairs = [
            (tree,
             self._resolve_tree(self._prune_excluded(tree, excluded),
                                request_id, probes, events, nacked))
            for tree in trees
        ]
        shim.intercept_request(request_id, [eff for _, eff in pairs],
                               excluded=sorted(excluded))
        boxes_used: List[str] = []
        bytes_in = 0.0
        rng = random.Random(stable_hash(request_id) & 0xFFFF)

        for original, tree in pairs:
            tree_request = self._tree_request(request_id, tree)
            # Announce expected input counts to each participating box
            # (excluded workers will never emit, so they are not
            # expected anywhere).
            for box_id, vertex in tree.boxes.items():
                expected = sum(1 for w in vertex.direct_workers
                               if w not in excluded) + len(vertex.children)
                self._boxes[box_id].announce(app, tree_request, expected)

            # Workers emit; shims walk the ladder into the entry boxes.
            # The shim sees the *original* tree (it skips dead boxes up
            # the ancestor chain itself), which lands exactly on the
            # effective tree's entry, so the announced counts match.
            transport = _RequestTransport(
                self, app, request_id, tree_request, shim, events, probes,
                rng, master=master,
            )
            # Emissions queued for upstream delivery.  Each entry is
            # (box_id, aggregate, source_tag): the final emission of a
            # box travels as ``box:<id>``; pressure-relief flush deltas
            # travel under fresh ``box:<id>@d<k>`` tags because they
            # are *additional* inputs to the parent beyond its
            # announced count (expected is adjusted before delivery).
            ready: List[Tuple[str, Any, str]] = []
            delta_seq: Dict[str, int] = {}

            def enqueue_shed(box_id: str) -> None:
                for delta in self._boxes[box_id].drain_shed():
                    k = delta_seq.get(box_id, 0)
                    delta_seq[box_id] = k + 1
                    ready.append((box_id, delta, f"box:{box_id}@d{k}"))

            for index, (host, value) in enumerate(worker_partials):
                if index in excluded:
                    continue
                self._wait_out_churn(index, events, request=request_id)
                wshim = WorkerShim(host, index, [original])
                landed, emitted, nbytes = wshim.send(value, transport)
                bytes_in += nbytes
                if landed is not None:
                    enqueue_shed(landed)
                if emitted is not None:
                    ready.append((landed, emitted, f"box:{landed}"))

            # Propagate aggregates up the tree until the roots emit.  A
            # rewired tree can have several roots (a crashed root's
            # children); their outputs -- and any flush deltas from a
            # root -- merge into the tree's single aggregate before
            # delivery.
            root_values: List[Any] = []
            while ready:
                box_id, emitted, tag = ready.pop(0)
                boxes_used.append(box_id)
                vertex = tree.boxes[box_id]
                if vertex.parent is None:
                    root_values.append(emitted.value)
                else:
                    parent = vertex.parent
                    if tag != f"box:{box_id}":
                        # A flush delta raises the parent's expected
                        # count *before* delivery, so the parent cannot
                        # emit early and miss the box's final result.
                        self._boxes[parent].adjust_expected(
                            app, tree_request, +1)
                    parent_emitted, nbytes = self._feed_box(
                        app, tree_request, parent, tag, emitted.value, rng,
                        origin=request_id,
                    )
                    self._note_degradation(parent, tag, events,
                                           request=request_id)
                    bytes_in += nbytes
                    enqueue_shed(parent)
                    if parent_emitted is not None:
                        ready.append(
                            (parent, parent_emitted, f"box:{parent}"))

            if root_values:
                value = (root_values[0] if len(root_values) == 1
                         else self._mergers[app](root_values))
                shim.deliver_aggregate(request_id, tree.tree_index, value)

            if not tree.boxes and tree.direct_workers():
                # Degenerate tree: no boxes anywhere, all direct.
                pass

        if not shim.is_complete(request_id):
            raise RuntimeError(
                f"request {request_id!r} incomplete: boxes never emitted "
                "(inconsistent expected counts?)"
            )
        responses = shim.emulate_worker_responses(
            request_id, merge=self._mergers[app]
        )
        completeness = None
        if self._partition is not None:
            completeness = Completeness(
                workers_total=len(worker_partials),
                workers_included=len(worker_partials) - len(excluded),
                missing_workers=tuple(sorted(excluded)),
                missing_scopes=tuple(sorted(set(excluded.values()))),
            )
        return RequestOutcome(
            request_id=request_id,
            value=responses[0][1],
            worker_responses=responses,
            boxes_used=boxes_used,
            trees_used=[t.tree_index for t in trees],
            bytes_into_boxes=bytes_in,
            shim_events=events,
            completeness=completeness,
        )

    @staticmethod
    def _tree_request(request_id: str, tree: AggregationTree) -> str:
        return f"{request_id}@t{tree.tree_index}"

    def _feed_box(self, app: str, request_id: str, box_id: str,
                  source: str, value: Any, rng: random.Random,
                  origin: str = ""):
        """Serialise, frame, chunk and deliver one partial to a box.

        ``origin`` is the platform-level request id behind this
        delivery (``request_id`` is the per-tree key ``<origin>@t<k>``);
        it is threaded onto the delivery span and, via
        :attr:`AggBoxRuntime.trace_origin`, onto every span/instant the
        box emits while processing the chunks.
        """
        runtime = self._boxes[box_id]
        # Keep the box's clock in step so health transitions and
        # heartbeats are stamped with platform virtual time.
        runtime.clock = max(runtime.clock, self._clock)
        runtime.trace_origin = origin
        binding = runtime.binding(app)
        payload = frame(binding.serialise(value))
        with get_tracer().span("platform.deliver", lambda: self._clock,
                               layer="platform", box=box_id,
                               source=source, bytes=len(payload),
                               request=origin):
            emitted = None
            offset = 0
            while offset < len(payload):
                size = rng.randint(1, _CHUNK_BYTES)
                chunk = payload[offset:offset + size]
                offset += size
                result = runtime.submit_chunk(app, request_id, source, chunk)
                if result is not None:
                    emitted = result
        return emitted, float(len(payload))


class _RequestTransport:
    """Connection semantics handed to :meth:`WorkerShim.send`.

    ``connect`` replays the platform's probe verdicts (probing -- and
    burning retry clock -- on first contact with a box); deliveries
    route into the platform's box runtimes / master shim and charge any
    degradation cost.
    """

    def __init__(self, platform: NetAggPlatform, app: str, request_id: str,
                 tree_request: str, master_shim: MasterShim,
                 events: List[ShimEvent], probes: Dict[str, bool],
                 rng: random.Random, master: str = "") -> None:
        self._platform = platform
        self._app = app
        self._request_id = request_id
        self._tree_request = tree_request
        self._master_shim = master_shim
        self._events = events
        self._probes = probes
        self._rng = rng
        self._master = master or None

    def connect(self, source: str, box_id: str) -> bool:
        platform = self._platform
        if platform._faults is None:
            return True
        reachable = self._probes.get(box_id)
        if reachable is None:
            reachable = platform._probe_box(
                box_id, f"{self._request_id}/{source}", self._events,
                master=self._master)
            self._probes[box_id] = reachable
        return reachable

    def record(self, kind: str, source: str, target: str,
               detail: str = "") -> None:
        self._platform._emit_event(self._events, kind, source, target,
                                   detail=detail,
                                   request=self._request_id)

    def deliver_box(self, box_id: str, worker_index: int, value: Any):
        emitted, nbytes = self._platform._feed_box(
            self._app, self._tree_request, box_id,
            f"worker:{worker_index}", value, self._rng,
            origin=self._request_id,
        )
        self._platform._note_degradation(
            box_id, f"worker:{worker_index}", self._events,
            request=self._request_id)
        return box_id, emitted, nbytes

    def deliver_master(self, worker_index: int, value: Any):
        self._master_shim.deliver_direct(self._request_id, worker_index,
                                         value)
        return None, None, 0.0
