"""The NetAgg platform: boxes + shims wired to a topology.

This is the *functional* half of the reproduction: it executes real
application requests end-to-end through the same aggregation trees the
flow-level simulator prices, so results computed "through NetAgg" can be
checked for exact equality against a centralised computation.

Execution model:

- online requests (Solr-style) hash onto one aggregation tree each;
- batch jobs (Hadoop-style) split keyed data across all trees and merge
  the per-tree aggregates at the master;
- worker payloads travel as framed binary (the :mod:`repro.wire` layer),
  delivered to boxes in bounded chunks, so streaming deserialisation is
  exercised on every request;
- failed boxes are rewired out of the trees per §3.1 before execution.

Fault-aware execution: constructed with a
:class:`repro.faults.PlatformFaultInjector` (and optionally a
:class:`repro.faults.RetryPolicy`), the platform advances a
deterministic virtual clock and probes each box at connect time.  A box
that is down burns ``timeout`` per attempt plus jittered backoff; a box
that exhausts its attempts is rewired out of the request's trees
*before* expected counts are announced, so partial-result accounting
stays consistent.  Worker shims then walk the degradation ladder (entry
box -> next on-path ancestor -> direct to master) and every retry,
fallback, bypass, degradation and churn wait is recorded as a
:class:`repro.core.shim.ShimEvent` on the outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import AggregationFunction
from repro.core.failure import rewire_failed_box
from repro.core.shim import MasterShim, ShimEvent, WorkerShim
from repro.core.tree import AggregationTree, TreeBuilder
from repro.netsim.routing import stable_hash
from repro.topology.base import Topology
from repro.wire.framing import frame

#: Partial-result payloads are delivered to boxes in chunks of this size
#: to exercise frame reassembly across chunk boundaries.
_CHUNK_BYTES = 1024


@dataclass
class RequestOutcome:
    """Result of one end-to-end request execution."""

    request_id: str
    value: Any
    #: (worker_index, payload) pairs the master application observes; all
    #: but one are empty (the shim's empty-result emulation).
    worker_responses: List[Tuple[int, Any]]
    #: Boxes that performed aggregation work, in completion order.
    boxes_used: List[str]
    #: Trees used (one for online requests, all for batch jobs).
    trees_used: List[int]
    #: Bytes of framed partial-result data entering boxes.
    bytes_into_boxes: float
    #: Retries, fallbacks, bypasses, degradations and churn waits the
    #: shims performed while executing this request (empty when the
    #: platform has no fault injector).
    shim_events: List[ShimEvent] = field(default_factory=list)

    def events_of_kind(self, kind: str) -> List[ShimEvent]:
        return [e for e in self.shim_events if e.kind == kind]


class NetAggPlatform:
    """Deployment of NetAgg over a topology with attached agg boxes.

    ``faults`` is a connect-time fault oracle (duck-typed after
    :class:`repro.faults.PlatformFaultInjector`: ``box_down``,
    ``degradation``, ``churn_until``); ``retry`` the shim retry policy
    (defaults to :class:`repro.faults.RetryPolicy` when ``faults`` is
    given).  Without an oracle every connect succeeds immediately and
    execution is identical to the fault-free platform.
    """

    def __init__(self, topo: Topology, faults: Optional[Any] = None,
                 retry: Optional[Any] = None) -> None:
        self._topo = topo
        self._builder = TreeBuilder(topo)
        self._boxes: Dict[str, AggBoxRuntime] = {
            info.box_id: AggBoxRuntime(info.box_id)
            for info in topo.all_boxes()
        }
        self._functions: Dict[str, AggregationFunction] = {}
        self._mergers: Dict[str, Callable[[Sequence[Any]], Any]] = {}
        self._failed: Set[str] = set()
        self._master_shims: Dict[str, MasterShim] = {}
        self._faults = faults
        if retry is None and faults is not None:
            from repro.faults.retry import RetryPolicy
            retry = RetryPolicy()
        self._retry = retry
        self._clock = 0.0

    # -- deployment ------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topo

    def box_runtime(self, box_id: str) -> AggBoxRuntime:
        return self._boxes[box_id]

    def register_app(
        self,
        app: str,
        function: AggregationFunction,
        serialise: Callable[[Any], bytes],
        deserialise: Callable[[bytes], Any],
    ) -> None:
        """Install an application's aggregation function on every box."""
        if app in self._functions:
            raise ValueError(f"app {app!r} already registered")
        self._functions[app] = function
        self._mergers[app] = lambda parts: function.merge(list(parts))
        for runtime in self._boxes.values():
            runtime.register_app(AppBinding(
                app=app,
                function=function,
                deserialise=deserialise,
                serialise=serialise,
            ))

    def apps(self) -> List[str]:
        return sorted(self._functions)

    @property
    def clock(self) -> float:
        """The platform's virtual clock (advanced by sends/retries)."""
        return self._clock

    def advance_clock(self, t: float) -> None:
        """Move the virtual clock forward to ``t`` (never backwards).

        Lets callers start a request inside a chosen fault window of the
        schedule (the clock otherwise only crawls by send latencies).
        """
        self._clock = max(self._clock, t)

    def fail_box(self, box_id: str) -> None:
        """Mark a box failed; future trees route around it (§3.1)."""
        if box_id not in self._boxes:
            raise KeyError(f"unknown box {box_id!r}")
        self._failed.add(box_id)

    def recover_box(self, box_id: str) -> None:
        self._failed.discard(box_id)

    def failed_boxes(self) -> Set[str]:
        return set(self._failed)

    # -- execution ------------------------------------------------------------

    def build_trees(self, key: str, master: str,
                    worker_hosts: Sequence[str],
                    n_trees: int = 1) -> List[AggregationTree]:
        """Aggregation trees for the endpoints, failures rewired out."""
        trees = self._builder.build_many(key, master, worker_hosts, n_trees)
        for i, tree in enumerate(trees):
            for box_id in sorted(self._failed):
                if box_id in tree.boxes:
                    tree = rewire_failed_box(tree, box_id)
            trees[i] = tree
        return trees

    def execute_request(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        n_trees: int = 1,
    ) -> RequestOutcome:
        """Run one online request end-to-end (one tree, by request hash)."""
        self._check_app(app)
        trees = self.build_trees(request_id, master,
                                 [h for h, _ in worker_partials], n_trees)
        chosen = trees[stable_hash(request_id) % len(trees)]
        return self._run_on_trees(app, request_id, master,
                                  worker_partials, [chosen])

    def execute_batch(
        self,
        app: str,
        job_id: str,
        master: str,
        worker_keyed_items: Sequence[Tuple[str, List[Tuple[str, Any]]]],
        n_trees: int = 1,
        rebundle: Optional[Callable[[List[Any]], Any]] = None,
    ) -> RequestOutcome:
        """Run a batch job: keyed items split across all trees (§3.1).

        ``worker_keyed_items`` maps each worker host to its keyed partial
        data; ``rebundle`` turns one worker's per-tree item list into the
        partial-result value the aggregation function expects (defaults
        to the identity on lists).
        """
        self._check_app(app)
        rebundle = rebundle or (lambda items: items)
        hosts = [h for h, _ in worker_keyed_items]
        trees = self.build_trees(job_id, master, hosts, n_trees)
        shims = [
            WorkerShim(host, index, trees)
            for index, host in enumerate(hosts)
        ]
        outcomes = []
        for tree in trees:
            partials: List[Tuple[str, Any]] = []
            for index, (host, keyed) in enumerate(worker_keyed_items):
                split = shims[index].split(keyed)
                partials.append((host, rebundle(split[tree.tree_index])))
            outcomes.append(self._run_on_trees(
                app, f"{job_id}:t{tree.tree_index}", master,
                partials, [tree],
            ))
        merged = self._mergers[app](
            [outcome.value for outcome in outcomes]
        )
        boxes_used = [b for o in outcomes for b in o.boxes_used]
        responses: List[Tuple[int, Any]] = [(0, merged)]
        responses.extend((i, None) for i in range(1, len(hosts)))
        return RequestOutcome(
            request_id=job_id,
            value=merged,
            worker_responses=responses,
            boxes_used=boxes_used,
            trees_used=[t.tree_index for t in trees],
            bytes_into_boxes=sum(o.bytes_into_boxes for o in outcomes),
            shim_events=[e for o in outcomes for e in o.shim_events],
        )

    # -- internals -----------------------------------------------------------

    def _check_app(self, app: str) -> None:
        if app not in self._functions:
            raise KeyError(f"app {app!r} is not registered")

    def _probe_box(self, box_id: str, request_key: str,
                   events: List[ShimEvent]) -> bool:
        """Connect-time probe with retries, burning virtual clock.

        Each failed attempt costs ``timeout`` plus a jittered backoff;
        because the clock advances between attempts, a box that recovers
        during a backoff window is genuinely saved by the retry.
        """
        policy = self._retry
        for attempt in range(1, policy.max_attempts + 1):
            if not self._faults.box_down(box_id, self._clock):
                self._clock += policy.send_latency
                return True
            self._clock += policy.timeout
            events.append(ShimEvent(
                at=self._clock, kind="retry", source=request_key,
                target=box_id, attempt=attempt,
            ))
            if attempt < policy.max_attempts:
                self._clock += policy.backoff(
                    attempt, key=f"{request_key}->{box_id}")
        return False

    def _resolve_tree(self, tree: AggregationTree, request_key: str,
                      probes: Dict[str, bool],
                      events: List[ShimEvent]) -> AggregationTree:
        """Probe every box and rewire the unreachable ones out (§3.1).

        Runs *before* expected counts are announced, so boxes never wait
        for partials that degraded elsewhere.  Probe verdicts are cached
        in ``probes`` for the shims' ladder walks.
        """
        if self._faults is None:
            return tree
        effective = tree
        for box_id in sorted(tree.boxes):
            reachable = probes.get(box_id)
            if reachable is None:
                reachable = self._probe_box(box_id, request_key, events)
                probes[box_id] = reachable
            if not reachable and box_id in effective.boxes:
                effective = rewire_failed_box(effective, box_id)
                events.append(ShimEvent(
                    at=self._clock, kind="unreachable", source=request_key,
                    target=box_id, attempt=self._retry.max_attempts,
                ))
        return effective

    def _note_degradation(self, box_id: str, source: str,
                          events: List[ShimEvent]) -> None:
        """Charge a delivery's clock cost, inflated if the box is slow."""
        if self._faults is None:
            return
        factor = self._faults.degradation(box_id, self._clock)
        self._clock += self._retry.send_latency * factor
        if factor > 1.0:
            events.append(ShimEvent(
                at=self._clock, kind="degraded", source=source,
                target=box_id, detail=f"x{factor:g}",
            ))

    def _wait_out_churn(self, worker_index: int,
                        events: List[ShimEvent]) -> None:
        """A churning worker holds its emission until the window ends."""
        if self._faults is None:
            return
        until = self._faults.churn_until(worker_index, self._clock)
        if until is not None and until > self._clock:
            events.append(ShimEvent(
                at=self._clock, kind="churn",
                source=f"worker:{worker_index}",
                target=f"worker:{worker_index}", detail=f"until {until:g}",
            ))
            self._clock = until

    def _run_on_trees(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        trees: Sequence[AggregationTree],
    ) -> RequestOutcome:
        shim = self._master_shims.setdefault(master, MasterShim(master))
        events: List[ShimEvent] = []
        probes: Dict[str, bool] = {}
        # Resolve the effective trees first: unreachable boxes rewired
        # out before announcement keeps every expected count honest.
        pairs = [
            (tree, self._resolve_tree(tree, request_id, probes, events))
            for tree in trees
        ]
        shim.intercept_request(request_id, [eff for _, eff in pairs])
        boxes_used: List[str] = []
        bytes_in = 0.0
        rng = random.Random(stable_hash(request_id) & 0xFFFF)

        for original, tree in pairs:
            tree_request = self._tree_request(request_id, tree)
            # Announce expected input counts to each participating box.
            for box_id, vertex in tree.boxes.items():
                expected = len(vertex.direct_workers) + len(vertex.children)
                self._boxes[box_id].announce(app, tree_request, expected)

            # Workers emit; shims walk the ladder into the entry boxes.
            # The shim sees the *original* tree (it skips dead boxes up
            # the ancestor chain itself), which lands exactly on the
            # effective tree's entry, so the announced counts match.
            transport = _RequestTransport(
                self, app, request_id, tree_request, shim, events, probes,
                rng,
            )
            ready: Dict[str, Any] = {}
            for index, (host, value) in enumerate(worker_partials):
                self._wait_out_churn(index, events)
                wshim = WorkerShim(host, index, [original])
                landed, emitted, nbytes = wshim.send(value, transport)
                bytes_in += nbytes
                if emitted is not None:
                    ready[landed] = emitted

            # Propagate aggregates up the tree until the roots emit.  A
            # rewired tree can have several roots (a crashed root's
            # children); their outputs merge into the tree's single
            # aggregate before delivery.
            root_values: List[Any] = []
            progress = True
            while progress:
                progress = False
                for box_id in list(ready):
                    emitted = ready.pop(box_id)
                    boxes_used.append(box_id)
                    vertex = tree.boxes[box_id]
                    if vertex.parent is None:
                        root_values.append(emitted.value)
                    else:
                        parent_emitted, nbytes = self._feed_box(
                            app, tree_request,
                            vertex.parent, f"box:{box_id}", emitted.value,
                            rng,
                        )
                        self._note_degradation(vertex.parent,
                                               f"box:{box_id}", events)
                        bytes_in += nbytes
                        if parent_emitted is not None:
                            ready[vertex.parent] = parent_emitted
                    progress = True

            if root_values:
                value = (root_values[0] if len(root_values) == 1
                         else self._mergers[app](root_values))
                shim.deliver_aggregate(request_id, tree.tree_index, value)

            if not tree.boxes and tree.direct_workers():
                # Degenerate tree: no boxes anywhere, all direct.
                pass

        if not shim.is_complete(request_id):
            raise RuntimeError(
                f"request {request_id!r} incomplete: boxes never emitted "
                "(inconsistent expected counts?)"
            )
        responses = shim.emulate_worker_responses(
            request_id, merge=self._mergers[app]
        )
        return RequestOutcome(
            request_id=request_id,
            value=responses[0][1],
            worker_responses=responses,
            boxes_used=boxes_used,
            trees_used=[t.tree_index for t in trees],
            bytes_into_boxes=bytes_in,
            shim_events=events,
        )

    @staticmethod
    def _tree_request(request_id: str, tree: AggregationTree) -> str:
        return f"{request_id}@t{tree.tree_index}"

    def _feed_box(self, app: str, request_id: str, box_id: str,
                  source: str, value: Any, rng: random.Random):
        """Serialise, frame, chunk and deliver one partial to a box."""
        runtime = self._boxes[box_id]
        binding = runtime.binding(app)
        payload = frame(binding.serialise(value))
        emitted = None
        offset = 0
        while offset < len(payload):
            size = rng.randint(1, _CHUNK_BYTES)
            chunk = payload[offset:offset + size]
            offset += size
            result = runtime.submit_chunk(app, request_id, source, chunk)
            if result is not None:
                emitted = result
        return emitted, float(len(payload))


class _RequestTransport:
    """Connection semantics handed to :meth:`WorkerShim.send`.

    ``connect`` replays the platform's probe verdicts (probing -- and
    burning retry clock -- on first contact with a box); deliveries
    route into the platform's box runtimes / master shim and charge any
    degradation cost.
    """

    def __init__(self, platform: NetAggPlatform, app: str, request_id: str,
                 tree_request: str, master_shim: MasterShim,
                 events: List[ShimEvent], probes: Dict[str, bool],
                 rng: random.Random) -> None:
        self._platform = platform
        self._app = app
        self._request_id = request_id
        self._tree_request = tree_request
        self._master_shim = master_shim
        self._events = events
        self._probes = probes
        self._rng = rng

    def connect(self, source: str, box_id: str) -> bool:
        platform = self._platform
        if platform._faults is None:
            return True
        reachable = self._probes.get(box_id)
        if reachable is None:
            reachable = platform._probe_box(
                box_id, f"{self._request_id}/{source}", self._events)
            self._probes[box_id] = reachable
        return reachable

    def record(self, kind: str, source: str, target: str,
               detail: str = "") -> None:
        self._events.append(ShimEvent(
            at=self._platform._clock, kind=kind, source=source,
            target=target, detail=detail,
        ))

    def deliver_box(self, box_id: str, worker_index: int, value: Any):
        emitted, nbytes = self._platform._feed_box(
            self._app, self._tree_request, box_id,
            f"worker:{worker_index}", value, self._rng,
        )
        self._platform._note_degradation(
            box_id, f"worker:{worker_index}", self._events)
        return box_id, emitted, nbytes

    def deliver_master(self, worker_index: int, value: Any):
        self._master_shim.deliver_direct(self._request_id, worker_index,
                                         value)
        return None, None, 0.0
