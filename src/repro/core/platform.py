"""The NetAgg platform: boxes + shims wired to a topology.

This is the *functional* half of the reproduction: it executes real
application requests end-to-end through the same aggregation trees the
flow-level simulator prices, so results computed "through NetAgg" can be
checked for exact equality against a centralised computation.

Execution model:

- online requests (Solr-style) hash onto one aggregation tree each;
- batch jobs (Hadoop-style) split keyed data across all trees and merge
  the per-tree aggregates at the master;
- worker payloads travel as framed binary (the :mod:`repro.wire` layer),
  delivered to boxes in bounded chunks, so streaming deserialisation is
  exercised on every request;
- failed boxes are rewired out of the trees per §3.1 before execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import AggregationFunction
from repro.core.failure import rewire_failed_box
from repro.core.shim import MasterShim, WorkerShim
from repro.core.tree import AggregationTree, TreeBuilder
from repro.netsim.routing import stable_hash
from repro.topology.base import Topology
from repro.wire.framing import frame

#: Partial-result payloads are delivered to boxes in chunks of this size
#: to exercise frame reassembly across chunk boundaries.
_CHUNK_BYTES = 1024


@dataclass
class RequestOutcome:
    """Result of one end-to-end request execution."""

    request_id: str
    value: Any
    #: (worker_index, payload) pairs the master application observes; all
    #: but one are empty (the shim's empty-result emulation).
    worker_responses: List[Tuple[int, Any]]
    #: Boxes that performed aggregation work, in completion order.
    boxes_used: List[str]
    #: Trees used (one for online requests, all for batch jobs).
    trees_used: List[int]
    #: Bytes of framed partial-result data entering boxes.
    bytes_into_boxes: float


class NetAggPlatform:
    """Deployment of NetAgg over a topology with attached agg boxes."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo
        self._builder = TreeBuilder(topo)
        self._boxes: Dict[str, AggBoxRuntime] = {
            info.box_id: AggBoxRuntime(info.box_id)
            for info in topo.all_boxes()
        }
        self._functions: Dict[str, AggregationFunction] = {}
        self._mergers: Dict[str, Callable[[Sequence[Any]], Any]] = {}
        self._failed: Set[str] = set()
        self._master_shims: Dict[str, MasterShim] = {}

    # -- deployment ------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topo

    def box_runtime(self, box_id: str) -> AggBoxRuntime:
        return self._boxes[box_id]

    def register_app(
        self,
        app: str,
        function: AggregationFunction,
        serialise: Callable[[Any], bytes],
        deserialise: Callable[[bytes], Any],
    ) -> None:
        """Install an application's aggregation function on every box."""
        if app in self._functions:
            raise ValueError(f"app {app!r} already registered")
        self._functions[app] = function
        self._mergers[app] = lambda parts: function.merge(list(parts))
        for runtime in self._boxes.values():
            runtime.register_app(AppBinding(
                app=app,
                function=function,
                deserialise=deserialise,
                serialise=serialise,
            ))

    def apps(self) -> List[str]:
        return sorted(self._functions)

    def fail_box(self, box_id: str) -> None:
        """Mark a box failed; future trees route around it (§3.1)."""
        if box_id not in self._boxes:
            raise KeyError(f"unknown box {box_id!r}")
        self._failed.add(box_id)

    def recover_box(self, box_id: str) -> None:
        self._failed.discard(box_id)

    def failed_boxes(self) -> Set[str]:
        return set(self._failed)

    # -- execution ------------------------------------------------------------

    def build_trees(self, key: str, master: str,
                    worker_hosts: Sequence[str],
                    n_trees: int = 1) -> List[AggregationTree]:
        """Aggregation trees for the endpoints, failures rewired out."""
        trees = self._builder.build_many(key, master, worker_hosts, n_trees)
        for i, tree in enumerate(trees):
            for box_id in sorted(self._failed):
                if box_id in tree.boxes:
                    tree = rewire_failed_box(tree, box_id)
            trees[i] = tree
        return trees

    def execute_request(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        n_trees: int = 1,
    ) -> RequestOutcome:
        """Run one online request end-to-end (one tree, by request hash)."""
        self._check_app(app)
        trees = self.build_trees(request_id, master,
                                 [h for h, _ in worker_partials], n_trees)
        chosen = trees[stable_hash(request_id) % len(trees)]
        return self._run_on_trees(app, request_id, master,
                                  worker_partials, [chosen])

    def execute_batch(
        self,
        app: str,
        job_id: str,
        master: str,
        worker_keyed_items: Sequence[Tuple[str, List[Tuple[str, Any]]]],
        n_trees: int = 1,
        rebundle: Optional[Callable[[List[Any]], Any]] = None,
    ) -> RequestOutcome:
        """Run a batch job: keyed items split across all trees (§3.1).

        ``worker_keyed_items`` maps each worker host to its keyed partial
        data; ``rebundle`` turns one worker's per-tree item list into the
        partial-result value the aggregation function expects (defaults
        to the identity on lists).
        """
        self._check_app(app)
        rebundle = rebundle or (lambda items: items)
        hosts = [h for h, _ in worker_keyed_items]
        trees = self.build_trees(job_id, master, hosts, n_trees)
        shims = [
            WorkerShim(host, index, trees)
            for index, host in enumerate(hosts)
        ]
        outcomes = []
        for tree in trees:
            partials: List[Tuple[str, Any]] = []
            for index, (host, keyed) in enumerate(worker_keyed_items):
                split = shims[index].split(keyed)
                partials.append((host, rebundle(split[tree.tree_index])))
            outcomes.append(self._run_on_trees(
                app, f"{job_id}:t{tree.tree_index}", master,
                partials, [tree],
            ))
        merged = self._mergers[app](
            [outcome.value for outcome in outcomes]
        )
        boxes_used = [b for o in outcomes for b in o.boxes_used]
        responses: List[Tuple[int, Any]] = [(0, merged)]
        responses.extend((i, None) for i in range(1, len(hosts)))
        return RequestOutcome(
            request_id=job_id,
            value=merged,
            worker_responses=responses,
            boxes_used=boxes_used,
            trees_used=[t.tree_index for t in trees],
            bytes_into_boxes=sum(o.bytes_into_boxes for o in outcomes),
        )

    # -- internals -----------------------------------------------------------

    def _check_app(self, app: str) -> None:
        if app not in self._functions:
            raise KeyError(f"app {app!r} is not registered")

    def _run_on_trees(
        self,
        app: str,
        request_id: str,
        master: str,
        worker_partials: Sequence[Tuple[str, Any]],
        trees: Sequence[AggregationTree],
    ) -> RequestOutcome:
        shim = self._master_shims.setdefault(master, MasterShim(master))
        shim.intercept_request(request_id, trees)
        boxes_used: List[str] = []
        bytes_in = 0.0
        rng = random.Random(stable_hash(request_id) & 0xFFFF)

        for tree in trees:
            # Announce expected input counts to each participating box.
            for box_id, vertex in tree.boxes.items():
                expected = len(vertex.direct_workers) + len(vertex.children)
                self._boxes[box_id].announce(app, self._tree_request(
                    request_id, tree), expected)

            # Workers emit; shims redirect into the entry boxes.
            ready: Dict[str, Any] = {}
            for index, (host, value) in enumerate(worker_partials):
                entry = tree.worker_entry[index]
                if entry is None:
                    shim.deliver_direct(request_id, index, value)
                    continue
                emitted, nbytes = self._feed_box(
                    app, self._tree_request(request_id, tree), entry,
                    f"worker:{index}", value, rng,
                )
                bytes_in += nbytes
                if emitted is not None:
                    ready[entry] = emitted

            # Propagate aggregates up the tree until the roots emit.
            progress = True
            while progress:
                progress = False
                for box_id in list(ready):
                    emitted = ready.pop(box_id)
                    boxes_used.append(box_id)
                    vertex = tree.boxes[box_id]
                    if vertex.parent is None:
                        shim.deliver_aggregate(request_id, tree.tree_index,
                                               emitted.value)
                    else:
                        parent_emitted, nbytes = self._feed_box(
                            app, self._tree_request(request_id, tree),
                            vertex.parent, f"box:{box_id}", emitted.value,
                            rng,
                        )
                        bytes_in += nbytes
                        if parent_emitted is not None:
                            ready[vertex.parent] = parent_emitted
                    progress = True

            if not tree.boxes and tree.direct_workers():
                # Degenerate tree: no boxes anywhere, all direct.
                pass

        if not shim.is_complete(request_id):
            raise RuntimeError(
                f"request {request_id!r} incomplete: boxes never emitted "
                "(inconsistent expected counts?)"
            )
        responses = shim.emulate_worker_responses(
            request_id, merge=self._mergers[app]
        )
        return RequestOutcome(
            request_id=request_id,
            value=responses[0][1],
            worker_responses=responses,
            boxes_used=boxes_used,
            trees_used=[t.tree_index for t in trees],
            bytes_into_boxes=bytes_in,
        )

    @staticmethod
    def _tree_request(request_id: str, tree: AggregationTree) -> str:
        return f"{request_id}@t{tree.tree_index}"

    def _feed_box(self, app: str, request_id: str, box_id: str,
                  source: str, value: Any, rng: random.Random):
        """Serialise, frame, chunk and deliver one partial to a box."""
        runtime = self._boxes[box_id]
        binding = runtime.binding(app)
        payload = frame(binding.serialise(value))
        emitted = None
        offset = 0
        while offset < len(payload):
            size = rng.randint(1, _CHUNK_BYTES)
            chunk = payload[offset:offset + size]
            offset += size
            result = runtime.submit_chunk(app, request_id, source, chunk)
            if result is not None:
                emitted = result
        return emitted, float(len(payload))
