"""Distributed aggregation-tree construction (§3.1).

A tree spans the agg boxes between a job's workers and its master: the
root is the master, leaves are workers, internal vertices are boxes.
Construction is deterministic per (key, tree index):

- each tree hashes one *lane* through the multi-rooted topology (one
  aggregation switch per pod, one core switch), so different trees of
  the same application spread over disjoint boxes and paths;
- a worker's partial results enter the *first box along its lane* to the
  master; box-less switches are skipped (partial deployments);
- when several boxes share a switch, the (key, tree, switch) hash picks
  one, balancing trees across boxes (scale-out).

Both the flow-level :class:`repro.aggregation.NetAggStrategy` and the
functional :class:`repro.core.platform.NetAggPlatform` build their trees
here, so the simulated and executed systems are wired identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.routing import stable_hash
from repro.topology.base import AGGR, CORE, AggBoxInfo, Topology


@dataclass
class BoxVertex:
    """One agg box participating in a tree."""

    info: AggBoxInfo
    #: Parent box id, or None when this box feeds the master directly.
    parent: Optional[str] = None
    #: Switch-node lane from this box's switch to the parent's switch
    #: (or to the master's ToR), inclusive of both endpoints.
    lane_to_parent: Tuple[str, ...] = ()
    #: Child box ids.
    children: List[str] = field(default_factory=list)
    #: Indices of workers whose partials enter the tree at this box.
    direct_workers: List[int] = field(default_factory=list)


@dataclass
class AggregationTree:
    """One aggregation tree of an application request/job."""

    key: str
    tree_index: int
    master: str
    master_tor: str
    #: worker index -> entry box id (None = no box on path, direct).
    worker_entry: Dict[int, Optional[str]]
    #: worker index -> switch-node lane from the worker's ToR to either
    #: the entry box's switch (inclusive) or the master's ToR (direct).
    worker_lane: Dict[int, Tuple[str, ...]]
    boxes: Dict[str, BoxVertex]

    def roots(self) -> List[str]:
        """Box ids that feed the master directly."""
        return sorted(
            box_id for box_id, vertex in self.boxes.items()
            if vertex.parent is None
        )

    def direct_workers(self) -> List[int]:
        """Workers with no box on their path (ship straight to master)."""
        return sorted(
            idx for idx, entry in self.worker_entry.items() if entry is None
        )

    def depth_of(self, box_id: str) -> int:
        """Hops from a box to the master along parent pointers."""
        depth = 1
        vertex = self.boxes[box_id]
        while vertex.parent is not None:
            vertex = self.boxes[vertex.parent]
            depth += 1
        return depth


class TreeConstructionError(RuntimeError):
    """Raised when lanes produce an inconsistent parent relation."""


class TreeBuilder:
    """Builds aggregation trees over a topology's deployed boxes."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo

    def build(self, key: str, master: str, worker_hosts: Sequence[str],
              tree_index: int = 0) -> AggregationTree:
        """Build the ``tree_index``-th tree for the given endpoints."""
        topo = self._topo
        master_tor = topo.tor_of(master)
        master_pod = topo.pod_of(master)
        tree = AggregationTree(
            key=key,
            tree_index=tree_index,
            master=master,
            master_tor=master_tor,
            worker_entry={},
            worker_lane={},
            boxes={},
        )
        for index, host in enumerate(worker_hosts):
            if host == master:
                raise ValueError(
                    f"master {host!r} cannot also be a worker ({key})"
                )
            lane = self.lane(key, tree_index, host, master_tor, master_pod)
            on_path = [s for s in lane if topo.boxes_at(s)]
            if not on_path:
                tree.worker_entry[index] = None
                tree.worker_lane[index] = tuple(lane)
                continue
            self._register_boxes(tree, key, tree_index, lane, on_path)
            entry_id = self.box_id(key, tree_index, on_path[0])
            tree.worker_entry[index] = entry_id
            tree.worker_lane[index] = tuple(
                lane[: lane.index(on_path[0]) + 1]
            )
            tree.boxes[entry_id].direct_workers.append(index)
        return tree

    def build_many(self, key: str, master: str,
                   worker_hosts: Sequence[str],
                   n_trees: int) -> List[AggregationTree]:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        return [
            self.build(key, master, worker_hosts, tree_index=t)
            for t in range(n_trees)
        ]

    # -- lane selection -------------------------------------------------------

    def lane(self, key: str, tree_index: int, host: str, master_tor: str,
             master_pod: int) -> List[str]:
        """Deterministic switch lane from ``host``'s ToR to the master."""
        topo = self._topo
        tor = topo.tor_of(host)
        if tor == master_tor:
            return [master_tor]
        pod = topo.pod_of(host)
        if pod == master_pod:
            return [tor, self.pod_aggr(key, tree_index, pod), master_tor]
        return [
            tor,
            self.pod_aggr(key, tree_index, pod),
            self.core(key, tree_index),
            self.pod_aggr(key, tree_index, master_pod),
            master_tor,
        ]

    def pod_aggr(self, key: str, tree_index: int, pod: int) -> str:
        """The aggregation switch a tree uses within ``pod``.

        The *same position* (index into the pod's sorted aggregation
        switches) is used in every pod of a tree: in a fat-tree, only
        same-position switches share core switches, so a position-
        consistent choice keeps cross-pod lanes wired.  The hash picks
        tree 0's position; further trees round-robin from there,
        guaranteeing disjoint lanes while enough switches exist (§3.1:
        "each aggregation tree uses a disjoint set of agg boxes").
        """
        aggrs = sorted(
            a for a in self._topo.switches(AGGR)
            if self._topo.pod_of(a) == pod
        )
        if not aggrs:
            raise ValueError(f"pod {pod} has no aggregation switch")
        return aggrs[self._lane_position(key, tree_index) % len(aggrs)]

    def core(self, key: str, tree_index: int) -> str:
        """The core switch of a tree's cross-pod lane.

        Chosen among the cores actually adjacent to the tree's
        aggregation switches (any core in a three-tier multi-rooted
        network; the position-matched core group in a fat-tree).
        """
        topo = self._topo
        pods = sorted({
            topo.pod_of(a) for a in topo.switches(AGGR)
        })
        candidates = None
        for pod in pods:
            aggr = self.pod_aggr(key, tree_index, pod)
            adjacent = {
                n for n in topo.neighbors(aggr)
                if topo.node(n).tier == CORE
            }
            candidates = adjacent if candidates is None \
                else candidates & adjacent
        cores = sorted(candidates or ())
        if not cores:
            raise ValueError(
                "no core switch is reachable from every pod's chosen "
                "aggregation switch"
            )
        base = stable_hash(f"{key}:core")
        return cores[(base + tree_index) % len(cores)]

    def _lane_position(self, key: str, tree_index: int) -> int:
        return stable_hash(f"{key}:lane") + tree_index

    def box_id(self, key: str, tree_index: int, switch: str) -> str:
        """The box a tree uses at ``switch``.

        Hash picks tree 0's box; further trees round-robin from there,
        so an application's trees land on *distinct* boxes while enough
        are attached -- the scale-out mechanism of §3.1 ("aggregation
        trees are assigned to agg boxes in a way that balances the load
        between them").
        """
        candidates = self._topo.boxes_at(switch)
        if not candidates:
            raise ValueError(f"switch {switch!r} has no agg boxes")
        base = stable_hash(f"{key}:box:{switch}")
        return candidates[(base + tree_index) % len(candidates)].box_id

    # -- internals -----------------------------------------------------------

    def _register_boxes(self, tree: AggregationTree, key: str,
                        tree_index: int, lane: Sequence[str],
                        on_path: Sequence[str]) -> None:
        for i, switch in enumerate(on_path):
            vertex = self._vertex(tree, key, tree_index, switch)
            if i + 1 < len(on_path):
                parent_switch = on_path[i + 1]
                parent = self._vertex(tree, key, tree_index, parent_switch)
                lane_between = _lane_slice(lane, switch, parent_switch)
                self._set_parent(vertex, parent.info.box_id, lane_between)
                if vertex.info.box_id not in parent.children:
                    parent.children.append(vertex.info.box_id)
            else:
                tail = _lane_slice(lane, switch, lane[-1])
                self._set_parent(vertex, None, tail)

    def _vertex(self, tree: AggregationTree, key: str, tree_index: int,
                switch: str) -> BoxVertex:
        box_id = self.box_id(key, tree_index, switch)
        vertex = tree.boxes.get(box_id)
        if vertex is None:
            vertex = BoxVertex(info=self._topo.box(box_id))
            tree.boxes[box_id] = vertex
        return vertex

    @staticmethod
    def _set_parent(vertex: BoxVertex, parent: Optional[str],
                    lane_between: Tuple[str, ...]) -> None:
        if vertex.lane_to_parent and \
                (vertex.parent, vertex.lane_to_parent) != (parent, lane_between):
            raise TreeConstructionError(
                f"inconsistent parent for box {vertex.info.box_id}: "
                f"{vertex.parent} vs {parent}"
            )
        vertex.parent = parent
        vertex.lane_to_parent = lane_between


def _lane_slice(lane: Sequence[str], src: str, dst: str) -> Tuple[str, ...]:
    start = lane.index(src)
    end = lane.index(dst)
    if end < start:
        raise TreeConstructionError(f"lane runs backwards: {src} -> {dst}")
    return tuple(lane[start:end + 1])
