"""Mid-request failure recovery -- the full §3.1 protocol, executable.

The platform-level rewiring in :mod:`repro.core.platform` handles boxes
that are known-failed *before* a request starts.  This module executes
the harder case the paper describes: box F dies *while* a request is in
flight, after it already consumed some partial results.

Protocol (§3.1, "Handling failures"):

1. upstream node N (F's parent box, or the master shim) detects the
   failure via the heartbeat detector;
2. N contacts F's children (boxes or worker shims) and instructs them to
   redirect future partial results to N itself;
3. to avoid duplicate results, N passes along the last result F
   correctly processed, so already-processed results are not resent.

What can actually be lost?  In this engine (as over TCP with synchronous
forwarding) an emission handed upstream is safe the moment it is handed
over; the only data that dies with F is its *pending* set -- partials
received but not yet folded into an emission.  Recovery therefore
replays exactly those: worker partials from the shims' retained send
buffers, and child-box emissions from the emission log the children keep
until the request is acknowledged.  Everything already processed is
suppressed; everything not yet sent simply follows the rewired tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set

from repro.aggbox.box import AggBoxRuntime
from repro.core.failure import FailureDetector, rewire_failed_box
from repro.core.tree import AggregationTree


@dataclass
class RecoveryLog:
    """What happened during one recovery, for assertions and reports."""

    failed_box: str
    detector_node: str  # parent box id or "master"
    redirected_children: List[str] = field(default_factory=list)
    replayed_sources: List[str] = field(default_factory=list)
    suppressed_sources: List[str] = field(default_factory=list)


class MigrationAborted(RuntimeError):
    """Raised by a migration interrupt hook to force a rollback."""


@dataclass
class MigrationLog:
    """What happened during one drain-then-cutover migration."""

    box_id: str
    #: Candidate adopters in order (ancestors bottom-up, then "master"),
    #: captured *before* any rewiring -- the cutover failover ladder.
    dest_chain: List[str] = field(default_factory=list)
    parked_sources: List[str] = field(default_factory=list)
    suppressed_sources: List[str] = field(default_factory=list)
    #: Where the parked partials were replayed ("" when nothing was
    #: parked or the migration rolled back).
    replayed_to: str = ""
    #: The interrupt hook aborted the migration; parked partials were
    #: replayed back into the (still live) source box.
    rolled_back: bool = False
    #: The first-choice destination died mid-migration; the cutover
    #: walked down ``dest_chain`` instead.
    failed_over: bool = False


class InFlightRequest:
    """One request executing over an aggregation tree, failure-aware.

    Drives the boxes step by step so tests (and the emulator) can inject
    a failure between any two deliveries.  Worker payloads and child-box
    emissions are retained for replays, exactly like a worker shim's send
    buffer and a box's unacknowledged-output log.
    """

    def __init__(
        self,
        tree: AggregationTree,
        boxes: Dict[str, AggBoxRuntime],
        app: str,
        request_id: str,
        worker_values: Sequence[Any],
        merge=None,
    ) -> None:
        if len(worker_values) != len(tree.worker_entry):
            raise ValueError("one value per tree worker required")
        self.tree = tree
        self.app = app
        self.request_id = request_id
        self._boxes = boxes
        self._worker_values = list(worker_values)
        self._merge = merge
        self._failed: Set[str] = set()
        self._detector = FailureDetector(timeout=1.0)
        #: Emission log: source tag -> emitted value (the sender's
        #: unacknowledged-output buffer).
        self._sent_values: Dict[str, Any] = {}
        self._emit_count: Dict[str, int] = {}
        for box_id in tree.boxes:
            self._detector.watch(box_id)
        #: Aggregates delivered to the master, keyed by source tag.
        self.master_inbox: Dict[str, Any] = {}
        #: Direct (unaggregated) worker deliveries to the master.
        self.master_direct: Dict[int, Any] = {}
        self.logs: List[RecoveryLog] = []
        self.migrations: List[MigrationLog] = []

    # -- normal operation -----------------------------------------------------

    def announce_all(self) -> None:
        for box_id, vertex in self.tree.boxes.items():
            if box_id in self._failed:
                continue
            expected = len(vertex.direct_workers) + len(vertex.children)
            self._boxes[box_id].announce(self.app, self._box_request(),
                                         expected)

    def deliver_worker(self, index: int) -> None:
        """One worker shim sends its partial result."""
        entry = self.tree.worker_entry[index]
        value = self._worker_values[index]
        if entry is None:
            self.master_direct[index] = value
            return
        source = f"worker:{index}"
        self._sent_values[source] = value
        self._submit(entry, source, value)

    def deliver_all_workers(self) -> None:
        for index in range(len(self._worker_values)):
            self.deliver_worker(index)

    # -- failure injection ------------------------------------------------------

    def fail_box(self, box_id: str) -> RecoveryLog:
        """Box ``box_id`` dies now; run the recovery protocol."""
        if box_id not in self.tree.boxes:
            raise KeyError(f"{box_id!r} is not part of this tree")
        vertex = self.tree.boxes[box_id]
        parent = vertex.parent
        detector = parent if parent is not None else "master"
        log = RecoveryLog(failed_box=box_id, detector_node=detector)
        runtime = self._boxes[box_id]

        # Lost with F: partials it received but never folded upstream.
        lost = runtime.pending_sources(self.app, self._box_request())
        processed = runtime.last_processed(self.app, self._box_request())
        log.suppressed_sources = list(processed)

        # Rewire: F's children (and its direct workers) now feed N.
        children_workers = list(vertex.direct_workers)
        children_boxes = list(vertex.children)
        log.redirected_children = (
            [f"worker:{w}" for w in children_workers]
            + [f"box:{b}" for b in children_boxes]
        )
        self._failed.add(box_id)
        self._detector.forget(box_id)
        self.tree = rewire_failed_box(self.tree, box_id)

        # N's expected-input count changes: F's single (future) input is
        # replaced by the lost replays plus whatever F's children have
        # not sent yet.  Exactness only affects *when* N auto-emits --
        # the final flush pass guarantees completeness either way.
        if parent is not None:
            seen_at_f = set(lost) | set(processed)
            future_workers = sum(
                1 for w in children_workers
                if f"worker:{w}" not in seen_at_f
            )
            future_boxes = sum(
                1 for b in children_boxes
                if not any(tag in seen_at_f
                           for tag in self._emission_tags(b))
            )
            f_emitted_to_parent = any(
                self._boxes[parent].has_source(
                    self.app, self._box_request(), tag
                )
                for tag in self._emission_tags(box_id)
            )
            delta = (len(lost) + future_workers + future_boxes
                     - (0 if f_emitted_to_parent else 1))
            emitted = self._boxes[parent].adjust_expected(
                self.app, self._box_request(), delta
            )
            if emitted is not None:
                self._propagate(parent, emitted.value)

        # Replay exactly the lost partials from retained send buffers.
        # Membership, not truthiness: None is a legitimate partial value
        # (e.g. a worker with no matching results) and must replay too.
        for source in lost:
            if source not in self._sent_values:
                raise RuntimeError(
                    f"no retained value for lost partial {source!r}"
                )
            value = self._sent_values[source]
            log.replayed_sources.append(source)
            replay_tag = f"{source}~replay{len(self.logs)}"
            # A replay can itself be lost if its new target dies too;
            # retain it under its own tag so it stays replayable.
            self._sent_values[replay_tag] = value
            if parent is not None:
                self._submit(parent, replay_tag, value)
            else:
                self.master_inbox[replay_tag] = value
        self.logs.append(log)
        return log

    def migrate_box(self, box_id: str, interrupt=None) -> MigrationLog:
        """Gracefully move ``box_id``'s in-flight work upstream.

        The optimizer's drain-then-cutover protocol on one live request:

        1. **drain** -- the box's pending partials are *parked* (removed
           without entering the duplicate-suppression set), so whatever
           happens next, the values are safely in hand;
        2. **interruption window** -- ``interrupt()`` (if given) runs
           between drain and cutover; the chaos suite uses it to fail
           the destination, fail the migrating box itself, or raise
           :class:`MigrationAborted` to force the rollback path;
        3. **cutover** -- the box leaves the tree (same §3.1 rewiring
           and expected-count arithmetic as :meth:`fail_box`) and the
           parked partials are replayed, under fresh tags, into the
           first member of the pre-captured destination chain that is
           still alive (falling back to the master).

        On :class:`MigrationAborted` the parked partials are replayed
        back into the still-live source box under their original tags
        -- exactness is preserved because parking removed those tags
        from the box's suppression sets, so each replay is accepted
        exactly once.  If the interrupt killed the source box itself,
        rollback is impossible and the cutover proceeds anyway: the
        parked values survive the crash precisely because they were
        parked first.
        """
        if box_id not in self.tree.boxes:
            raise KeyError(f"{box_id!r} is not part of this tree")
        if box_id in self._failed:
            raise ValueError(f"cannot migrate failed box {box_id!r}")
        vertex = self.tree.boxes[box_id]
        chain: List[str] = []
        cursor = vertex.parent
        while cursor is not None:
            chain.append(cursor)
            cursor = self.tree.boxes[cursor].parent
        runtime = self._boxes[box_id]
        request = self._box_request()

        # Phase 1: drain.  Parked partials leave the box's queue but
        # stay replayable; already-folded sources stay suppressed.
        parked = runtime.park_pending(self.app, request)
        log = MigrationLog(
            box_id=box_id,
            dest_chain=chain + ["master"],
            parked_sources=[p.source for p in parked],
            suppressed_sources=runtime.last_processed(self.app, request),
        )

        # Phase 2: the interruption window.
        abort = False
        if interrupt is not None:
            try:
                interrupt()
            except MigrationAborted:
                abort = True
        if abort and box_id not in self._failed:
            for p in parked:
                self._submit(box_id, p.source, p.value)
            log.rolled_back = True
            self.migrations.append(log)
            return log

        # Phase 3: cutover.  If the interrupt failed the migrating box
        # itself, fail_box already rewired it out (with nothing lost --
        # its queue was parked); otherwise detach it now with the same
        # expected-count arithmetic as a failure.  The interrupt may
        # have rewired the tree (e.g. failed the box's parent), so the
        # adoption arithmetic reads the *current* tree, while the
        # failover ladder keeps the pre-drain ``dest_chain``.
        adjusted_parent = None  # adopter whose delta already counts parked
        if box_id in self._failed:
            log.failed_over = True
        else:
            vertex = self.tree.boxes[box_id]
            children_workers = list(vertex.direct_workers)
            children_boxes = list(vertex.children)
            parent = vertex.parent
            self._failed.add(box_id)
            self._detector.forget(box_id)
            self.tree = rewire_failed_box(self.tree, box_id)
            if parent is not None and parent not in self._failed:
                adjusted_parent = parent
                seen = set(log.parked_sources) | set(log.suppressed_sources)
                future_workers = sum(
                    1 for w in children_workers
                    if f"worker:{w}" not in seen
                )
                future_boxes = sum(
                    1 for b in children_boxes
                    if not any(tag in seen
                               for tag in self._emission_tags(b))
                )
                emitted_to_parent = any(
                    self._boxes[parent].has_source(self.app, request, tag)
                    for tag in self._emission_tags(box_id)
                )
                delta = (len(parked) + future_workers + future_boxes
                         - (0 if emitted_to_parent else 1))
                emitted = self._boxes[parent].adjust_expected(
                    self.app, request, delta
                )
                if emitted is not None:
                    self._propagate(parent, emitted.value)

        dest = next(
            (b for b in chain
             if b not in self._failed and b in self.tree.boxes),
            None,
        )
        if chain and dest != chain[0]:
            log.failed_over = True
        if dest is not None and dest != adjusted_parent and parked:
            # The adopter's expected count does not yet include the
            # parked replays (failover, or the fail_box path already
            # re-parented with an empty queue): announce them.
            self._boxes[dest].adjust_expected(
                self.app, request, +len(parked)
            )
        suffix = f"~mig{len(self.migrations)}"
        for p in parked:
            tag = f"{p.source}{suffix}"
            # Replays are retained like any other send: if the adopter
            # dies later, fail_box can replay them again.
            self._sent_values[tag] = p.value
            if dest is not None:
                self._submit(dest, tag, p.value)
            else:
                self.master_inbox[tag] = p.value
        if parked:
            log.replayed_to = dest if dest is not None else "master"
        self.migrations.append(log)
        return log

    # -- completion --------------------------------------------------------------

    def finish(self, merge=None) -> Any:
        """Flush surviving boxes bottom-up and merge at the master."""
        merge = merge or self._merge
        if merge is None:
            raise ValueError("finish needs the application merge function")
        for box_id in self._topological_boxes():
            ready = self._boxes[box_id].flush(self.app,
                                              self._box_request())
            if ready is not None:
                self._propagate(box_id, ready.value)
        parts = [self.master_inbox[s] for s in sorted(self.master_inbox)]
        parts += [self.master_direct[i] for i in sorted(self.master_direct)]
        return merge(parts)

    # -- internals ----------------------------------------------------------------

    def _box_request(self) -> str:
        return f"{self.request_id}@t{self.tree.tree_index}"

    def _emission_tags(self, box_id: str) -> List[str]:
        count = self._emit_count.get(box_id, 0)
        return [f"box:{box_id}"] + [
            f"box:{box_id}@e{k}" for k in range(1, count)
        ]

    def _submit(self, box_id: str, source: str, value: Any) -> None:
        emitted = self._boxes[box_id].submit_partial(
            self.app, self._box_request(), source, value
        )
        if emitted is not None:
            self._propagate(box_id, emitted.value)

    def _propagate(self, box_id: str, value: Any) -> None:
        count = self._emit_count.get(box_id, 0)
        self._emit_count[box_id] = count + 1
        # Re-emissions (post-recovery deltas) carry distinct tags so the
        # parent's duplicate suppression does not swallow them.
        source = f"box:{box_id}" if count == 0 else f"box:{box_id}@e{count}"
        self._sent_values[source] = value
        vertex = self.tree.boxes.get(box_id)
        if vertex is None or vertex.parent is None:
            self.master_inbox[source] = value
        else:
            self._submit(vertex.parent, source, value)

    def _topological_boxes(self) -> List[str]:
        """Children before parents over the (current) tree."""
        order: List[str] = []
        seen: Set[str] = set()

        def visit(box_id: str) -> None:
            if box_id in seen:
                return
            seen.add(box_id)
            for child in self.tree.boxes[box_id].children:
                visit(child)
            order.append(box_id)

        for root in self.tree.roots():
            visit(root)
        return order
