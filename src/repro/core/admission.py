"""Admission control at the master shim.

Instead of letting an overloaded deployment time senders out, the
master shim refuses excess requests up front with a typed NACK: the
caller degrades immediately (retry later, shed the query, fall back to
edge aggregation) rather than burning retry budget into saturated
boxes.  Two gates run per request, in order:

- a *queue-depth* gate: when the deepest agg-box pending queue (from
  the health feed) is at or above ``max_queue_depth``, the request is
  NACKed with reason ``queue-depth``;
- a per-tenant *token bucket*: ``rate`` tokens/virtual-second with a
  ``burst`` ceiling; an empty bucket NACKs with reason ``rate-limit``.

Refills run on the platform's deterministic virtual clock, so a fixed
workload produces bit-identical admission decisions across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

RATE_LIMIT = "rate-limit"
QUEUE_DEPTH = "queue-depth"

NACK_REASONS = (RATE_LIMIT, QUEUE_DEPTH)


class TokenBucket:
    """A deterministic token bucket on the virtual clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated = 0.0

    def available(self, now: float) -> float:
        """Tokens in the bucket after refilling up to ``now``."""
        if now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
        return self._tokens

    def try_take(self, now: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False leaves the bucket as-is."""
        if self.available(now) < n:
            return False
        self._tokens -= n
        return True


@dataclass(frozen=True)
class AdmissionPolicy:
    """Master-shim admission configuration.

    Attributes:
        rate: sustained admitted requests per tenant per virtual second.
        burst: token-bucket ceiling (instantaneous burst allowance).
        max_queue_depth: NACK every tenant while the deepest box pending
            queue is at or above this (None disables the gate).
    """

    rate: float = 50.0
    burst: float = 10.0
    max_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("rate and burst must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")


class AdmissionNack(RuntimeError):
    """A request was refused at the master shim.

    This is the *terminating* outcome for a non-admitted request: the
    sender never enters the aggregation trees, so nothing can hang.
    """

    def __init__(self, tenant: str, at: float, reason: str,
                 queue_depth: int = 0) -> None:
        super().__init__(
            f"admission NACK for tenant {tenant!r} at {at:g} ({reason})"
        )
        self.tenant = tenant
        self.at = at
        self.reason = reason
        self.queue_depth = queue_depth


@dataclass(frozen=True)
class NackRecord:
    """One recorded admission refusal (for logs and tests)."""

    tenant: str
    at: float
    reason: str
    queue_depth: int


class AdmissionController:
    """Per-tenant token buckets plus the queue-depth gate.

    ``per_tenant`` overrides the default policy for named tenants, so a
    multi-tenant deployment (the serving layer) can give each tenant its
    own sustained rate and burst while sharing one queue-depth gate.
    The override is read once, when the tenant's bucket is created.
    """

    def __init__(self, policy: AdmissionPolicy,
                 per_tenant: Optional[
                     Mapping[str, AdmissionPolicy]] = None) -> None:
        self.policy = policy
        self._per_tenant: Dict[str, AdmissionPolicy] = dict(per_tenant or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.nacks: List[NackRecord] = []

    def tenant_policy(self, tenant: str) -> AdmissionPolicy:
        return self._per_tenant.get(tenant, self.policy)

    def set_tenant_policy(self, tenant: str,
                          policy: AdmissionPolicy) -> None:
        """Install a tenant override (before the tenant's first request)."""
        if tenant in self._buckets:
            raise ValueError(
                f"tenant {tenant!r} already has a live bucket")
        self._per_tenant[tenant] = policy

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.tenant_policy(tenant)
            bucket = TokenBucket(policy.rate, policy.burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now: float, queue_depth: int = 0) -> None:
        """Admit one request or raise :class:`AdmissionNack`.

        The queue-depth gate runs first (it protects the boxes
        regardless of tenant budgets), then the tenant's token bucket.
        """
        limit = self.policy.max_queue_depth
        if limit is not None and queue_depth >= limit:
            self._nack(tenant, now, QUEUE_DEPTH, queue_depth)
        if not self.bucket(tenant).try_take(now):
            self._nack(tenant, now, RATE_LIMIT, queue_depth)
        self.admitted += 1

    def _nack(self, tenant: str, now: float, reason: str,
              queue_depth: int) -> None:
        self.nacks.append(NackRecord(
            tenant=tenant, at=now, reason=reason, queue_depth=queue_depth,
        ))
        raise AdmissionNack(tenant, now, reason, queue_depth)
