"""Partition tolerance: gray-failure detection and partial delivery.

NetAgg's §3.1 failover assumes failures are *clean*: a box crashes, its
heartbeat stops, the tree rewires.  This module covers the two failure
shapes that story misses:

- **gray failures** -- a box keeps heartbeating but runs an order of
  magnitude slow.  :class:`GrayDetector` watches per-box observed
  service times against a seeded EWMA baseline and flags outliers; the
  platform reports flagged boxes as ``gray`` in its health feed, plans
  new trees around them, and -- under a :class:`PartitionPolicy` with
  ``hedge`` on -- races deliveries into them against a hedge deadline
  instead of waiting the slow path out;
- **partitions** -- a subtree is unreachable, not dead.  Rather than
  fail the request, the platform can complete it *partially*, dropping
  exactly the unreachable workers and attaching a
  :class:`Completeness` record so the caller knows precisely what the
  aggregate covers (the bounded-completeness degraded mode of the
  distributed-aggregation literature).

Everything here is deterministic on the platform's virtual clock; the
detector has no wall-clock or randomness of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.live.series import ewma_step


@dataclass(frozen=True)
class GrayPolicy:
    """Tuning of the latency-outlier gray-failure detector.

    Attributes:
        alpha: EWMA smoothing weight for healthy samples.
        threshold: a sample ``threshold`` times the EWMA baseline flags
            the box gray.
        min_samples: observations (including the seed baseline) needed
            before the detector trusts its baseline enough to flag.
        baseline: seed value for the EWMA (the platform seeds it with
            the retry policy's healthy ``send_latency``, so the
            detector can flag from the very first outlier).
    """

    alpha: float = 0.3
    threshold: float = 4.0
    min_samples: int = 1
    baseline: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.threshold <= 1.0:
            raise ValueError("threshold must be > 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.baseline is not None and self.baseline <= 0:
            raise ValueError("baseline must be positive")


class GrayDetector:
    """Seeded-EWMA latency-outlier detection over per-box service times.

    ``observe`` folds healthy samples into the box's EWMA baseline;
    a sample beyond ``threshold`` times the baseline flags the box
    *without* poisoning the baseline (otherwise a long gray episode
    would normalise itself).  A subsequent healthy sample clears the
    flag -- post-heal traffic returns the box to service.
    """

    def __init__(self, policy: GrayPolicy,
                 baseline: Optional[float] = None) -> None:
        self._policy = policy
        self._baseline = policy.baseline if baseline is None else baseline
        #: Per-box smoothed baselines (repro.obs.live owns the EWMA
        #: arithmetic; this detector only keeps the per-box state).
        self._baselines: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self._flagged: Dict[str, float] = {}

    def observe(self, box_id: str, service_time: float,
                at: float) -> bool:
        """Fold one observed service time; returns True when flagged."""
        policy = self._policy
        baseline = self._baselines.get(box_id)
        seen = self._count.get(box_id, 0)
        if baseline is None:
            if self._baseline is not None:
                baseline, seen = self._baseline, seen + 1
            else:
                # No prior at all: the first sample becomes the baseline.
                self._baselines[box_id] = service_time
                self._count[box_id] = seen + 1
                return False
        self._count[box_id] = seen + 1
        if seen >= policy.min_samples and baseline > 0 \
                and service_time > policy.threshold * baseline:
            self._flagged[box_id] = at
            return True
        self._flagged.pop(box_id, None)
        self._baselines[box_id] = ewma_step(baseline, service_time,
                                            policy.alpha)
        return False

    def is_gray(self, box_id: str) -> bool:
        return box_id in self._flagged

    def gray_boxes(self) -> List[str]:
        return sorted(self._flagged)

    def baseline_of(self, box_id: str) -> Optional[float]:
        return self._baselines.get(box_id, self._baseline)


@dataclass(frozen=True)
class PartitionPolicy:
    """How a platform responds to partitions and gray boxes.

    Attributes:
        allow_partial: complete requests without unreachable workers,
            attaching :class:`Completeness`; off, an unreachable
            subtree raises :class:`SubtreeUnreachable` (the fail-stop
            baseline).
        hedge: race slow deliveries against ``hedge_deadline`` instead
            of waiting them out (the hedged duplicate costs one extra
            healthy send).
        hedge_deadline: virtual seconds a delivery may take before the
            hedge fires; ``None`` disables hedging regardless of
            ``hedge``.
        avoid_gray: plan new trees around detector-flagged boxes (the
            NACK/ladder path, like pressured health).
        gray: detector tuning.
    """

    allow_partial: bool = True
    hedge: bool = True
    hedge_deadline: Optional[float] = 0.01
    avoid_gray: bool = True
    gray: GrayPolicy = GrayPolicy()

    def hedging(self) -> bool:
        return self.hedge and self.hedge_deadline is not None


@dataclass(frozen=True)
class Completeness:
    """What fraction of the request's workers an aggregate covers.

    ``exact`` is True only when every worker's partial is included --
    the label tests verify against ground truth (a partial result must
    never claim exactness).
    """

    workers_total: int
    workers_included: int
    missing_workers: Tuple[int, ...] = ()
    #: Partition scopes (domain names) that cut the missing workers off.
    missing_scopes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.workers_total < 0 or self.workers_included < 0:
            raise ValueError("worker counts must be >= 0")
        if self.workers_included > self.workers_total:
            raise ValueError("included exceeds total")
        if len(self.missing_workers) != \
                self.workers_total - self.workers_included:
            raise ValueError(
                f"{len(self.missing_workers)} missing workers listed for "
                f"{self.workers_total - self.workers_included} missing")

    @property
    def fraction(self) -> float:
        if self.workers_total == 0:
            return 1.0
        return self.workers_included / self.workers_total

    @property
    def exact(self) -> bool:
        return self.workers_included == self.workers_total

    def to_dict(self) -> Dict[str, object]:
        return {
            "exact": self.exact,
            "fraction": self.fraction,
            "workers_total": self.workers_total,
            "workers_included": self.workers_included,
            "missing_workers": list(self.missing_workers),
            "missing_scopes": list(self.missing_scopes),
        }

    @classmethod
    def exact_for(cls, n_workers: int) -> "Completeness":
        return cls(workers_total=n_workers, workers_included=n_workers)

    @classmethod
    def merged(cls, parts: List["Completeness"]) -> "Completeness":
        """Combine per-tree completeness (batch jobs): a worker is
        missing from the job if it was missing from any tree."""
        if not parts:
            return cls(0, 0)
        total = max(p.workers_total for p in parts)
        missing: Dict[int, None] = {}
        scopes: List[str] = []
        for p in parts:
            for w in p.missing_workers:
                missing[w] = None
            scopes.extend(p.missing_scopes)
        return cls(
            workers_total=total,
            workers_included=total - len(missing),
            missing_workers=tuple(sorted(missing)),
            missing_scopes=tuple(sorted(set(scopes))),
        )


@dataclass
class SubtreeUnreachable(RuntimeError):
    """A request could not reach part (or all) of its workers.

    Raised when partial delivery is disabled (the fail-stop baseline)
    or when *no* worker is reachable (there is nothing to aggregate
    partially).
    """

    request_id: str
    missing_workers: Tuple[int, ...] = ()
    scopes: Tuple[str, ...] = ()
    detail: str = ""

    def __post_init__(self) -> None:
        super().__init__(str(self))

    def __str__(self) -> str:
        scopes = ", ".join(self.scopes) or "unknown scope"
        extra = f" ({self.detail})" if self.detail else ""
        return (
            f"request {self.request_id!r}: {len(self.missing_workers)} "
            f"worker(s) unreachable across [{scopes}]{extra}"
        )
