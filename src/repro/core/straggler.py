"""Straggler mitigation (§3.1, "Handling stragglers").

If a node observes that a downstream agg box is too slow for a request
(an application-specific latency threshold), it redirects *that
request's* remaining results around the box -- the cause may be specific
to the request.  A box that is slow repeatedly across different requests
is declared permanently failed and the failure-recovery procedure takes
over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass(frozen=True)
class StragglerPolicy:
    """Thresholds for straggler decisions.

    Attributes:
        latency_threshold: seconds after which a box counts as slow for
            a request (application-specific, per the paper).
        repeat_limit: distinct slow requests after which the box is
            considered permanently failed.
    """

    latency_threshold: float = 1.0
    repeat_limit: int = 3

    def __post_init__(self) -> None:
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.repeat_limit < 1:
            raise ValueError("repeat_limit must be >= 1")


@dataclass
class StragglerMonitor:
    """Tracks per-box slowness and produces mitigation decisions."""

    policy: StragglerPolicy = field(default_factory=StragglerPolicy)
    _slow_requests: Dict[str, Set[str]] = field(default_factory=dict)
    _redirected: Set[Tuple[str, str]] = field(default_factory=set)

    def observe(self, box_id: str, request_id: str,
                latency: float) -> str:
        """Record an observed per-request latency for a downstream box.

        Returns the decision:

        - ``"ok"`` -- within the threshold;
        - ``"redirect"`` -- slow for this request: route the request's
          remaining results around the box (first offence per request);
        - ``"fail"`` -- slow across ``repeat_limit`` distinct requests:
          treat the box as permanently failed.
        """
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if latency <= self.policy.latency_threshold:
            return "ok"
        slow = self._slow_requests.setdefault(box_id, set())
        slow.add(request_id)
        self._redirected.add((box_id, request_id))
        if len(slow) >= self.policy.repeat_limit:
            return "fail"
        return "redirect"

    def is_redirected(self, box_id: str, request_id: str) -> bool:
        """True when this request already routes around the box."""
        return (box_id, request_id) in self._redirected

    def slow_request_count(self, box_id: str) -> int:
        return len(self._slow_requests.get(box_id, ()))

    def permanently_failed(self) -> List[str]:
        return sorted(
            box_id for box_id, slow in self._slow_requests.items()
            if len(slow) >= self.policy.repeat_limit
        )

    def reset_box(self, box_id: str) -> None:
        """Clear history (e.g. after the box was replaced)."""
        self._slow_requests.pop(box_id, None)
        self._redirected = {
            entry for entry in self._redirected if entry[0] != box_id
        }
