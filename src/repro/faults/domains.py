"""Correlated fault domains over a topology.

Real data-centre outages are rarely independent: a ToR switch or a rack
PDU takes every box and host in the rack with it, and a mis-pushed
routing config partitions a whole pod from the spine.  A
:class:`FaultDomain` names one such blast radius -- the boxes, hosts and
links that fail (or are cut) *together* -- and
:func:`topology_domains` derives the standard ones from a topology:

- ``rack:<tor_id>``  -- the rack behind one ToR: its hosts, the agg
  boxes attached to the ToR, and the ToR's uplinks into the
  aggregation tier (both directions).  ``DOMAIN_FAIL`` on it models a
  ToR/power-domain outage; ``NET_PARTITION`` cuts only the uplinks,
  leaving the rack alive but unreachable.
- ``pod:<k>``        -- one pod: its hosts, every box attached to the
  pod's ToR/aggregation switches, and the pod's aggregation->core
  links (both directions).  ``NET_PARTITION`` on it is the classic
  spine-side partition: the pod keeps running, but nothing crosses the
  core.

Domain names double as *partition scopes*: a node is "inside" the
scope iff it belongs to the domain, and two endpoints are separated by
an active partition iff exactly one of them is inside (see
:meth:`repro.faults.PlatformFaultInjector.isolated`).  Schedules carry
the marker events (``DOMAIN_FAIL``/``NET_PARTITION``) untouched;
:meth:`repro.faults.FaultSchedule.expanded` turns them into the
correlated member ``box-crash``/``link-down`` events each execution
layer already understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.topology.base import (
    AGGR,
    TOR,
    Topology,
    link_id,
)

#: Scope-name prefixes :func:`topology_domains` emits.
RACK_PREFIX = "rack:"
POD_PREFIX = "pod:"


@dataclass(frozen=True)
class FaultDomain:
    """One correlated blast radius over a topology.

    Attributes:
        name: the domain's id, also used as the fault event target and
            the partition scope (``"rack:tor:0:1"``, ``"pod:2"``).
        kind: ``"rack"`` or ``"pod"`` for derived domains; free-form
            for hand-built ones.
        boxes: agg boxes that crash when the domain fails.
        links: directed links cut by a partition of (or failure of)
            the domain -- the domain's border to the rest of the
            fabric, both directions.
        hosts: hosts inside the domain (their workers become
            unreachable from masters outside it).
    """

    name: str
    kind: str
    boxes: Tuple[str, ...] = ()
    links: Tuple[str, ...] = ()
    hosts: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault domain needs a name")

    @property
    def members(self) -> Tuple[str, ...]:
        """Every node/link id the domain touches (sorted)."""
        return tuple(sorted(set(self.boxes) | set(self.links)
                            | set(self.hosts)))


def rack_domain_name(tor_id: str) -> str:
    return f"{RACK_PREFIX}{tor_id}"


def pod_domain_name(pod: int) -> str:
    return f"{POD_PREFIX}{pod}"


def topology_domains(topo: Topology) -> Dict[str, FaultDomain]:
    """Derive the standard rack and pod fault domains of a topology.

    Deterministic: domains and their member tuples are sorted, so the
    same topology always yields byte-identical domains (schedules that
    expand against them replay exactly).
    """
    domains: Dict[str, FaultDomain] = {}
    hosts_by_tor: Dict[str, List[str]] = {}
    for host in topo.hosts():
        hosts_by_tor.setdefault(topo.tor_of(host), []).append(host)

    for tor in sorted(topo.switches(TOR)):
        uplinks: List[str] = []
        for neighbor in sorted(topo.neighbors(tor)):
            if topo.node(neighbor).tier == AGGR:
                uplinks.append(link_id(tor, neighbor))
                uplinks.append(link_id(neighbor, tor))
        domains[rack_domain_name(tor)] = FaultDomain(
            name=rack_domain_name(tor),
            kind="rack",
            boxes=tuple(sorted(b.box_id for b in topo.boxes_at(tor))),
            links=tuple(sorted(uplinks)),
            hosts=tuple(sorted(hosts_by_tor.get(tor, []))),
        )

    pods = sorted({topo.pod_of(a) for a in topo.switches(AGGR)})
    for pod in pods:
        pod_switches = sorted(
            s for tier in (TOR, AGGR)
            for s in topo.switches(tier) if topo.pod_of(s) == pod
        )
        boxes = sorted(
            b.box_id for s in pod_switches for b in topo.boxes_at(s)
        )
        hosts = sorted(h for h in topo.hosts() if topo.pod_of(h) == pod)
        core_links: List[str] = []
        for aggr in (s for s in pod_switches
                     if topo.node(s).tier == AGGR):
            for neighbor in sorted(topo.neighbors(aggr)):
                if topo.node(neighbor).tier == "core":
                    core_links.append(link_id(aggr, neighbor))
                    core_links.append(link_id(neighbor, aggr))
        domains[pod_domain_name(pod)] = FaultDomain(
            name=pod_domain_name(pod),
            kind="pod",
            boxes=tuple(boxes),
            links=tuple(sorted(core_links)),
            hosts=tuple(hosts),
        )
    return domains


def in_scope(topo: Topology, node_id: str, scope: str) -> bool:
    """Is ``node_id`` (host, box, or switch) inside partition ``scope``?

    Pure function of the topology -- no domain table needed: pod scopes
    test pod membership (core switches belong to no pod), rack scopes
    test attachment to the named ToR.  Unknown nodes are outside every
    scope (a master name that is not in the topology cannot be cut
    off by it).
    """
    if not topo.has_node(node_id):
        return False
    if scope.startswith(POD_PREFIX):
        try:
            pod = int(scope[len(POD_PREFIX):])
        except ValueError:
            return False
        return topo.pod_of(node_id) == pod
    if scope.startswith(RACK_PREFIX):
        tor = scope[len(RACK_PREFIX):]
        if node_id == tor:
            return True
        node = topo.node(node_id)
        if node.tier == "host":
            return topo.tor_of(node_id) == tor
        if node.tier == "aggbox":
            return topo.box(node_id).switch_id == tor
        return False
    return False
