"""Deterministic fault injection across all three execution layers.

NetAgg's robustness story (§3.1, "Handling failures") is that the
platform survives agg-box failures mid-request with duplicate
suppression and degrades gracefully when boxes are unavailable.  This
package turns that story into a reusable chaos harness:

- :mod:`repro.faults.schedule` -- a seedable :class:`FaultSchedule` of
  timestamped fault events (box crash/recover, capacity degradation,
  link down/flap, worker churn, clock-skewed heartbeats, the overload
  kinds ``box-overload``/``box-shed`` for saturation windows, and
  ``box-migrate`` for optimizer drain-then-cutover windows);
- :mod:`repro.faults.retry` -- the shim-side :class:`RetryPolicy`:
  connect timeout, bounded exponential backoff with deterministic
  jitter;
- :mod:`repro.faults.inject` -- one injector per execution layer:
  :class:`SimFaultInjector` (flow-level simulator),
  :class:`PlatformFaultInjector` (functional platform),
  :class:`EmulatorFaultInjector` (testbed emulator).

The same schedule can be replayed against every layer, so FCT under
failure, exactness of aggregates under failure, and emulated testbed
behaviour under failure are all driven by one seed.
"""

from repro.faults.inject import (
    EmulatorFaultInjector,
    PlatformFaultInjector,
    SimFaultInjector,
)
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    BOX_CRASH,
    BOX_DEGRADE,
    BOX_MIGRATE,
    BOX_OVERLOAD,
    BOX_RECOVER,
    BOX_SHED,
    CLOCK_SKEW,
    FAULT_KINDS,
    LINK_DOWN,
    LINK_UP,
    WORKER_CHURN,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "SimFaultInjector",
    "PlatformFaultInjector",
    "EmulatorFaultInjector",
    "BOX_CRASH",
    "BOX_RECOVER",
    "BOX_DEGRADE",
    "LINK_DOWN",
    "LINK_UP",
    "WORKER_CHURN",
    "CLOCK_SKEW",
    "BOX_OVERLOAD",
    "BOX_SHED",
    "BOX_MIGRATE",
    "FAULT_KINDS",
]
