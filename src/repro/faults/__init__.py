"""Deterministic fault injection across all three execution layers.

NetAgg's robustness story (§3.1, "Handling failures") is that the
platform survives agg-box failures mid-request with duplicate
suppression and degrades gracefully when boxes are unavailable.  This
package turns that story into a reusable chaos harness:

- :mod:`repro.faults.schedule` -- a seedable :class:`FaultSchedule` of
  timestamped fault events (box crash/recover, capacity degradation,
  link down/flap, worker churn, clock-skewed heartbeats, the overload
  kinds ``box-overload``/``box-shed`` for saturation windows, and
  ``box-migrate`` for optimizer drain-then-cutover windows);
- :mod:`repro.faults.retry` -- the shim-side :class:`RetryPolicy`:
  connect timeout, bounded exponential backoff with deterministic
  jitter;
- :mod:`repro.faults.domains` -- correlated fault domains
  (:class:`FaultDomain`, :func:`topology_domains`): rack/ToR and pod
  blast radii whose ``domain-fail``/``net-partition`` markers expand
  deterministically into member crashes and border link cuts;
- :mod:`repro.faults.inject` -- one injector per execution layer:
  :class:`SimFaultInjector` (flow-level simulator),
  :class:`PlatformFaultInjector` (functional platform; with a
  topology it also answers partition-scope isolation and gray-window
  queries),
  :class:`EmulatorFaultInjector` (testbed emulator).

The same schedule can be replayed against every layer, so FCT under
failure, exactness of aggregates under failure, and emulated testbed
behaviour under failure are all driven by one seed.
"""

from repro.faults.domains import (
    FaultDomain,
    in_scope,
    pod_domain_name,
    rack_domain_name,
    topology_domains,
)
from repro.faults.inject import (
    EmulatorFaultInjector,
    PlatformFaultInjector,
    SimFaultInjector,
)
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    BOX_CRASH,
    BOX_DEGRADE,
    BOX_GRAY,
    BOX_MIGRATE,
    BOX_OVERLOAD,
    BOX_RECOVER,
    BOX_SHED,
    CLOCK_SKEW,
    DOMAIN_FAIL,
    DOMAIN_KINDS,
    FAULT_KINDS,
    LINK_DOWN,
    LINK_UP,
    NET_PARTITION,
    WORKER_CHURN,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultDomain",
    "RetryPolicy",
    "SimFaultInjector",
    "PlatformFaultInjector",
    "EmulatorFaultInjector",
    "topology_domains",
    "in_scope",
    "rack_domain_name",
    "pod_domain_name",
    "BOX_CRASH",
    "BOX_RECOVER",
    "BOX_DEGRADE",
    "LINK_DOWN",
    "LINK_UP",
    "WORKER_CHURN",
    "CLOCK_SKEW",
    "BOX_OVERLOAD",
    "BOX_SHED",
    "BOX_MIGRATE",
    "BOX_GRAY",
    "DOMAIN_FAIL",
    "NET_PARTITION",
    "FAULT_KINDS",
    "DOMAIN_KINDS",
]
