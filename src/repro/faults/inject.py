"""Per-layer fault injectors: one schedule, three execution substrates.

All three injectors consume the same :class:`repro.faults.FaultSchedule`
so a single seed drives a coherent chaos run across the repository's
execution layers:

- :class:`SimFaultInjector` maps events onto the flow-level simulator:
  box crashes/degradations and link faults become scheduled capacity
  changes, and segment flows caught in flight by a *permanent* box crash
  are re-admitted along the §3.1-rewired tree via reroute events;
- :class:`PlatformFaultInjector` answers the functional platform's
  connect-time questions (is this box down at my clock?  how degraded?
  is this worker churning?), driving the shim retry/backoff ladder;
- :class:`EmulatorFaultInjector` arms fail/recover callbacks on the
  testbed emulator's queueing resources.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.failure import rewire_failed_box
from repro.core.tree import AggregationTree, TreeBuilder
from repro.faults.domains import in_scope, topology_domains
from repro.faults.schedule import (
    BOX_CRASH,
    BOX_DEGRADE,
    BOX_GRAY,
    BOX_MIGRATE,
    BOX_OVERLOAD,
    BOX_RECOVER,
    BOX_SHED,
    LINK_DOWN,
    LINK_UP,
    FaultSchedule,
)
from repro.topology.base import Topology, link_id as make_link_id


def _lane_links(nodes: Sequence[str]) -> Tuple[str, ...]:
    return tuple(make_link_id(a, b) for a, b in zip(nodes, nodes[1:]))


class SimFaultInjector:
    """Maps a fault schedule onto :class:`repro.netsim.FlowSim` runs.

    Usage::

        injector = SimFaultInjector(topo, schedule)
        strategy = NetAggStrategy(fault_view=injector.fault_view)
        sim = FlowSim(topo.network)
        sim.add_flows(strategy.plan(workload, topo))
        injector.apply(sim, workload)

    ``fault_view`` lets the strategy plan jobs that *start after* a crash
    on the rewired tree (§3.1: future trees route around known-failed
    boxes); :meth:`apply` handles everything else -- capacity events for
    every fault window, and reroute events that re-admit the segment
    flows of jobs already in flight when a permanent crash lands.
    """

    def __init__(self, topo: Topology, schedule: FaultSchedule) -> None:
        self._topo = topo
        # Correlated domain markers expand against the topology's own
        # domains, so the flow layer sees the member crashes/link cuts.
        self._schedule = schedule.expanded(topology_domains(topo))
        self._known_boxes = {info.box_id for info in topo.all_boxes()}

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    def fault_view(self, job) -> Set[str]:
        """Boxes to plan around when ``job`` starts: crashed boxes plus
        boxes inside a ``box-migrate`` drain window (drained boxes are
        alive but accept no new trees until cutover)."""
        draining = {
            e.target for e in self._schedule.migrations()
            if e.time <= job.start_time < e.time + e.duration
        }
        return (self._schedule.crashed_at(job.start_time) | draining) \
            & self._known_boxes

    def capacity_events(self, network) -> List[Tuple[float, str, float]]:
        """(when, link_id, capacity) tuples realising the schedule.

        Box crashes zero the box's attachment and processing links;
        recovery restores their built capacities (and clears any
        degradation); ``box-degrade`` divides the processing link's
        capacity by the event severity; link faults hit the named wire
        link.  ``box-overload`` divides the processing link's capacity
        for its window (service slows under queueing) and restores it
        at window end; ``box-shed`` zeroes the box's downlink for its
        window (refused ingress), so shed/NACK episodes show up in the
        flow-level FCTs of whatever was in flight; ``box-gray`` slows
        the processing link for its window exactly like an overload
        (the flow layer has no heartbeats to fool).  Events whose target
        does not exist in ``network`` (e.g. box faults replayed against
        a boxless baseline topology) are skipped, so the same schedule
        applies to every strategy.
        """
        base = network.capacities()
        out: List[Tuple[float, str, float]] = []
        for event in self._schedule:
            windowed: List[Tuple[str, float]] = []
            if event.kind in (BOX_CRASH, BOX_RECOVER, BOX_DEGRADE,
                              BOX_OVERLOAD, BOX_SHED, BOX_MIGRATE,
                              BOX_GRAY):
                if event.target not in self._known_boxes:
                    continue
                info = self._topo.box(event.target)
                box_links = (info.downlink, info.uplink, info.proc_link)
                if event.kind == BOX_CRASH:
                    changes = [(l, 0.0) for l in box_links if l in base]
                elif event.kind == BOX_RECOVER:
                    changes = [(l, base[l]) for l in box_links if l in base]
                elif event.kind in (BOX_OVERLOAD, BOX_GRAY):
                    changes = [
                        (info.proc_link, base[info.proc_link] / event.severity)
                    ] if info.proc_link in base else []
                    windowed = [
                        (info.proc_link, base[info.proc_link])
                    ] if info.proc_link in base else []
                elif event.kind in (BOX_SHED, BOX_MIGRATE):
                    # A draining (migrating) box refuses new ingress for
                    # its window exactly like a shedding one.
                    changes = [(info.downlink, 0.0)] \
                        if info.downlink in base else []
                    windowed = [(info.downlink, base[info.downlink])] \
                        if info.downlink in base else []
                else:
                    changes = [
                        (info.proc_link, base[info.proc_link] / event.severity)
                    ] if info.proc_link in base else []
            elif event.kind == LINK_DOWN and event.target in base:
                changes = [(event.target, 0.0)]
            elif event.kind == LINK_UP and event.target in base:
                changes = [(event.target, base[event.target])]
            else:
                continue
            for changed_link, capacity in changes:
                out.append((event.time, changed_link, capacity))
            # Windowed faults self-clear: restore at window end.
            for changed_link, capacity in windowed:
                out.append((event.time + event.duration, changed_link,
                            capacity))
        return out

    def apply(self, sim, workload=None) -> int:
        """Install the schedule on a simulator; returns events added.

        ``workload`` enables §3.1 reroutes for permanently-crashed boxes
        (flows are matched by the NetAgg strategy's segment naming, so a
        boxless plan is silently unaffected).
        """
        count = 0
        for when, changed_link, capacity in self.capacity_events(sim.network):
            sim.add_capacity_event(when, changed_link, capacity)
            count += 1
        if workload is not None:
            path_now = {fid: sim.spec(fid).path for fid in sim.flow_ids()}
            for when, flow_id, path in self.reroute_events(workload, path_now):
                sim.add_reroute_event(when, flow_id, path)
                count += 1
        return count

    def reroute_events(
        self,
        workload,
        path_now: Dict[str, Tuple[str, ...]],
    ) -> List[Tuple[float, str, Tuple[str, ...]]]:
        """§3.1 re-admissions for flows in flight at a permanent crash.

        For each permanently-crashed box and each job planned before the
        crash, the job's trees are rebuilt deterministically (the same
        construction the strategy used), the box is rewired out, and the
        affected segment flows -- workers entering the box, the box's own
        output segment, and child-box segments feeding it -- continue on
        the joined lane into the adopting parent (or the master).  Only
        flows whose *current* path actually touches the dead box are
        rerouted (straggler-bypassed workers already go direct), and
        ``path_now`` is updated in place so cascading crashes compose.
        """
        permanent = self._schedule.permanent_crashes()
        if not permanent:
            return []
        crashes = sorted((tc, box) for box, tc in permanent.items())
        builder = TreeBuilder(self._topo)
        out: List[Tuple[float, str, Tuple[str, ...]]] = []
        for job in workload.jobs:
            later = [(tc, box) for tc, box in crashes if tc > job.start_time]
            if not later:
                continue
            hosts = [h for h, _ in job.workers]
            trees = builder.build_many(job.job_id, job.master, hosts,
                                       job.n_trees)
            # Reproduce the plan-time view: boxes already down at job
            # start were rewired out before any flow existed.
            for i, tree in enumerate(trees):
                for box_id in sorted(self.fault_view(job)):
                    if box_id in tree.boxes:
                        tree = rewire_failed_box(tree, box_id)
                trees[i] = tree
            for crash_time, box in later:
                for i, tree in enumerate(trees):
                    if box not in tree.boxes:
                        continue
                    reroutes = self._tree_reroutes(job, tree, box,
                                                   crash_time, path_now)
                    for when, flow_id, path in reroutes:
                        path_now[flow_id] = path
                        out.append((when, flow_id, path))
                    trees[i] = rewire_failed_box(tree, box)
        return out

    def _tree_reroutes(
        self,
        job,
        tree: AggregationTree,
        box: str,
        crash_time: float,
        path_now: Dict[str, Tuple[str, ...]],
    ) -> List[Tuple[float, str, Tuple[str, ...]]]:
        vertex = tree.boxes[box]
        rewired = rewire_failed_box(tree, box)
        prefix = f"{job.job_id}:t{tree.tree_index}"
        info = vertex.info
        dead_links = {info.downlink, info.uplink, info.proc_link}
        master_edge = make_link_id(tree.master_tor, job.master)

        def touched(flow_id: str) -> bool:
            path = path_now.get(flow_id)
            return path is not None and any(l in dead_links for l in path)

        def into(tree_after: AggregationTree,
                 parent: Optional[str]) -> Tuple[str, ...]:
            """Final hops into the adopting parent box (or the master)."""
            if parent is None:
                return (master_edge,)
            pinfo = tree_after.boxes[parent].info
            return (pinfo.downlink, pinfo.proc_link)

        out: List[Tuple[float, str, Tuple[str, ...]]] = []

        # Workers that entered the dead box redirect up the joined lane.
        for w in vertex.direct_workers:
            flow_id = f"{prefix}:w{w}"
            if not touched(flow_id):
                continue
            host = job.workers[w][0]
            lane = rewired.worker_lane[w]
            path = _lane_links((host,) + lane) \
                + into(rewired, rewired.worker_entry[w])
            out.append((crash_time, flow_id, path))

        # The dead box's output segment: its bytes bypass the box and
        # follow the lane to the adopting parent (fluid stand-in for the
        # children's replayed partials reaching the §3.1 detector node).
        flow_id = f"{prefix}:b:{box}"
        if touched(flow_id):
            path = _lane_links(vertex.lane_to_parent) \
                + into(tree, vertex.parent)
            out.append((crash_time, flow_id, path))

        # Child boxes that fed the dead box now feed its parent.
        for child in vertex.children:
            flow_id = f"{prefix}:b:{child}"
            if not touched(flow_id):
                continue
            cvert = rewired.boxes[child]
            path = (cvert.info.uplink,) \
                + _lane_links(cvert.lane_to_parent) \
                + into(rewired, cvert.parent)
            out.append((crash_time, flow_id, path))
        return out


class PlatformFaultInjector:
    """Connect-time fault oracle for :class:`repro.core.NetAggPlatform`.

    The platform advances a deterministic virtual clock as shims send,
    retry and back off; every question here is a pure function of the
    schedule and that clock, so request outcomes are reproducible.
    Faults are evaluated when a shim *connects* -- mid-stream box death
    is the domain of :class:`repro.core.recovery.InFlightRequest`.

    Constructed with a ``topo``, the injector becomes partition-aware:
    domain markers in the schedule expand into member events, and
    :meth:`isolated` answers whether an active partition scope
    separates two endpoints (exactly one of them inside the scope).
    Without a topology the markers are ignored, preserving the old
    behaviour.
    """

    def __init__(self, schedule: FaultSchedule,
                 topo: Optional[Topology] = None) -> None:
        self._topo = topo
        if topo is not None:
            schedule = schedule.expanded(topology_domains(topo))
        self._schedule = schedule

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def topo(self) -> Optional[Topology]:
        return self._topo

    def box_down(self, box_id: str, t: float) -> bool:
        """Is the box crashed (and not yet recovered) at clock ``t``?"""
        return box_id in self._schedule.crashed_at(t)

    def degradation(self, box_id: str, t: float) -> float:
        """Processing slow-down factor of the box at ``t`` (1.0 = none)."""
        return self._schedule.degradation_at(box_id, t)

    def churn_until(self, worker_index: int, t: float) -> Optional[float]:
        """End of a churn window covering worker ``worker_index`` at ``t``."""
        return self._schedule.churn_until(f"worker:{worker_index}", t)

    def clock_skew(self, box_id: str, t: float) -> float:
        """Seconds the box's heartbeat clock lags at ``t``."""
        return self._schedule.clock_skew_at(box_id, t)

    def overload_factor(self, box_id: str, t: float) -> float:
        """Service slow-down from overload windows at ``t`` (1.0 = none)."""
        return self._schedule.overload_at(box_id, t)

    def shedding(self, box_id: str, t: float) -> bool:
        """Is the box refusing new requests (shed or drain window) at
        ``t``?  A migrating box behaves like a shedding one at plan
        time: new trees must route around it until cutover completes."""
        return self._schedule.shedding_at(box_id, t) \
            or self._schedule.migrating_at(box_id, t)

    def gray_factor(self, box_id: str, t: float) -> float:
        """Gray slow-down factor at ``t`` (1.0 = none).

        Unlike :meth:`degradation`/:meth:`overload_factor`, a gray
        window is invisible to scheduled health machinery: only the
        observed service time betrays it.
        """
        return self._schedule.gray_at(box_id, t)

    def isolated(self, node_id: str, other: str,
                 t: float) -> Optional[str]:
        """The partition scope separating two endpoints at ``t``, if any.

        A scope separates the endpoints when exactly one of them is
        inside it (both-inside stays connected intra-domain, both
        outside never crossed the cut).  Returns the scope name, or
        ``None`` when the endpoints can reach each other (always, when
        the injector has no topology).
        """
        if self._topo is None:
            return None
        for scope in self._schedule.partitions_at(t):
            inside = in_scope(self._topo, node_id, scope)
            if inside != in_scope(self._topo, other, scope):
                return scope
        return None


class EmulatorFaultInjector:
    """Arms fail/recover events on testbed-emulator resources.

    Targets are matched by resource *name*: ``box-crash``/``link-down``
    events fail the resource (in-service work is parked and replayed on
    recovery), ``box-recover``/``link-up`` recover it, and
    ``box-degrade`` divides its service rate by the event severity until
    recovery.  Windowed overload faults self-clear: ``box-overload``
    slows the resource for its window and restores the built rate at
    window end; ``box-shed`` takes it out of service for the window
    (queued work parks and replays -- the emulator has no NACK path).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self._schedule = schedule

    def arm(self, queue, resources: Mapping[str, object]) -> int:
        """Schedule the events on ``queue``; returns callbacks armed."""
        armed = 0
        for event in self._schedule:
            resource = resources.get(event.target)
            if resource is None:
                continue
            if event.kind in (BOX_CRASH, LINK_DOWN):
                queue.schedule_at(event.time, resource.fail)
            elif event.kind in (BOX_RECOVER, LINK_UP):
                queue.schedule_at(event.time, resource.recover)
            elif event.kind == BOX_DEGRADE:
                factor = event.severity
                queue.schedule_at(
                    event.time,
                    lambda r=resource, f=factor: r.degrade(f),
                )
            elif event.kind in (BOX_OVERLOAD, BOX_GRAY):
                # The emulator has no heartbeat channel to fool, so a
                # gray window degrades service exactly like overload.
                factor = event.severity
                queue.schedule_at(
                    event.time,
                    lambda r=resource, f=factor: r.degrade(f),
                )
                queue.schedule_at(
                    event.time + event.duration,
                    lambda r=resource: r.degrade(1.0),
                )
                armed += 1
            elif event.kind in (BOX_SHED, BOX_MIGRATE):
                queue.schedule_at(event.time, resource.fail)
                queue.schedule_at(event.time + event.duration,
                                  resource.recover)
                armed += 1
            else:
                continue
            armed += 1
        return armed
