"""Seedable, deterministic schedules of fault events.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records over virtual time.  Schedules are either composed explicitly
(tests) or generated from a seed (:meth:`FaultSchedule.generate`), and
every consumer -- the flow simulator, the functional platform, the
testbed emulator -- derives its behaviour purely from the schedule plus
its own deterministic clock, so a seed fully reproduces a chaos run.

Event kinds and their per-layer meaning:

==============  =====================================================
kind            meaning
==============  =====================================================
``box-crash``   agg box dies at ``time`` (until a later ``box-recover``)
``box-recover`` the box is healthy again (also clears degradation)
``box-degrade`` the box's processing slows by factor ``severity``
``link-down``   a network link carries no traffic
``link-up``     the link is restored
``worker-churn`` worker ``target`` is unavailable for ``duration`` s
``clock-skew``  ``target``'s clock runs ``severity`` seconds behind
``box-overload`` the box's service slows by factor ``severity`` for
                ``duration`` s (queueing under offered load, not a
                hardware fault -- overload windows self-clear)
``box-shed``    the box refuses *new* requests for ``duration`` s
                (senders are NACKed down their degradation ladder;
                in the flow simulator its ingress carries no traffic)
``box-migrate`` the optimizer drains the box at ``time`` and cuts its
                work over upstream after ``duration`` s; during the
                window the box accepts no new trees (like a shed) and
                the chaos suite may kill boxes *inside* the window to
                exercise mid-migration recovery and rollback
``box-gray``    gray failure: the box runs ``severity`` times slow for
                ``duration`` s while its heartbeat stays healthy --
                invisible to the health machinery, caught only by the
                latency-outlier gray detector
``domain-fail`` the fault domain ``target`` (a rack/ToR/power scope,
                see :mod:`repro.faults.domains`) fails as a unit;
                expands into correlated member crashes + border link
                cuts; ``duration`` 0 means permanent
``net-partition`` the domain's border links are cut for ``duration`` s
                (0 = permanent): members stay alive but unreachable
                from the rest of the fabric
==============  =====================================================

``domain-fail`` and ``net-partition`` are *marker* events: injectors
without a topology skip them, topology-aware ones call
:meth:`FaultSchedule.expanded` to realise the correlated member events.
Schedules are validated on construction (:meth:`FaultSchedule.validate`)
so incoherent timelines -- a recover with nothing to recover from,
overlapping crash windows for one target -- fail loudly with the
offending events named.
"""

from __future__ import annotations

import random
from bisect import insort
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

BOX_CRASH = "box-crash"
BOX_RECOVER = "box-recover"
BOX_DEGRADE = "box-degrade"
LINK_DOWN = "link-down"
LINK_UP = "link-up"
WORKER_CHURN = "worker-churn"
CLOCK_SKEW = "clock-skew"
BOX_OVERLOAD = "box-overload"
BOX_SHED = "box-shed"
BOX_MIGRATE = "box-migrate"
BOX_GRAY = "box-gray"
DOMAIN_FAIL = "domain-fail"
NET_PARTITION = "net-partition"

FAULT_KINDS = frozenset({
    BOX_CRASH, BOX_RECOVER, BOX_DEGRADE,
    LINK_DOWN, LINK_UP, WORKER_CHURN, CLOCK_SKEW,
    BOX_OVERLOAD, BOX_SHED, BOX_MIGRATE,
    BOX_GRAY, DOMAIN_FAIL, NET_PARTITION,
})

#: Marker kinds a topology-aware consumer expands into member events.
DOMAIN_KINDS = frozenset({DOMAIN_FAIL, NET_PARTITION})


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One timestamped fault.

    Attributes:
        time: virtual time of the event (seconds, >= 0).
        kind: one of :data:`FAULT_KINDS`.
        target: box id, link id, or ``"worker:<index>"`` the event hits.
        severity: degradation factor (``box-degrade``/``box-overload``,
            > 1 slows the box down) or skew seconds (``clock-skew``);
            unused otherwise.
        duration: how long the fault lasts (``worker-churn``,
            ``box-overload`` and ``box-shed``; crash and link faults
            end via explicit recover/up events).
    """

    time: float
    kind: str
    target: str
    severity: float = 1.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault at negative time {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not self.target:
            raise ValueError("fault needs a target")
        if self.severity <= 0:
            raise ValueError("severity must be positive")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")


@dataclass
class FaultSchedule:
    """An ordered, queryable set of fault events.

    Events are kept sorted by ``(time, kind, target)``; all queries are
    pure functions of the schedule and a time ``t``, so layers can poll
    at their own clocks without coordination.
    """

    _events: List[FaultEvent] = field(default_factory=list)

    def __init__(self, events: Iterable[FaultEvent] = (),
                 validate: bool = True) -> None:
        self._events = sorted(events)
        if validate:
            self.validate()

    # -- composition ----------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert one event, keeping order.  Returns self for chaining.

        ``add`` defers coherence checking (incremental construction may
        pass through transiently-incoherent states, e.g. a recover
        inserted before its crash); call :meth:`validate` once the
        schedule is assembled.
        """
        insort(self._events, event)
        return self

    def validate(self) -> "FaultSchedule":
        """Reject incoherent timelines, naming the offending events.

        Checks (over the raw, unexpanded events):

        - ``box-recover`` with no outstanding crash/degrade/skew on the
          target (recover-before-crash);
        - a second ``box-crash`` while the target is still crashed
          (overlapping crash windows);
        - ``link-down`` for a link already down / ``link-up`` for a
          link that is up;
        - overlapping ``domain-fail``/``net-partition`` windows for the
          same domain (``duration`` 0 is permanent, so anything later
          on that domain overlaps).

        Same-timestamp recoveries are applied before same-timestamp
        faults, so back-to-back windows that touch exactly are legal.
        Raises :class:`ValueError` listing every violation; returns
        self when coherent (constructor-chained).
        """
        problems: List[str] = []
        outstanding: Dict[str, Set[str]] = {}
        links_down: Set[str] = set()
        domain_end: Dict[Tuple[str, str], float] = {}
        recovery_kinds = (BOX_RECOVER, LINK_UP)
        order = sorted(
            self._events,
            key=lambda e: (e.time, e.kind not in recovery_kinds,
                           e.kind, e.target),
        )

        def name(e: FaultEvent) -> str:
            return f"{e.kind}@{e.time:g}->{e.target}"

        for e in order:
            if e.kind == BOX_CRASH:
                kinds = outstanding.setdefault(e.target, set())
                if BOX_CRASH in kinds:
                    problems.append(
                        f"{name(e)}: overlapping crash windows "
                        f"({e.target!r} is still crashed)")
                kinds.add(BOX_CRASH)
            elif e.kind in (BOX_DEGRADE, CLOCK_SKEW):
                outstanding.setdefault(e.target, set()).add(e.kind)
            elif e.kind == BOX_RECOVER:
                kinds = outstanding.get(e.target)
                if not kinds:
                    problems.append(
                        f"{name(e)}: recover with no outstanding "
                        f"crash/degrade/skew on {e.target!r}")
                else:
                    kinds.clear()
            elif e.kind == LINK_DOWN:
                if e.target in links_down:
                    problems.append(
                        f"{name(e)}: overlapping down windows "
                        f"(link {e.target!r} is already down)")
                links_down.add(e.target)
            elif e.kind == LINK_UP:
                if e.target not in links_down:
                    problems.append(
                        f"{name(e)}: link-up for {e.target!r} "
                        "which is not down")
                links_down.discard(e.target)
            elif e.kind in DOMAIN_KINDS:
                key = (e.kind, e.target)
                end = domain_end.get(key)
                if end is not None and e.time < end:
                    problems.append(
                        f"{name(e)}: overlapping {e.kind} windows "
                        f"for {e.target!r}")
                new_end = (float("inf") if e.duration <= 0
                           else e.time + e.duration)
                domain_end[key] = max(end or 0.0, new_end)
        if problems:
            raise ValueError(
                "incoherent fault schedule: " + "; ".join(problems))
        return self

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self._events[-1].time if self._events else 0.0

    def events_for(self, kind: Optional[str] = None,
                   target: Optional[str] = None) -> List[FaultEvent]:
        """Events matching the given kind and/or target."""
        return [
            e for e in self._events
            if (kind is None or e.kind == kind)
            and (target is None or e.target == target)
        ]

    def between(self, t0: float, t1: float) -> List[FaultEvent]:
        """Events with ``t0 <= time < t1``."""
        return [e for e in self._events if t0 <= e.time < t1]

    # -- point-in-time queries ------------------------------------------------

    def crashed_at(self, t: float) -> Set[str]:
        """Boxes crashed at or before ``t`` and not yet recovered."""
        down: Set[str] = set()
        for event in self._events:
            if event.time > t:
                break
            if event.kind == BOX_CRASH:
                down.add(event.target)
            elif event.kind == BOX_RECOVER:
                down.discard(event.target)
        return down

    def links_down_at(self, t: float) -> Set[str]:
        """Links down at or before ``t`` and not yet brought back up."""
        down: Set[str] = set()
        for event in self._events:
            if event.time > t:
                break
            if event.kind == LINK_DOWN:
                down.add(event.target)
            elif event.kind == LINK_UP:
                down.discard(event.target)
        return down

    def degradation_at(self, target: str, t: float) -> float:
        """Processing slow-down factor of ``target`` at ``t`` (1.0 = healthy).

        The latest ``box-degrade`` at or before ``t`` applies until a
        ``box-recover`` for the same target clears it.
        """
        factor = 1.0
        for event in self._events:
            if event.time > t:
                break
            if event.target != target:
                continue
            if event.kind == BOX_DEGRADE:
                factor = event.severity
            elif event.kind == BOX_RECOVER:
                factor = 1.0
        return factor

    def clock_skew_at(self, target: str, t: float) -> float:
        """Seconds ``target``'s clock lags at ``t`` (0.0 = in sync)."""
        skew = 0.0
        for event in self._events:
            if event.time > t:
                break
            if event.target != target:
                continue
            if event.kind == CLOCK_SKEW:
                skew = event.severity
            elif event.kind == BOX_RECOVER:
                skew = 0.0
        return skew

    def churn_until(self, target: str, t: float) -> Optional[float]:
        """End time of a ``worker-churn`` window covering ``t``, if any."""
        end: Optional[float] = None
        for event in self._events:
            if event.time > t:
                break
            if event.kind == WORKER_CHURN and event.target == target \
                    and t < event.time + event.duration:
                window_end = event.time + event.duration
                end = window_end if end is None else max(end, window_end)
        return end

    def overload_at(self, target: str, t: float) -> float:
        """Service slow-down from overload windows covering ``t``.

        Overlapping ``box-overload`` windows do not stack; the worst
        (largest) factor applies.  1.0 = no overload.
        """
        factor = 1.0
        for event in self._events:
            if event.time > t:
                break
            if event.kind == BOX_OVERLOAD and event.target == target \
                    and t < event.time + event.duration:
                factor = max(factor, event.severity)
        return factor

    def shedding_at(self, target: str, t: float) -> bool:
        """Is ``target`` inside a ``box-shed`` window at ``t``?"""
        for event in self._events:
            if event.time > t:
                break
            if event.kind == BOX_SHED and event.target == target \
                    and t < event.time + event.duration:
                return True
        return False

    def migrating_at(self, target: str, t: float) -> bool:
        """Is ``target`` inside a ``box-migrate`` drain window at ``t``?"""
        for event in self._events:
            if event.time > t:
                break
            if event.kind == BOX_MIGRATE and event.target == target \
                    and t < event.time + event.duration:
                return True
        return False

    def migrations(self) -> List[FaultEvent]:
        """All ``box-migrate`` events, in time order."""
        return self.events_for(kind=BOX_MIGRATE)

    def gray_at(self, target: str, t: float) -> float:
        """Gray slow-down factor of ``target`` at ``t`` (1.0 = none).

        Like :meth:`overload_at`, overlapping windows do not stack (the
        worst factor applies) -- but a gray window never shows up in
        the box's own health feed: its heartbeat stays ``healthy``.
        """
        factor = 1.0
        for event in self._events:
            if event.time > t:
                break
            if event.kind == BOX_GRAY and event.target == target \
                    and t < event.time + event.duration:
                factor = max(factor, event.severity)
        return factor

    def partitions_at(self, t: float) -> List[str]:
        """Partition scopes (domain names) active at ``t``, sorted.

        Both ``net-partition`` and ``domain-fail`` isolate their
        domain's border: a failed domain's members are (also) crashed,
        a partitioned domain's members are merely unreachable.  A
        window with ``duration`` 0 never heals.
        """
        scopes: Set[str] = set()
        for event in self._events:
            if event.time > t:
                break
            if event.kind in DOMAIN_KINDS \
                    and (event.duration <= 0
                         or t < event.time + event.duration):
                scopes.add(event.target)
        return sorted(scopes)

    def domain_events(self) -> List[FaultEvent]:
        """All ``domain-fail``/``net-partition`` markers, in time order."""
        return [e for e in self._events if e.kind in DOMAIN_KINDS]

    def expanded(self, domains: Mapping[str, object]) -> "FaultSchedule":
        """Realise domain markers as correlated member events.

        ``domains`` maps domain names to
        :class:`repro.faults.domains.FaultDomain` records (usually
        :func:`repro.faults.domains.topology_domains`).  Each
        ``domain-fail`` becomes a ``box-crash`` per member box plus a
        ``link-down`` per border link (with matching recover/up events
        at window end when ``duration`` > 0); a ``net-partition`` cuts
        only the border links.  The markers themselves are retained --
        consumers that do not understand them skip them -- so
        :meth:`partitions_at` keeps working on the expanded schedule.
        Returns self when there is nothing to expand.

        The expansion is *not* re-validated: a member box may legally
        be crashed both individually and by its domain, which the raw
        per-event coherence rules would reject.
        """
        markers = self.domain_events()
        if not markers:
            return self
        events = list(self._events)
        for marker in markers:
            domain = domains.get(marker.target)
            if domain is None:
                known = ", ".join(sorted(map(str, domains))) or "none"
                raise ValueError(
                    f"cannot expand {marker.kind}@{marker.time:g}: "
                    f"unknown fault domain {marker.target!r} "
                    f"(known: {known})")
            heal = (marker.time + marker.duration
                    if marker.duration > 0 else None)
            if marker.kind == DOMAIN_FAIL:
                for box in domain.boxes:
                    events.append(FaultEvent(marker.time, BOX_CRASH, box))
                    if heal is not None:
                        events.append(FaultEvent(heal, BOX_RECOVER, box))
            for link in domain.links:
                events.append(FaultEvent(marker.time, LINK_DOWN, link))
                if heal is not None:
                    events.append(FaultEvent(heal, LINK_UP, link))
        return FaultSchedule(events, validate=False)

    def permanent_crashes(self) -> Dict[str, float]:
        """Box id -> crash time, for crashes never followed by a recover."""
        last_crash: Dict[str, float] = {}
        for event in self._events:
            if event.kind == BOX_CRASH:
                last_crash[event.target] = event.time
            elif event.kind == BOX_RECOVER:
                last_crash.pop(event.target, None)
        return last_crash

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        duration: float,
        boxes: Sequence[str] = (),
        links: Sequence[str] = (),
        workers: int = 0,
        box_crashes: int = 0,
        link_flaps: int = 0,
        degradations: int = 0,
        churns: int = 0,
        skews: int = 0,
        overloads: int = 0,
        sheds: int = 0,
        migrations: int = 0,
        mean_downtime: Optional[float] = None,
        permanent_fraction: float = 0.25,
        grays: int = 0,
        domain_fails: int = 0,
        partitions: int = 0,
        domains: Sequence[str] = (),
    ) -> "FaultSchedule":
        """Draw a random but fully seed-determined schedule.

        Crashes strike in ``[0, 0.8 * duration)`` so some requests are
        in flight when they land; a ``permanent_fraction`` of them never
        recover (exercising §3.1's tree rewiring), the rest recover
        after an exponential downtime (exercising retry ride-through).
        Link faults are always flaps (down + up pairs): permanent wire
        cuts would need rerouting below the aggregation layer, which the
        paper's failure model does not cover.  ``grays``/
        ``domain_fails``/``partitions`` draw gray-failure windows on
        boxes and domain-failure/partition windows on the given
        ``domains`` (scope names, see :mod:`repro.faults.domains`).

        Generated schedules are always coherent (:meth:`validate`):
        when a drawn target's new window would overlap one it already
        has, the generator rotates deterministically to the next free
        target in sorted order (consuming no extra randomness) and
        skips the event if every target is busy.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if box_crashes + degradations + skews + overloads + sheds \
                + migrations + grays > 0 and not boxes:
            raise ValueError("box faults requested but no boxes given")
        if link_flaps > 0 and not links:
            raise ValueError("link flaps requested but no links given")
        if churns > 0 and workers < 1:
            raise ValueError("worker churn requested but no workers given")
        if domain_fails + partitions > 0 and not domains:
            raise ValueError("domain faults requested but no domains given")
        rng = random.Random(seed)
        mean_downtime = mean_downtime or duration / 4.0
        events: List[FaultEvent] = []
        boxes = sorted(boxes)
        links = sorted(links)
        domains = sorted(domains)

        # Per-target claimed windows, shared by every windowed kind the
        # coherence rules constrain (crash/degrade share the recover
        # namespace, so they share one busy map per box).
        busy: Dict[str, List[Tuple[float, float]]] = {}

        def free_target(pool: Sequence[str], drawn: str, start: float,
                        end: float) -> Optional[str]:
            at = pool.index(drawn)
            for step in range(len(pool)):
                candidate = pool[(at + step) % len(pool)]
                if not any(s < end and start < e
                           for s, e in busy.get(candidate, ())):
                    busy.setdefault(candidate, []).append((start, end))
                    return candidate
            return None

        for _ in range(box_crashes):
            box = rng.choice(boxes)
            start = rng.uniform(0.0, 0.8 * duration)
            permanent = rng.random() < permanent_fraction
            downtime = float("inf") if permanent else min(
                rng.expovariate(1.0 / mean_downtime), duration - start)
            box = free_target(boxes, box, start, start + downtime)
            if box is None:
                continue
            events.append(FaultEvent(time=start, kind=BOX_CRASH, target=box))
            if not permanent:
                events.append(FaultEvent(time=start + downtime,
                                         kind=BOX_RECOVER, target=box))

        for _ in range(link_flaps):
            link = rng.choice(links)
            start = rng.uniform(0.0, 0.9 * duration)
            flap = rng.uniform(0.01, 0.2) * duration
            up_at = min(start + flap, duration)
            link = free_target(links, link, start, up_at)
            if link is None:
                continue
            events.append(FaultEvent(time=start, kind=LINK_DOWN, target=link))
            events.append(FaultEvent(time=up_at, kind=LINK_UP, target=link))

        for _ in range(degradations):
            box = rng.choice(boxes)
            start = rng.uniform(0.0, 0.8 * duration)
            factor = rng.uniform(1.5, 8.0)
            recover_at = min(start + rng.expovariate(1.0 / mean_downtime),
                             duration)
            box = free_target(boxes, box, start, recover_at)
            if box is None:
                continue
            events.append(FaultEvent(time=start, kind=BOX_DEGRADE,
                                     target=box, severity=factor))
            events.append(FaultEvent(time=recover_at, kind=BOX_RECOVER,
                                     target=box))

        for _ in range(churns):
            index = rng.randrange(workers)
            start = rng.uniform(0.0, 0.8 * duration)
            events.append(FaultEvent(
                time=start, kind=WORKER_CHURN, target=f"worker:{index}",
                duration=rng.uniform(0.05, 0.25) * duration,
            ))

        for _ in range(skews):
            box = rng.choice(boxes)
            events.append(FaultEvent(
                time=rng.uniform(0.0, 0.8 * duration), kind=CLOCK_SKEW,
                target=box, severity=rng.uniform(0.1, 2.0),
            ))

        for _ in range(overloads):
            box = rng.choice(boxes)
            start = rng.uniform(0.0, 0.8 * duration)
            events.append(FaultEvent(
                time=start, kind=BOX_OVERLOAD, target=box,
                severity=rng.uniform(2.0, 6.0),
                duration=min(rng.uniform(0.05, 0.3) * duration,
                             duration - start),
            ))

        for _ in range(sheds):
            box = rng.choice(boxes)
            start = rng.uniform(0.0, 0.8 * duration)
            events.append(FaultEvent(
                time=start, kind=BOX_SHED, target=box,
                duration=min(rng.uniform(0.05, 0.2) * duration,
                             duration - start),
            ))

        for _ in range(migrations):
            box = rng.choice(boxes)
            start = rng.uniform(0.0, 0.8 * duration)
            events.append(FaultEvent(
                time=start, kind=BOX_MIGRATE, target=box,
                duration=min(rng.uniform(0.02, 0.15) * duration,
                             duration - start),
            ))

        for _ in range(grays):
            box = rng.choice(boxes)
            start = rng.uniform(0.0, 0.8 * duration)
            events.append(FaultEvent(
                time=start, kind=BOX_GRAY, target=box,
                severity=rng.uniform(8.0, 64.0),
                duration=min(rng.uniform(0.1, 0.4) * duration,
                             duration - start),
            ))

        for kind, count in ((DOMAIN_FAIL, domain_fails),
                            (NET_PARTITION, partitions)):
            for _ in range(count):
                domain = rng.choice(domains)
                start = rng.uniform(0.0, 0.7 * duration)
                window = min(rng.uniform(0.1, 0.3) * duration,
                             duration - start)
                domain = free_target(domains, domain, start, start + window)
                if domain is None:
                    continue
                events.append(FaultEvent(time=start, kind=kind,
                                         target=domain, duration=window))

        return cls(events)
