"""Shim-side retry policy: timeout, bounded backoff, deterministic jitter.

When a worker shim (or a box forwarding upstream) cannot reach its
target, it retries with exponential backoff before degrading down the
ladder (next on-path box, then direct-to-master).  Real systems add
random jitter to decorrelate retry storms; here the jitter is a hash of
``(key, attempt)`` so runs are bit-reproducible while different senders
still spread out.

Two jitter schemes are available:

- the default multiplies each exponential backoff by a hash-derived
  factor in ``[1 - jitter, 1]`` -- bounded, but senders that fail at
  the same instant still share the exponential *envelope*, so their
  retries cluster around the same doubling points (visible as aliasing
  spikes in ``fig_failures``);
- ``decorrelated=True`` switches to decorrelated jitter (the AWS
  architecture-blog scheme): each delay is drawn uniformly from
  ``[base_backoff, 3 * previous_delay]``, capped at ``max_backoff``.
  Consecutive delays no longer share an envelope, so synchronized
  senders spread out after the first retry.  The draw is seeded from
  ``(key, attempt, seed)`` via :func:`repro.netsim.routing.stable_hash`,
  so a given policy + key reproduces the same delays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.routing import stable_hash

#: Jitter granularity: hashes are reduced modulo this many buckets.
_JITTER_BUCKETS = 10_000


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        timeout: seconds a failed connect attempt burns before the shim
            gives up on it.
        max_attempts: connect attempts per target before degrading to
            the next rung of the ladder (>= 1).
        base_backoff: sleep after the first failed attempt.
        multiplier: backoff growth factor per further attempt.
        max_backoff: backoff ceiling (the "bounded" in bounded backoff).
        jitter: fraction of each backoff randomised away (0 = none,
            0.5 = sleeps land in ``[0.5 * b, b]``), deterministically
            from the retry key.
        send_latency: clock cost of one successful delivery hop.
        deadline: optional total retry-time budget per send.  Once a
            send has burnt this much clock across attempts, the shim
            degrades down the ladder immediately, even with
            ``max_attempts`` remaining -- so a send can never exceed a
            request SLO.  None (the default) keeps attempts unbounded
            in time.
        decorrelated: use decorrelated jitter instead of jittered
            exponential backoff (see the module docstring); delays stay
            within ``[base_backoff, max_backoff]`` and are a pure
            function of ``(policy, key, attempt)``.
        seed: extra entropy folded into the deterministic jitter hash,
            so two deployments sharing retry keys still decorrelate.
    """

    timeout: float = 0.05
    max_attempts: int = 3
    base_backoff: float = 0.01
    multiplier: float = 2.0
    max_backoff: float = 0.5
    jitter: float = 0.5
    send_latency: float = 0.001
    deadline: Optional[float] = None
    decorrelated: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff <= 0 or self.max_backoff < self.base_backoff:
            raise ValueError(
                "need 0 < base_backoff <= max_backoff "
                f"(got {self.base_backoff}, {self.max_backoff})"
            )
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.send_latency < 0:
            raise ValueError("send_latency must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def backoff(self, attempt: int, key: str = "") -> float:
        """Sleep before retry number ``attempt + 1`` (attempts from 1).

        Deterministic: the same ``(policy, attempt, key)`` always yields
        the same delay.  With the default scheme the delay is within
        ``[(1 - jitter) * b, b]`` for the un-jittered bound ``b``;
        with ``decorrelated=True`` it is within
        ``[base_backoff, max_backoff]``.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        if self.decorrelated:
            return self._decorrelated(attempt, key)
        raw = min(self.base_backoff * self.multiplier ** (attempt - 1),
                  self.max_backoff)
        if self.jitter == 0.0:
            return raw
        bucket = stable_hash(f"{key}#a{attempt}") % _JITTER_BUCKETS
        return raw * (1.0 - self.jitter * bucket / _JITTER_BUCKETS)

    def _decorrelated(self, attempt: int, key: str) -> float:
        """Decorrelated jitter, replayed from the first attempt.

        ``sleep_n = min(cap, uniform(base, 3 * sleep_{n-1}))`` with
        ``sleep_0 = base``; the uniform draw for step ``n`` hashes
        ``(key, n, seed)``, so the whole sequence is a pure function of
        the policy and the retry key.  Replaying from the start keeps
        :meth:`backoff` stateless (the caller passes only the attempt
        number), at O(attempt) hash cost -- attempts are small.
        """
        sleep = self.base_backoff
        for step in range(1, attempt + 1):
            bucket = stable_hash(
                f"{key}#d{step}#s{self.seed}") % _JITTER_BUCKETS
            frac = bucket / (_JITTER_BUCKETS - 1)
            span = max(3.0 * sleep - self.base_backoff, 0.0)
            sleep = min(self.base_backoff + frac * span, self.max_backoff)
        return sleep

    def delays(self, key: str = "") -> List[float]:
        """All backoff sleeps of one full retry sequence for ``key``."""
        return [self.backoff(a, key) for a in range(1, self.max_attempts)]

    def worst_case_clock(self) -> float:
        """Upper bound on clock burnt before giving up on one target."""
        raw = self.max_attempts * self.timeout + sum(
            min(self.base_backoff * self.multiplier ** (a - 1),
                self.max_backoff)
            for a in range(1, self.max_attempts)
        )
        if self.deadline is None:
            return raw
        # The deadline is checked before each attempt after the first,
        # so the worst case is one full attempt past the budget.
        return min(raw, self.deadline + self.timeout)
