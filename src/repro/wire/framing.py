"""Length-prefixed framing and streaming chunk reassembly.

Shim layers and agg boxes exchange *frames* (one serialised record batch
per frame) over byte streams.  Because the network layer hands data to
the deserialiser in arbitrary chunks, a frame can be split across chunk
boundaries; :class:`ChunkReassembler` buffers the incomplete tail, which
is exactly the behaviour §3.2.1 describes for the Hadoop deserialiser
("the deserialiser must account for incomplete pairs at the end of each
received chunk").
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.wire.serializer import WireError, read_varint, write_varint


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a varint length prefix."""
    return write_varint(len(payload)) + payload


def unframe_all(buffer: bytes) -> List[bytes]:
    """Split a buffer containing whole frames; raises on trailing junk."""
    frames, rest = _drain(buffer)
    if rest:
        raise WireError(f"{len(rest)} trailing bytes after last frame")
    return frames


def _drain(buffer: bytes) -> Tuple[List[bytes], bytes]:
    """Extract complete frames; returns (frames, unconsumed tail)."""
    frames: List[bytes] = []
    offset = 0
    while offset < len(buffer):
        try:
            length, after = read_varint(buffer, offset)
        except WireError:
            break  # incomplete length prefix
        end = after + length
        if end > len(buffer):
            break  # incomplete payload
        frames.append(bytes(buffer[after:end]))
        offset = end
    return frames, bytes(buffer[offset:])


class ChunkReassembler:
    """Streaming frame extractor tolerating arbitrary chunk boundaries."""

    def __init__(self) -> None:
        self._pending = b""
        self._frames_out = 0
        self._bytes_in = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._pending)

    @property
    def frames_emitted(self) -> int:
        return self._frames_out

    @property
    def bytes_consumed(self) -> int:
        return self._bytes_in

    def feed(self, chunk: bytes) -> List[bytes]:
        """Add a chunk; returns every frame completed by it."""
        self._bytes_in += len(chunk)
        frames, self._pending = _drain(self._pending + chunk)
        self._frames_out += len(frames)
        return frames

    def feed_all(self, chunks: Iterable[bytes]) -> List[bytes]:
        frames: List[bytes] = []
        for chunk in chunks:
            frames.extend(self.feed(chunk))
        return frames

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._pending:
            raise WireError(
                f"stream ended mid-frame with {len(self._pending)} bytes "
                "buffered"
            )
