"""Binary wire format (the paper's KryoNet substitute, §3.2.1).

Agg boxes "transfer data with an efficient binary network protocol"
instead of wasteful application formats (HTTP/XML).  This package
implements that layer from scratch:

- :mod:`repro.wire.serializer` -- varint/zig-zag primitives and a
  compact value serialiser;
- :mod:`repro.wire.framing` -- length-prefixed frames plus a streaming
  chunk reader that tolerates records split across chunk boundaries
  (the Hadoop deserialiser "must account for incomplete pairs at the end
  of each received chunk");
- :mod:`repro.wire.records` -- typed records: key/value pairs for
  map/reduce traffic and scored documents for search results.
"""

from repro.wire.framing import ChunkReassembler, frame, unframe_all
from repro.wire.records import (
    KeyValue,
    SearchResult,
    decode_kv_stream,
    decode_search_results,
    encode_kv_stream,
    encode_search_results,
)
from repro.wire.serializer import (
    WireError,
    read_bytes,
    read_float,
    read_string,
    read_varint,
    write_bytes,
    write_float,
    write_string,
    write_varint,
)

__all__ = [
    "WireError",
    "read_varint",
    "write_varint",
    "read_string",
    "write_string",
    "read_bytes",
    "write_bytes",
    "read_float",
    "write_float",
    "frame",
    "unframe_all",
    "ChunkReassembler",
    "KeyValue",
    "SearchResult",
    "encode_kv_stream",
    "decode_kv_stream",
    "encode_search_results",
    "decode_search_results",
]
