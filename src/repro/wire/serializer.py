"""Varint/zig-zag primitives and scalar codecs.

The encoding follows the scheme Kryo (and protobuf) use: unsigned
varints with 7 payload bits per byte, zig-zag mapping for signed
integers, length-prefixed UTF-8 strings and raw byte blobs, and IEEE-754
doubles for floats.  All readers take ``(buffer, offset)`` and return
``(value, new_offset)`` so they compose into streaming decoders.
"""

from __future__ import annotations

import struct
from typing import Tuple


class WireError(ValueError):
    """Raised on malformed or truncated wire data."""


_MAX_VARINT_BYTES = 10  # enough for 64-bit values


def write_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned varint."""
    if value < 0:
        raise WireError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(buffer: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode an unsigned varint; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    for i in range(_MAX_VARINT_BYTES):
        if offset + i >= len(buffer):
            raise WireError("truncated varint")
        byte = buffer[offset + i]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset + i + 1
        shift += 7
    raise WireError("varint longer than 10 bytes")


def write_signed(value: int) -> bytes:
    """Zig-zag encode a signed integer."""
    return write_varint((value << 1) ^ (value >> 63) if value >= 0
                        else ((-value) << 1) - 1)


def read_signed(buffer: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a zig-zag encoded signed integer."""
    raw, offset = read_varint(buffer, offset)
    return (raw >> 1) ^ -(raw & 1), offset


def write_bytes(data: bytes) -> bytes:
    """Length-prefixed byte blob."""
    return write_varint(len(data)) + data


def read_bytes(buffer: bytes, offset: int = 0) -> Tuple[bytes, int]:
    length, offset = read_varint(buffer, offset)
    end = offset + length
    if end > len(buffer):
        raise WireError("truncated byte blob")
    return bytes(buffer[offset:end]), end


def write_string(text: str) -> bytes:
    """Length-prefixed UTF-8 string."""
    return write_bytes(text.encode("utf-8"))


def read_string(buffer: bytes, offset: int = 0) -> Tuple[str, int]:
    raw, offset = read_bytes(buffer, offset)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise WireError(f"invalid UTF-8 in string: {exc}") from exc


def write_float(value: float) -> bytes:
    """IEEE-754 double, big-endian."""
    return struct.pack(">d", value)


def read_float(buffer: bytes, offset: int = 0) -> Tuple[float, int]:
    end = offset + 8
    if end > len(buffer):
        raise WireError("truncated float")
    return struct.unpack(">d", buffer[offset:end])[0], end
