"""Typed records carried by the wire format.

Two record families cover the paper's case studies:

- :class:`KeyValue` -- Hadoop-style key/value pairs (the agg box uses the
  application's SequenceFile-like codec, §3.2.1);
- :class:`SearchResult` -- Solr-style scored documents aggregated by the
  frontend's top-k merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.wire.serializer import (
    WireError,
    read_float,
    read_string,
    read_varint,
    write_float,
    write_string,
    write_varint,
)


@dataclass(frozen=True, order=True)
class KeyValue:
    """One map/reduce intermediate pair."""

    key: str
    value: int

    def encode(self) -> bytes:
        return write_string(self.key) + write_varint(self.value)

    @classmethod
    def decode(cls, buffer: bytes, offset: int = 0) -> Tuple["KeyValue", int]:
        key, offset = read_string(buffer, offset)
        value, offset = read_varint(buffer, offset)
        return cls(key, value), offset


@dataclass(frozen=True)
class SearchResult:
    """One scored document of a distributed search response."""

    doc_id: int
    score: float
    snippet: str = ""

    def encode(self) -> bytes:
        return (write_varint(self.doc_id) + write_float(self.score)
                + write_string(self.snippet))

    @classmethod
    def decode(cls, buffer: bytes, offset: int = 0
               ) -> Tuple["SearchResult", int]:
        doc_id, offset = read_varint(buffer, offset)
        score, offset = read_float(buffer, offset)
        snippet, offset = read_string(buffer, offset)
        return cls(doc_id, score, snippet), offset


def encode_kv_stream(pairs: List[KeyValue]) -> bytes:
    """Count-prefixed batch of key/value pairs."""
    out = bytearray(write_varint(len(pairs)))
    for pair in pairs:
        out += pair.encode()
    return bytes(out)


def decode_kv_stream(buffer: bytes) -> List[KeyValue]:
    count, offset = read_varint(buffer, 0)
    pairs = []
    for _ in range(count):
        pair, offset = KeyValue.decode(buffer, offset)
        pairs.append(pair)
    if offset != len(buffer):
        raise WireError(f"{len(buffer) - offset} trailing bytes in kv batch")
    return pairs


def encode_search_results(results: List[SearchResult]) -> bytes:
    """Count-prefixed batch of search results."""
    out = bytearray(write_varint(len(results)))
    for result in results:
        out += result.encode()
    return bytes(out)


def decode_search_results(buffer: bytes) -> List[SearchResult]:
    count, offset = read_varint(buffer, 0)
    results = []
    for _ in range(count):
        result, offset = SearchResult.decode(buffer, offset)
        results.append(result)
    if offset != len(buffer):
        raise WireError(
            f"{len(buffer) - offset} trailing bytes in result batch"
        )
    return results
