"""Strategy interface and shared planning helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.netsim.routing import EcmpRouter
from repro.netsim.simulator import FlowSpec
from repro.topology.base import Topology, link_id
from repro.workload.synthetic import AggJob, BackgroundFlow, Workload


class AggregationStrategy(ABC):
    """Turns jobs into segment flows over a concrete topology."""

    #: Short name used in figures/benchmark rows.
    name: str = "abstract"

    @abstractmethod
    def plan_job(
        self, job: AggJob, topo: Topology, router: EcmpRouter
    ) -> List[FlowSpec]:
        """Flow specs (with dependencies) realising ``job``."""

    def plan(
        self,
        workload: Workload,
        topo: Topology,
        router: Optional[EcmpRouter] = None,
    ) -> List[FlowSpec]:
        """Plan every job plus the background traffic."""
        router = router or EcmpRouter()
        specs: List[FlowSpec] = []
        for job in workload.jobs:
            specs.extend(self.plan_job(job, topo, router))
        specs.extend(plan_background(workload.background, topo, router))
        return specs


def plan_background(
    flows: Iterable[BackgroundFlow], topo: Topology, router: EcmpRouter
) -> List[FlowSpec]:
    """Point-to-point ECMP flows for the non-aggregatable traffic."""
    specs = []
    for flow in flows:
        path = router.choose(topo.equal_cost_paths(flow.src, flow.dst),
                             flow.flow_id)
        specs.append(FlowSpec(
            flow_id=flow.flow_id,
            size=flow.size,
            path=path,
            start_time=flow.start_time,
            kind="background",
            aggregatable=False,
        ))
    return specs


def ecmp_path(
    topo: Topology, router: EcmpRouter, src: str, dst: str, key: str
) -> Tuple[str, ...]:
    """One ECMP-selected shortest path between two endpoints."""
    return router.choose(topo.equal_cost_paths(src, dst), key)


def lane_links(nodes: Sequence[str]) -> Tuple[str, ...]:
    """Link ids along an explicit node sequence (a fixed routing lane)."""
    return tuple(link_id(a, b) for a, b in zip(nodes, nodes[1:]))


def worker_start_time(job: AggJob, worker_index: int) -> float:
    """Job start plus any straggler delay for this worker."""
    return job.start_time + job.delay_of(worker_index)
