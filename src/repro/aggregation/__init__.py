"""Aggregation strategies: how a partition/aggregation job's partial
results travel from workers to the master.

The paper compares four (§2.2, §4.1):

- ``rack`` -- rack-level aggregation: one server per rack collects the
  rack's partial results and ships the aggregate to the master;
- ``binary`` -- a d-ary tree of *servers* with d=2 (edge-based);
- ``chain`` -- the degenerate d=1 server tree;
- ``netagg`` -- on-path aggregation at agg boxes attached to switches.

Plus ``none`` (workers ship raw partial results straight to the master),
which we add as the no-aggregation reference.

A strategy turns a :class:`repro.workload.AggJob` into
:class:`repro.netsim.FlowSpec` segment flows with streaming dependencies;
every aggregation point forwards ``alpha`` times the bytes it receives
(the paper's aggregation output ratio, applied per hop: "only a fraction
of the incoming traffic is forwarded at each hop").
"""

from repro.aggregation.base import AggregationStrategy, plan_background
from repro.aggregation.edge import (
    BinaryTreeStrategy,
    ChainStrategy,
    DAryTreeStrategy,
    NoAggregationStrategy,
    RackLevelStrategy,
)
from repro.aggregation.onpath import (
    NetAggStrategy,
    deploy_boxes,
    deploy_box_budget,
)

__all__ = [
    "AggregationStrategy",
    "plan_background",
    "NoAggregationStrategy",
    "RackLevelStrategy",
    "DAryTreeStrategy",
    "BinaryTreeStrategy",
    "ChainStrategy",
    "NetAggStrategy",
    "deploy_boxes",
    "deploy_box_budget",
]
