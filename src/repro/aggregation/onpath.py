"""NetAgg's on-path aggregation strategy (§2.3, §3.1).

Partial results are redirected to the *first agg box along the network
path* from each worker to the master; boxes form a spanning aggregation
tree rooted at the master.  Tree construction (lanes, box assignment,
scale-out balancing, multiple disjoint trees) lives in
:class:`repro.core.tree.TreeBuilder`, shared with the functional
platform; this module maps the resulting trees onto flow specs for the
flow-level simulator.

Output sizes follow the saturating-dictionary model (DESIGN.md): a box
whose subtree received ``I`` bytes forwards ``min(I, alpha * R_tree)``
where ``R_tree`` is the raw intermediate data of this tree's key share.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.aggregation.base import (
    AggregationStrategy,
    lane_links,
    worker_start_time,
)
from repro.core.failure import rewire_failed_box
from repro.core.tree import AggregationTree, TreeBuilder
from repro.netsim.routing import EcmpRouter
from repro.netsim.simulator import FlowSpec
from repro.topology.base import AGGR, CORE, TOR, Topology
from repro.units import Gbps
from repro.workload.synthetic import AggJob


class NetAggStrategy(AggregationStrategy):
    """On-path aggregation at agg boxes attached to switches.

    ``straggler_bypass`` implements §3.1's straggler handling: a worker
    whose start delay exceeds the threshold ships its partial result
    *directly to the master* instead of through the tree ("the agg box
    just aggregates available results, while the rest is sent directly
    to the reducer"), so one late worker does not hold the whole tree's
    aggregate hostage.

    ``fault_view`` implements §3.1's failure handling at plan time: a
    callable ``job -> iterable of failed box ids``; each named box is
    rewired out of the job's trees (children adopted by its parent,
    lanes joined) before flows are emitted, so jobs planned after a
    crash route around the dead box.  Crashes landing *mid-job* are the
    business of :class:`repro.faults.SimFaultInjector`'s reroute events.
    """

    def __init__(self, name: str = "netagg",
                 straggler_bypass: float = 0.2,
                 fault_view: Optional[
                     Callable[[AggJob], Iterable[str]]] = None) -> None:
        if straggler_bypass <= 0:
            raise ValueError("straggler_bypass must be positive")
        self.name = name
        self.straggler_bypass = straggler_bypass
        self.fault_view = fault_view

    def plan_job(self, job: AggJob, topo: Topology,
                 router: EcmpRouter) -> List[FlowSpec]:
        builder = TreeBuilder(topo)
        trees = builder.build_many(
            job.job_id, job.master, [h for h, _ in job.workers], job.n_trees
        )
        if self.fault_view is not None:
            failed = sorted(set(self.fault_view(job)))
            for i, tree in enumerate(trees):
                for box_id in failed:
                    if box_id in tree.boxes:
                        tree = rewire_failed_box(tree, box_id)
                trees[i] = tree
        specs: List[FlowSpec] = []
        for tree in trees:
            specs.extend(self._tree_flows(job, tree, topo, builder))
        return specs

    def _tree_flows(self, job: AggJob, tree: AggregationTree,
                    topo: Topology, builder: TreeBuilder) -> List[FlowSpec]:
        share = 1.0 / job.n_trees
        prefix = f"{job.job_id}:t{tree.tree_index}"
        master_pod = topo.pod_of(job.master)
        specs: List[FlowSpec] = []

        # Worker segments: raw partial results into the entry box; or
        # straight to the master when no box sits on the path, or when
        # the worker straggles past the bypass threshold (§3.1: boxes
        # aggregate available results, stragglers go direct).
        bypassed = set()
        for index, (host, size) in enumerate(job.workers):
            flow_id = f"{prefix}:w{index}"
            start = worker_start_time(job, index)
            entry = tree.worker_entry[index]
            if entry is not None and \
                    job.delay_of(index) > self.straggler_bypass:
                bypassed.add(index)
                entry = None
            if entry is None:
                # Full switch lane from the worker to the master.
                lane = tuple(builder.lane(job.job_id, tree.tree_index,
                                          host, tree.master_tor,
                                          master_pod))
                path = lane_links((host,) + lane + (job.master,))
            else:
                lane = tree.worker_lane[index]
                info = tree.boxes[entry].info
                path = lane_links((host,) + lane) + (
                    info.downlink, info.proc_link,
                )
            specs.append(FlowSpec(
                flow_id=flow_id,
                size=size * share,
                path=path,
                start_time=start,
                job_id=job.job_id,
                kind="worker",
                aggregatable=True,
            ))

        # Box segments, children before parents.
        dictionary = job.alpha * job.total_bytes * share
        outputs: Dict[str, float] = {}

        def emit(box_id: str) -> float:
            if box_id in outputs:
                return outputs[box_id]
            vertex = tree.boxes[box_id]
            fed_by = [w for w in vertex.direct_workers
                      if w not in bypassed]
            inflow = sum(job.workers[w][1] * share for w in fed_by)
            children = [f"{prefix}:w{w}" for w in fed_by]
            for child in vertex.children:
                inflow += emit(child)
                children.append(f"{prefix}:b:{child}")
            out_bytes = min(inflow, dictionary)
            outputs[box_id] = out_bytes
            if vertex.parent is not None:
                parent = tree.boxes[vertex.parent]
                path = (
                    (vertex.info.uplink,)
                    + lane_links(vertex.lane_to_parent)
                    + (parent.info.downlink, parent.info.proc_link)
                )
                kind = "internal"
            else:
                path = (
                    (vertex.info.uplink,)
                    + lane_links(vertex.lane_to_parent)
                    + (f"{tree.master_tor}->{job.master}",)
                )
                kind = "result"
            specs.append(FlowSpec(
                flow_id=f"{prefix}:b:{box_id}",
                size=out_bytes,
                path=path,
                start_time=job.start_time,
                job_id=job.job_id,
                kind=kind,
                aggregatable=True,
                children=tuple(children),
            ))
            return out_bytes

        for box_id in sorted(tree.boxes):
            if tree.boxes[box_id].parent is None:
                emit(box_id)
        if len(outputs) != len(tree.boxes):
            missing = sorted(set(tree.boxes) - set(outputs))
            raise RuntimeError(
                f"aggregation tree of {job.job_id!r} is not rooted: {missing}"
            )
        return specs


def deploy_boxes(
    topo: Topology,
    tiers: Sequence[str] = (TOR, AGGR, CORE),
    link_rate: float = Gbps(10.0),
    proc_rate: float = Gbps(9.2),
    boxes_per_switch: int = 1,
) -> int:
    """Attach agg boxes to every switch of the given tiers.

    Returns the number of boxes deployed.  Defaults reproduce the paper's
    full deployment (one box per switch, 10 Gbps links, 9.2 Gbps
    processing -- the prototype's measured rate).
    """
    deployed = 0
    for tier in tiers:
        for switch in topo.switches(tier):
            topo.attach_aggbox(switch, link_rate=link_rate,
                               proc_rate=proc_rate, count=boxes_per_switch)
            deployed += boxes_per_switch
    return deployed


def deploy_box_budget(
    topo: Topology,
    budget: int,
    tiers: Sequence[str],
    link_rate: float = Gbps(10.0),
    proc_rate: float = Gbps(9.2),
) -> List[str]:
    """Deploy a fixed number of boxes uniformly across the given tiers.

    Used by Fig. 12's fixed-budget comparison (e.g. 8 boxes at the core
    tier vs. spread over the aggregation tier vs. both).  Switches are
    filled round-robin tier by tier, wrapping within a tier when the
    budget exceeds its switch count (multiple boxes per switch).

    Returns the switch ids that received a box (with repetition).
    """
    if budget < 1:
        raise ValueError("box budget must be >= 1")
    switches: List[str] = []
    for tier in tiers:
        switches.extend(sorted(topo.switches(tier)))
    if not switches:
        raise ValueError(f"no switches in tiers {tiers!r}")
    placed = []
    for i in range(budget):
        switch = switches[i % len(switches)]
        topo.attach_aggbox(switch, link_rate=link_rate, proc_rate=proc_rate,
                           count=1)
        placed.append(switch)
    return placed
