"""Edge-based aggregation strategies (§2.2): the paper's baselines.

All of these aggregate at *worker servers*, so internal tree nodes spend
edge-link bandwidth (both inbound and outbound) on aggregation traffic --
the fundamental drawback NetAgg removes.

Aggregation output sizes follow the *saturating dictionary* model (see
DESIGN.md): an aggregation point that received ``I`` bytes over the
network and holds ``L`` bytes of local partial results forwards
``min(I + L, alpha * R_job)`` bytes, ``R_job`` being the job's total raw
intermediate data.  Leaf workers forward their raw partial results
unchanged (workers do not pre-reduce -- their output *is* the partial
result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.aggregation.base import (
    AggregationStrategy,
    ecmp_path,
    worker_start_time,
)
from repro.netsim.routing import EcmpRouter
from repro.netsim.simulator import FlowSpec
from repro.topology.base import Topology
from repro.workload.synthetic import AggJob


@dataclass
class _Member:
    """One worker of a job, with its position for delay lookup."""

    index: int
    host: str
    size: float


def _members_by_rack(job: AggJob, topo: Topology) -> Dict[int, List[_Member]]:
    racks: Dict[int, List[_Member]] = {}
    for index, (host, size) in enumerate(job.workers):
        if host == job.master:
            raise ValueError(
                f"job {job.job_id!r}: master {host!r} cannot be a worker"
            )
        racks.setdefault(topo.rack_of(host), []).append(
            _Member(index, host, size)
        )
    for members in racks.values():
        members.sort(key=lambda m: m.host)
    return racks


def _node_output(job: AggJob, local: float, inflow: float,
                 children: Tuple[str, ...]) -> float:
    """Bytes a tree node forwards upstream (see module docstring)."""
    if not children:
        return local
    return min(inflow + local, job.alpha * job.total_bytes)


class NoAggregationStrategy(AggregationStrategy):
    """Every worker ships its raw partial result straight to the master."""

    name = "none"

    def plan_job(self, job: AggJob, topo: Topology,
                 router: EcmpRouter) -> List[FlowSpec]:
        specs = []
        for index, (host, size) in enumerate(job.workers):
            if host == job.master:
                raise ValueError(
                    f"job {job.job_id!r}: master {host!r} cannot be a worker"
                )
            flow_id = f"{job.job_id}:w{index}"
            specs.append(FlowSpec(
                flow_id=flow_id,
                size=size,
                path=ecmp_path(topo, router, host, job.master, flow_id),
                start_time=worker_start_time(job, index),
                job_id=job.job_id,
                kind="worker",
                aggregatable=True,
            ))
        return specs


class RackLevelStrategy(AggregationStrategy):
    """One aggregator server per rack, then rack aggregates to the master.

    The aggregator is the rack's first worker (deterministic choice); its
    own partial result needs no network hop.  The rack aggregate is
    ``alpha * (sum of the rack's raw partial results)`` -- unless the rack
    holds a single worker, in which case nothing can be merged and the raw
    partial result travels to the master unchanged.
    """

    name = "rack"

    def plan_job(self, job: AggJob, topo: Topology,
                 router: EcmpRouter) -> List[FlowSpec]:
        specs = []
        for rack, members in sorted(_members_by_rack(job, topo).items()):
            aggregator = members[0]
            children = []
            inflow = 0.0
            for member in members[1:]:
                flow_id = f"{job.job_id}:w{member.index}"
                children.append(flow_id)
                inflow += member.size
                specs.append(FlowSpec(
                    flow_id=flow_id,
                    size=member.size,
                    path=ecmp_path(topo, router, member.host,
                                   aggregator.host, flow_id),
                    start_time=worker_start_time(job, member.index),
                    job_id=job.job_id,
                    kind="worker",
                    aggregatable=True,
                ))
            result_id = f"{job.job_id}:r{rack}"
            specs.append(FlowSpec(
                flow_id=result_id,
                size=_node_output(job, aggregator.size, inflow,
                                  tuple(children)),
                path=ecmp_path(topo, router, aggregator.host,
                               job.master, result_id),
                start_time=worker_start_time(job, aggregator.index),
                job_id=job.job_id,
                kind="result",
                aggregatable=True,
                children=tuple(children),
            ))
        return specs


class DAryTreeStrategy(AggregationStrategy):
    """Generalised edge-based aggregation: a d-ary tree of servers.

    Workers are arranged into a d-ary tree *within each rack first and
    then progressively across racks* (§2.2): rack-local trees aggregate
    intra-rack, rack roots form a second d-ary tree across racks, and the
    global root ships the final aggregate to the master.  Internal nodes
    are worker servers, so their inbound edge links carry aggregation
    traffic -- the cost the paper highlights for small d.
    """

    def __init__(self, d: int, name: Optional[str] = None) -> None:
        if d < 1:
            raise ValueError("tree arity d must be >= 1")
        self.d = d
        self.name = name or f"d{d}-tree"

    def plan_job(self, job: AggJob, topo: Topology,
                 router: EcmpRouter) -> List[FlowSpec]:
        specs: List[FlowSpec] = []
        # Stage 1: an intra-rack d-ary heap tree per rack.
        rack_state: List[List] = []  # [root member, inflow, child flow ids]
        for _rack, members in sorted(_members_by_rack(job, topo).items()):
            root, inflow, children = self._plan_rack_tree(
                job, topo, router, specs, members
            )
            rack_state.append([root, inflow, list(children)])

        # Stage 2: a d-ary heap tree across the rack roots.  Deepest
        # positions send first so every node has its full inflow (rack
        # tree + cross-rack children) before producing its aggregate.
        for pos in range(len(rack_state) - 1, 0, -1):
            parent = (pos - 1) // self.d
            member, inflow, children = rack_state[pos]
            flow_id = f"{job.job_id}:x{pos}"
            out_bytes = _node_output(job, member.size, inflow,
                                     tuple(children))
            specs.append(FlowSpec(
                flow_id=flow_id,
                size=out_bytes,
                path=ecmp_path(topo, router, member.host,
                               rack_state[parent][0].host, flow_id),
                start_time=worker_start_time(job, member.index),
                job_id=job.job_id,
                kind="internal" if children else "worker",
                aggregatable=True,
                children=tuple(children),
            ))
            rack_state[parent][1] += out_bytes
            rack_state[parent][2].append(flow_id)

        member, inflow, children = rack_state[0]
        result_id = f"{job.job_id}:res"
        specs.append(FlowSpec(
            flow_id=result_id,
            size=_node_output(job, member.size, inflow,
                              tuple(children)),
            path=ecmp_path(topo, router, member.host, job.master, result_id),
            start_time=worker_start_time(job, member.index),
            job_id=job.job_id,
            kind="result",
            aggregatable=True,
            children=tuple(children),
        ))
        return specs

    def _plan_rack_tree(
        self,
        job: AggJob,
        topo: Topology,
        router: EcmpRouter,
        specs: List[FlowSpec],
        members: List[_Member],
    ) -> Tuple[_Member, float, Tuple[str, ...]]:
        """Emit one rack's tree; returns (root, root inflow, child ids)."""
        inflow = [0.0] * len(members)
        child_flows: List[List[str]] = [[] for _ in members]
        # Heap layout: node i's parent is (i - 1) // d; leaves first.
        for i in range(len(members) - 1, 0, -1):
            parent = (i - 1) // self.d
            out_bytes = _node_output(job, members[i].size, inflow[i],
                                     tuple(child_flows[i]))
            flow_id = f"{job.job_id}:i{members[i].index}"
            specs.append(FlowSpec(
                flow_id=flow_id,
                size=out_bytes,
                path=ecmp_path(topo, router, members[i].host,
                               members[parent].host, flow_id),
                start_time=worker_start_time(job, members[i].index),
                job_id=job.job_id,
                kind="internal" if child_flows[i] else "worker",
                aggregatable=True,
                children=tuple(child_flows[i]),
            ))
            inflow[parent] += out_bytes
            child_flows[parent].append(flow_id)
        return members[0], inflow[0], tuple(child_flows[0])


class ChainStrategy(DAryTreeStrategy):
    """The degenerate d=1 tree: a chain of servers (§2.2)."""

    def __init__(self) -> None:
        super().__init__(d=1, name="chain")


class BinaryTreeStrategy(DAryTreeStrategy):
    """The d=2 server tree the paper calls ``binary``."""

    def __init__(self) -> None:
        super().__init__(d=2, name="binary")
