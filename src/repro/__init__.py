"""repro -- a reproduction of NetAgg (CoNEXT 2014).

NetAgg is a software middlebox platform that performs application-specific
*on-path aggregation* of partition/aggregation traffic in data centres.
This package rebuilds the whole system in Python:

- :mod:`repro.netsim` -- a flow-level discrete-event network simulator with
  exact max-min fair bandwidth sharing (the paper's OMNeT++ substitute);
- :mod:`repro.topology` -- three-tier multi-rooted and fat-tree DC
  topologies with agg-box attachment points;
- :mod:`repro.aggregation` -- aggregation strategies (rack-level, d-ary
  edge trees, NetAgg on-path, partial deployments and scale-out);
- :mod:`repro.core` -- the NetAgg platform itself: aggregation trees over
  agg boxes, shim layers, failure and straggler handling;
- :mod:`repro.aggbox` -- the agg-box runtime: aggregation tasks, pipelined
  local aggregation trees, cooperative scheduling with adaptive weighted
  fair queuing;
- :mod:`repro.wire` -- the binary serialisation and framing layer;
- :mod:`repro.apps` -- the two case-study applications, a distributed
  search engine (mini-Solr) and a map/reduce framework (mini-Hadoop);
- :mod:`repro.cluster` -- a deterministic emulator of the paper's
  34-server testbed;
- :mod:`repro.workload` -- synthetic DC workload generation;
- :mod:`repro.cost` -- the deployment cost model of the feasibility study;
- :mod:`repro.faults` -- deterministic fault schedules and the per-layer
  injectors (simulator, platform, emulator) plus the shim retry policy;
- :mod:`repro.experiments` -- one module per paper figure/table.
"""

__version__ = "1.0.0"

from repro.faults import (
    EmulatorFaultInjector,
    FaultEvent,
    FaultSchedule,
    PlatformFaultInjector,
    RetryPolicy,
    SimFaultInjector,
)
from repro.units import GB, KB, MB, Gbps, Mbps

__all__ = [
    "Gbps", "Mbps", "KB", "MB", "GB", "__version__",
    "FaultSchedule", "FaultEvent", "RetryPolicy",
    "SimFaultInjector", "PlatformFaultInjector", "EmulatorFaultInjector",
    "simulate", "SimScale", "QUICK", "BENCH", "DEFAULT", "PAPER",
]

_EXPERIMENT_EXPORTS = {
    "simulate", "SimScale", "QUICK", "BENCH", "DEFAULT", "PAPER",
}


def __getattr__(name: str):
    # The experiment runner and scale presets are re-exported lazily:
    # importing them eagerly would pull the whole simulator stack (and
    # its strategy modules, which import this package) at import time.
    if name in _EXPERIMENT_EXPORTS:
        import repro.experiments as experiments

        return getattr(experiments, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
