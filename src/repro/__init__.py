"""repro -- a reproduction of NetAgg (CoNEXT 2014).

NetAgg is a software middlebox platform that performs application-specific
*on-path aggregation* of partition/aggregation traffic in data centres.
This package rebuilds the whole system in Python:

- :mod:`repro.netsim` -- a flow-level discrete-event network simulator with
  exact max-min fair bandwidth sharing (the paper's OMNeT++ substitute);
- :mod:`repro.topology` -- three-tier multi-rooted and fat-tree DC
  topologies with agg-box attachment points;
- :mod:`repro.aggregation` -- aggregation strategies (rack-level, d-ary
  edge trees, NetAgg on-path, partial deployments and scale-out);
- :mod:`repro.core` -- the NetAgg platform itself: aggregation trees over
  agg boxes, shim layers, failure and straggler handling;
- :mod:`repro.aggbox` -- the agg-box runtime: aggregation tasks, pipelined
  local aggregation trees, cooperative scheduling with adaptive weighted
  fair queuing;
- :mod:`repro.wire` -- the binary serialisation and framing layer;
- :mod:`repro.apps` -- the two case-study applications, a distributed
  search engine (mini-Solr) and a map/reduce framework (mini-Hadoop);
- :mod:`repro.cluster` -- a deterministic emulator of the paper's
  34-server testbed;
- :mod:`repro.workload` -- synthetic DC workload generation;
- :mod:`repro.cost` -- the deployment cost model of the feasibility study;
- :mod:`repro.faults` -- deterministic fault schedules and the per-layer
  injectors (simulator, platform, emulator) plus the shim retry policy;
- :mod:`repro.experiments` -- one module per paper figure/table;
- :mod:`repro.serve` -- the live multi-tenant serving layer
  (``python -m repro serve`` / ``loadgen``).

The *stable public surface* is ``repro.__all__`` -- everything the CLI,
benchmarks and downstream scripts are meant to reach from the top
level.  Anything else (per-layer fault injectors, simulator internals,
wire records, ...) is importable from its own submodule but is not part
of the compatibility contract; ``tests/test_public_api.py`` pins the
surface and fails when an internal name leaks to the top level.
"""

__version__ = "1.0.0"

from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.units import GB, KB, MB, Gbps, Mbps

#: The stable public API, grouped: units, faults, platform, the
#: experiment registry + scales, and the serving layer.  Heavy names
#: resolve lazily through ``__getattr__`` (see ``_LAZY_EXPORTS``).
__all__ = [
    "__version__",
    # units
    "Gbps", "Mbps", "KB", "MB", "GB",
    # fault schedules and the shim retry policy
    "FaultSchedule", "FaultEvent", "RetryPolicy",
    # the NetAgg platform
    "NetAggPlatform",
    # experiment registry and scale presets
    "ExperimentResult", "all_experiments", "load", "resolve",
    "simulate", "SimScale", "QUICK", "BENCH", "DEFAULT", "PAPER",
    # the serving layer
    "AggregationService", "ServeConfig", "TenantPolicy",
    "OpenLoopParams", "run_loadgen", "serve_forever",
]

#: Lazily re-exported names -> defining module.  Importing these
#: eagerly would pull the whole simulator / platform / asyncio serving
#: stack (whose strategy modules import this package) at import time.
_LAZY_EXPORTS = {
    "NetAggPlatform": "repro.core.platform",
    "ExperimentResult": "repro.experiments",
    "all_experiments": "repro.experiments",
    "load": "repro.experiments",
    "resolve": "repro.experiments",
    "simulate": "repro.experiments",
    "SimScale": "repro.experiments",
    "QUICK": "repro.experiments",
    "BENCH": "repro.experiments",
    "DEFAULT": "repro.experiments",
    "PAPER": "repro.experiments",
    "AggregationService": "repro.serve",
    "ServeConfig": "repro.serve",
    "TenantPolicy": "repro.serve",
    "run_loadgen": "repro.serve",
    "serve_forever": "repro.serve",
    "OpenLoopParams": "repro.workload.openloop",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
