"""Table 1 -- application-specific code needed to run on NetAgg.

The paper's point: supporting an application takes a few hundred lines
(serialiser, aggregation wrapper, shim glue), a fraction of both NetAgg
and the application.  We count the same split over this repository's
app-specific modules with a comment/blank-stripping line counter.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple

import repro
from repro.experiments import register
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale

_REPO_SRC = pathlib.Path(repro.__file__).parent

#: (application, role) -> module paths relative to the package root.
APP_SPECIFIC: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("solr", "box serialisation + wrapper"): ("apps/solr/functions.py",),
    ("solr", "application"): (
        "apps/solr/index.py", "apps/solr/backend.py",
        "apps/solr/frontend.py", "apps/solr/corpus.py",
        "apps/solr/query.py",
    ),
    ("hadoop", "box serialisation + wrapper"): (
        "wire/records.py",  # the KeyValue codec the box reuses
    ),
    ("hadoop", "application"): (
        "apps/hadoop/engine.py", "apps/hadoop/job.py",
        "apps/hadoop/benchmarks.py", "apps/hadoop/data.py",
        "apps/hadoop/pagerank.py",
    ),
}

#: The platform itself (for the "relative to NetAgg code base" row).
PLATFORM_PACKAGES = ("core", "aggbox", "wire", "netsim", "topology",
                     "aggregation")


def count_loc(path: pathlib.Path) -> int:
    """Non-blank, non-comment source lines (docstrings excluded)."""
    lines = path.read_text(encoding="utf-8").splitlines()
    count = 0
    in_docstring = False
    for raw in lines:
        line = raw.strip()
        if in_docstring:
            if line.endswith('"""') or line.endswith("'''"):
                in_docstring = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            quote = line[:3]
            if not (len(line) > 3 and line.endswith(quote)):
                in_docstring = True
            continue
        if not line or line.startswith("#"):
            continue
        count += 1
    return count


def count_package(package: str) -> int:
    total = 0
    for path in sorted((_REPO_SRC / package).rglob("*.py")):
        total += count_loc(path)
    return total


@register("tab01")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    # Line counting has no scale or randomness; both arguments exist
    # only to satisfy the canonical experiment signature.
    del scale, seed
    return _count()


def _count() -> ExperimentResult:
    result = ExperimentResult(
        experiment="tab01",
        description="lines of application-specific code",
        columns=("application", "role", "loc"),
    )
    platform_loc = sum(count_package(p) for p in PLATFORM_PACKAGES)
    totals: Dict[str, int] = {}
    app_totals: Dict[str, int] = {}
    for (app, role), modules in sorted(APP_SPECIFIC.items()):
        loc = sum(count_loc(_REPO_SRC / m) for m in modules)
        if role != "application":
            totals[app] = totals.get(app, 0) + loc
        else:
            app_totals[app] = loc
        result.add_row(application=app, role=role, loc=loc)
    for app in sorted(totals):
        result.add_row(
            application=app,
            role="plugin total / platform %",
            loc=round(100.0 * totals[app] / platform_loc, 1),
        )
        result.add_row(
            application=app,
            role="plugin total / application %",
            loc=round(100.0 * totals[app] / app_totals[app], 1),
        )
    result.notes = f"platform LoC = {platform_loc}"
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
