"""Fig. 9 -- CDF of per-link traffic (α = 10%).

The mechanism behind Fig. 8's crossover: edge trees put aggregation
traffic on *worker* links.  Paper measurement: at α=10% chain's median
link traffic is ~4x rack's (binary ~2.5x); NetAgg's stays at or below
rack's because boxes absorb the fan-in.
"""

from __future__ import annotations

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    NetAggStrategy,
    RackLevelStrategy,
    deploy_boxes,
)
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.units import MB, percentile

STRATEGIES = (
    (RackLevelStrategy(), None),
    (BinaryTreeStrategy(), None),
    (ChainStrategy(), None),
    (NetAggStrategy(), deploy_boxes),
)


@register("fig09")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig09",
        description="per-link carried traffic (MB) at alpha=10%",
        columns=("strategy", "median_mb", "p90_mb", "total_gb",
                 "median_vs_rack"),
    )
    rack_median = None
    for strategy, deploy in STRATEGIES:
        sim = simulate(scale, strategy, deploy=deploy, seed=seed)
        traffic = list(sim.link_traffic(wire_only=True).values())
        median = percentile(traffic, 50.0)
        if rack_median is None:
            rack_median = median
        result.add_row(
            strategy=strategy.name,
            median_mb=median / MB,
            p90_mb=percentile(traffic, 90.0) / MB,
            total_gb=sum(traffic) / 1e9,
            median_vs_rack=median / rack_median if rack_median else 0.0,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
