"""Fig. 19 -- throughput vs backends per rack, one vs two racks.

Two racks, one agg box each, two Solr deployments: aggregate throughput
doubles because each box serves its own rack's backends -- NetAgg
operates at larger scale by adding boxes with the racks.
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.solr_driver import SolrEmulation, SolrEmulationParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)

BACKENDS_PER_RACK = (2, 4, 6, 8, 10)

_QUICK = dict(backends=(4, 10), duration=5.0)


@register("fig19")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig19_solr_tworack.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(backends=BACKENDS_PER_RACK, duration: float = 10.0,
           n_clients: int = 70) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig19",
        description="NetAgg throughput (Gbps) vs backends per rack",
        columns=("backends_per_rack", "one_rack_gbps", "two_racks_gbps"),
    )
    for n_backends in backends:
        one = SolrEmulation(
            TestbedConfig(racks=1, backends_per_rack=n_backends),
            SolrEmulationParams(n_clients=n_clients, duration=duration,
                                use_netagg=True),
        ).run()
        two = SolrEmulation(
            TestbedConfig(racks=2, backends_per_rack=n_backends),
            SolrEmulationParams(n_clients=2 * n_clients, duration=duration,
                                use_netagg=True),
        ).run()
        result.add_row(
            backends_per_rack=n_backends,
            one_rack_gbps=one.throughput_gbps,
            two_racks_gbps=two.throughput_gbps,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
