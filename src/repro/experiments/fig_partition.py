"""fig_partition -- availability and completeness under partitions.

Not a paper figure: the partition-tolerance face of the robustness
plane (PR 8).  A fixed stream of query requests -- coordinators pinned
to pod 0, the control pod, workers spread uniformly -- replays against
a live :class:`repro.serve.AggregationService` while a sweep of
``net-partition`` fault domains cuts a growing fraction of the pods
off, and one pod-0 box runs *gray* (heartbeat-healthy, two orders of
magnitude slow) for the whole run.  Two arms per severity:

- ``base``: no :class:`repro.core.partition.PartitionPolicy` -- the
  fail-stop baseline.  A request with any worker behind the partition
  is a 503, and deliveries into the gray box are waited out in full
  (the heartbeat machinery cannot see it);
- ``resil``: partial delivery, hedged sends and gray avoidance on.
  Unreachable workers are dropped and answered as 206 with a
  completeness record (gated by the tenant's ``min_completeness``
  floor), and the gray box is raced against the hedge deadline, then
  planned out once the latency-outlier detector flags it.

Availability counts requests *answered* (200 or 206) within the SLO
over requests offered.  The claim: at moderate severity (one pod of
four cut) the resilient arm stays >= 0.95 available while the
fail-stop baseline drops below 0.6; completeness degrades smoothly
with severity and is never mislabelled (the 206 bodies carry exact
missing-worker sets, pinned by the chaos suite).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.partition import PartitionPolicy
from repro.experiments import register
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale
from repro.faults import (
    BOX_GRAY,
    FaultEvent,
    FaultSchedule,
    NET_PARTITION,
)
from repro.serve.service import (
    AggregationService,
    ServeConfig,
    TenantPolicy,
)
from repro.serve.stats import STATUS_OK, STATUS_PARTIAL
from repro.topology.base import HOST
from repro.units import percentile
from repro.workload.openloop import OP_QUERY, pick_endpoints

#: Fraction of the topology's pods cut off by the partition.
SEVERITIES = (0.0, 0.25, 0.5)

#: End-to-end latency SLO (virtual seconds).
SLO = 0.25

#: Workers per request.
WORKERS = 8

#: Slow-down factor of the gray pod-0 box: one delivery waited out in
#: full (0.4s at the default 1ms send latency) blows the SLO, a hedged
#: one does not.
GRAY_SEVERITY = 400.0

#: Requests replayed per (severity, arm) point, by scale name.
_REQUESTS = {"quick": 40, "bench": 60}
_REQUESTS_DEFAULT = 100


@register("fig_partition")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        severities: Sequence[float] = SEVERITIES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig_partition",
        description="availability and completeness vs partition "
                    "severity, fail-stop baseline (base) vs partial "
                    "delivery + hedging (resil)",
        columns=("severity", "pods_cut", "base_avail", "resil_avail",
                 "resil_206", "mean_completeness", "hedges",
                 "base_p99", "resil_p99"),
        notes=f"availability = answered (200/206) within the {SLO:g}s "
              "SLO / offered; coordinators pinned to pod 0; one pod-0 "
              f"box gray (x{GRAY_SEVERITY:g}) throughout; completeness "
              "averaged over answered requests",
    )
    n_requests = _REQUESTS.get(scale.name, _REQUESTS_DEFAULT)
    probe = AggregationService(ServeConfig(topo=scale.topo))
    topo = probe.platform.topology
    hosts = sorted(topo.hosts())
    pod_of = {n.node_id: n.pod for n in topo.nodes(HOST)}
    seeds = _pod0_seeds(hosts, pod_of, n_requests, start=seed)
    gray_box = _pod0_box(topo)
    n_pods = scale.topo.n_pods
    for severity in sorted(severities):
        pods_cut = round(severity * n_pods)
        schedule = _schedule(n_pods, pods_cut, gray_box)
        base = _arm(scale, schedule, seeds, policy=None)
        resil = _arm(scale, schedule, seeds, policy=PartitionPolicy())
        result.add_row(
            severity=severity,
            pods_cut=pods_cut,
            base_avail=base["avail"],
            resil_avail=resil["avail"],
            resil_206=resil["partial"],
            mean_completeness=resil["completeness"],
            hedges=resil["hedges"],
            base_p99=base["p99"],
            resil_p99=resil["p99"],
        )
    return result


def _pod0_seeds(hosts: Sequence[str], pod_of: Dict[str, int],
                count: int, start: int = 1) -> List[int]:
    """Payload seeds whose master lands in pod 0 (the control pod).

    Coordinators live in the un-partitioned pod by construction -- the
    experiment measures worker-subtree partitions, not a dead master.
    """
    seeds: List[int] = []
    candidate = start
    while len(seeds) < count:
        master, _ = pick_endpoints(hosts, candidate, WORKERS)
        if pod_of[master] == 0:
            seeds.append(candidate)
        candidate += 1
    return seeds


def _pod0_box(topo) -> str:
    """The first agg box attached in pod 0 (the gray victim)."""
    for info in sorted(topo.all_boxes(), key=lambda b: b.box_id):
        if topo.pod_of(info.box_id) == 0:
            return info.box_id
    raise RuntimeError("no agg box deployed in pod 0")


def _schedule(n_pods: int, pods_cut: int, gray_box: str) -> FaultSchedule:
    """Partition the highest-numbered ``pods_cut`` pods, gray one box.

    ``duration=0`` makes the partitions permanent (the sweep measures
    steady-state severity, not heal dynamics -- the chaos suite covers
    healing).
    """
    events = [
        FaultEvent(time=0.5, kind=NET_PARTITION, target=f"pod:{pod}",
                   duration=0.0)
        for pod in range(n_pods - pods_cut, n_pods)
    ]
    events.append(FaultEvent(time=0.5, kind=BOX_GRAY, target=gray_box,
                             duration=1e9, severity=GRAY_SEVERITY))
    return FaultSchedule(events)


def _arm(scale: SimScale, schedule: FaultSchedule,
         seeds: Sequence[int], policy) -> Dict[str, float]:
    service = AggregationService(ServeConfig(
        topo=scale.topo,
        default_policy=TenantPolicy(slo=SLO),
        admission=False,
        faults=schedule,
        partition=policy,
    ))
    service.platform.advance_clock(1.0)
    answered: List[Tuple[float, float]] = []  # (latency, completeness)
    hedges = 0
    for i, payload_seed in enumerate(seeds):
        response = service.handle({
            "op": OP_QUERY, "tenant": "tenant-a", "id": f"r{i}",
            "payload_seed": payload_seed, "workers": WORKERS,
        })
        hedges += int(response.get("hedges", 0))
        if response["status"] in (STATUS_OK, STATUS_PARTIAL):
            completeness = response.get("completeness", {})
            answered.append((
                float(response["latency"]),
                float(completeness.get("fraction", 1.0)),
            ))
    within = [lat for lat, _ in answered if lat <= SLO]
    latencies = [lat for lat, _ in answered]
    partial = service.report.stats("tenant-a").partial
    return {
        "avail": len(within) / len(seeds) if seeds else 0.0,
        "partial": partial / len(seeds) if seeds else 0.0,
        "completeness": (sum(f for _, f in answered) / len(answered)
                         if answered else 0.0),
        "hedges": float(hedges),
        "p99": percentile(latencies, 99.0) if latencies else 0.0,
    }
