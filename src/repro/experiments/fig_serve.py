"""fig_serve -- per-tenant goodput and p99 vs offered load.

Not a paper figure: the serving-layer face of multi-tenant overload
(PR 7).  An open-loop, Zipfian-tenant arrival stream
(:mod:`repro.workload.openloop`) replays against a live
:class:`repro.serve.AggregationService` at multiples of the
deployment's estimated capacity, in two arms per load point:

- ``adm``: per-tenant admission on -- each tenant gets an equal token
  budget summing to ``ADMIT_FRACTION`` of estimated capacity, so the
  Zipf-hot tenant burns its own bucket (429s) instead of everyone's
  queue;
- ``noadm``: no admission gate -- every arrival queues, and under
  overload the shared queue blows through the SLO for *all* tenants.

Goodput counts requests answered with a correct aggregate within the
SLO; the claim mirrored from the overload plane is that per-tenant
admission keeps aggregate goodput (and the cold tenants' SLO
attainment) up at overload, at the price of 429s charged to the hot
tenant.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
)
from repro.serve.loadgen import estimate_service_time, run_loadgen
from repro.serve.service import ServeConfig, TenantPolicy
from repro.units import percentile
from repro.workload.openloop import OpenLoopParams

LOADS = (0.5, 1.0, 2.0, 4.0)

#: End-to-end (wait + service) latency SLO, virtual seconds.
SLO = 0.25

#: Virtual seconds of arrivals replayed per (load, arm) point.
DURATION = 3.0

#: Tenants in the Zipf population (rank 1 is the hot tenant).
TENANTS = 8


def _pooled_p99(report) -> float:
    """p99 over every successful request's end-to-end latency."""
    latencies: List[float] = []
    for stats in report.tenants.values():
        latencies.extend(stats.latencies)
    return percentile(latencies, 99.0) if latencies else 0.0


def _cold_attainment(report, tenants: int) -> float:
    """Mean SLO attainment over the cold half of the tenant population."""
    cold = [f"tenant-{rank}" for rank in range(tenants // 2 + 1, tenants + 1)]
    values = [report.tenants[t].attainment() for t in cold
              if t in report.tenants and report.tenants[t].requests]
    return sum(values) / len(values) if values else 1.0


def _arm(scale: SimScale, params: OpenLoopParams, seed: int,
         admission: bool):
    config = ServeConfig(topo=scale.topo,
                         default_policy=TenantPolicy(slo=SLO),
                         admission=admission)
    return run_loadgen(params, config=config, seed=seed, slo=SLO,
                       admission=admission)


@register("fig_serve")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        loads: Sequence[float] = LOADS,
        duration: float = DURATION) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig_serve",
        description="per-tenant serving goodput and p99 vs offered load, "
                    "with (adm) and without (noadm) per-tenant admission",
        columns=("load", "adm_goodput", "noadm_goodput", "adm_p99",
                 "noadm_p99", "adm_hot_attain", "noadm_hot_attain",
                 "adm_cold_attain", "noadm_cold_attain", "adm_r429",
                 "noadm_r503"),
        notes="goodput = correct-and-within-SLO requests/s "
              f"(SLO {SLO:g}s end-to-end); load = offered rate as a "
              "multiple of estimated capacity; hot = Zipf rank-1 tenant, "
              "cold = mean attainment of the bottom half",
    )
    # One capacity estimate anchors every load point (scratch service,
    # so it never perturbs the measured arms).
    service_time = estimate_service_time(
        ServeConfig(topo=scale.topo, default_policy=TenantPolicy(slo=SLO)))
    capacity = 1.0 / service_time
    for load in sorted(loads):
        offered = load * capacity
        params = OpenLoopParams(
            users=max(1, int(round(offered / 0.001))),
            duration=duration,
            per_user_rate=0.001,
            tenants=TENANTS,
        )
        adm = _arm(scale, params, seed, admission=True)
        noadm = _arm(scale, params, seed, admission=False)
        hot = "tenant-1"
        result.add_row(
            load=load,
            adm_goodput=adm.report.aggregate_goodput(),
            noadm_goodput=noadm.report.aggregate_goodput(),
            adm_p99=_pooled_p99(adm.report),
            noadm_p99=_pooled_p99(noadm.report),
            adm_hot_attain=(adm.report.tenants[hot].attainment()
                            if hot in adm.report.tenants else 1.0),
            noadm_hot_attain=(noadm.report.tenants[hot].attainment()
                              if hot in noadm.report.tenants else 1.0),
            adm_cold_attain=_cold_attainment(adm.report, TENANTS),
            noadm_cold_attain=_cold_attainment(noadm.report, TENANTS),
            adm_r429=sum(t.rejected_admission
                         for t in adm.report.tenants.values()),
            noadm_r503=sum(t.rejected_unavailable
                           for t in noadm.report.tenants.values()),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
