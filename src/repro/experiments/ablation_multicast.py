"""Extension -- on-path multicast vs unicast fan-out (§5's proposal).

The paper suggests application-specific middleboxes could also run
one-to-many distribution (broadcast phases of iterative jobs).  This
experiment distributes one payload from a source to N receivers either
as N unicast copies or through a box distribution tree, and reports the
completion time and the copies crossing the source's edge link.
"""

from __future__ import annotations

from repro.aggregation import deploy_boxes
from repro.core.multicast import (
    build_multicast_tree,
    multicast_link_copies,
    plan_multicast_flows,
    plan_unicast_flows,
)
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.netsim.simulator import FlowSim
from repro.topology.threetier import ThreeTierParams, three_tier
from repro.units import MB

RECEIVER_COUNTS = (4, 8, 16, 32)


_QUICK = dict(receiver_counts=(4, 16))


@register("ablation_multicast")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("ablation_multicast.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(receiver_counts=RECEIVER_COUNTS,
           payload_mb: float = 20.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-multicast",
        description=f"broadcasting {payload_mb:.0f} MB to N receivers: "
                    "unicast vs on-path multicast",
        columns=("receivers", "unicast_s", "multicast_s", "speedup",
                 "source_link_copies_unicast", "source_link_copies_mc"),
    )
    params = ThreeTierParams(n_pods=2, tors_per_pod=2, aggrs_per_pod=2,
                             n_cores=2, hosts_per_tor=16)
    payload = payload_mb * MB
    for n_receivers in receiver_counts:
        receivers = [f"host:{i + 1}" for i in range(n_receivers)]

        topo = three_tier(params)
        sim = FlowSim(topo.network)
        uc_specs = plan_unicast_flows(topo, "host:0", receivers, payload)
        sim.add_flows(uc_specs)
        unicast_s = sim.run().end_time

        topo = three_tier(params)
        deploy_boxes(topo)
        tree = build_multicast_tree(topo, "bcast", "host:0", receivers)
        mc_specs = plan_multicast_flows(topo, tree, payload)
        sim = FlowSim(topo.network)
        sim.add_flows(mc_specs)
        multicast_s = sim.run().end_time

        result.add_row(
            receivers=n_receivers,
            unicast_s=unicast_s,
            multicast_s=multicast_s,
            speedup=unicast_s / multicast_s,
            source_link_copies_unicast=multicast_link_copies(
                uc_specs, payload)["host:0->tor:0"],
            source_link_copies_mc=multicast_link_copies(
                mc_specs, payload)["host:0->tor:0"],
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
