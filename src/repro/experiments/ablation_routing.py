"""Ablation -- ECMP vs single-path routing (§4.1 assumes ECMP).

With single-path routing every flow between a host pair shares one lane,
concentrating load on a few core links; ECMP spreads it.  Quantifies how
much of each strategy's performance depends on multi-path routing.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import fct_summary
from repro.netsim.routing import EcmpRouter, SinglePathRouter


@register("ablation_routing")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-routing",
        description="99th-pct FCT (s): ECMP vs single-path routing",
        columns=("strategy", "ecmp_p99_s", "single_path_p99_s",
                 "single_path_penalty"),
    )
    for strategy, deploy in (
        (RackLevelStrategy(), None),
        (NetAggStrategy(), deploy_boxes),
    ):
        ecmp = simulate(scale, strategy, deploy=deploy, seed=seed,
                        router=EcmpRouter())
        single = simulate(scale, strategy, deploy=deploy, seed=seed,
                          router=SinglePathRouter())
        ecmp_p99 = fct_summary(ecmp).p99
        single_p99 = fct_summary(single).p99
        result.add_row(
            strategy=strategy.name,
            ecmp_p99_s=ecmp_p99,
            single_path_p99_s=single_p99,
            single_path_penalty=single_p99 / ecmp_p99,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
