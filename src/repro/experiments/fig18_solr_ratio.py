"""Fig. 18 -- Solr throughput vs output ratio α (70 clients).

Plain Solr is frontend-link bound regardless of α.  NetAgg's box->
frontend link carries α-scaled data, so its advantage shrinks as α
grows, converging to plain at α = 100%.
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.solr_driver import SolrEmulation, SolrEmulationParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)

ALPHAS = (0.05, 0.10, 0.25, 0.50, 0.75, 1.00)

_QUICK = dict(alphas=(0.05, 0.5, 1.0), duration=5.0)


@register("fig18")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig18_solr_ratio.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(alphas=ALPHAS, n_clients: int = 70, duration: float = 10.0,
           config: TestbedConfig = TestbedConfig()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig18",
        description="Solr throughput (Gbps) vs output ratio, 70 clients",
        columns=("alpha", "solr_gbps", "netagg_gbps"),
    )
    plain = SolrEmulation(config, SolrEmulationParams(
        n_clients=n_clients, duration=duration)).run()
    for alpha in alphas:
        netagg = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration, use_netagg=True,
            alpha=alpha)).run()
        result.add_row(
            alpha=alpha,
            solr_gbps=plain.throughput_gbps,
            netagg_gbps=netagg.throughput_gbps,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
