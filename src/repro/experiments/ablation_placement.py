"""Ablation -- locality-aware vs random worker placement (§4.1).

The paper places workers "as close to each other as possible".  Random
placement scatters jobs across pods, pushing aggregation traffic through
the over-subscribed core; this quantifies how much that costs each
strategy -- and how much less it costs NetAgg, which aggregates inside
the core.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import fct_summary


@register("ablation_placement")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-placement",
        description="99th-pct FCT (s) under locality-aware vs random "
                    "placement",
        columns=("strategy", "locality_p99_s", "random_p99_s",
                 "random_penalty"),
    )
    for strategy, deploy in (
        (RackLevelStrategy(), None),
        (NetAggStrategy(), deploy_boxes),
    ):
        local = simulate(scale, strategy, deploy=deploy, seed=seed)
        scattered = simulate(
            scale.with_workload(random_placement=True),
            strategy, deploy=deploy, seed=seed,
        )
        local_p99 = fct_summary(local).p99
        random_p99 = fct_summary(scattered).p99
        result.add_row(
            strategy=strategy.name,
            locality_p99_s=local_p99,
            random_p99_s=random_p99,
            random_penalty=random_p99 / local_p99,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
