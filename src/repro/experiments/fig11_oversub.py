"""Fig. 11 -- relative 99th-pct FCT vs over-subscription (α = 10%).

NetAgg helps most when the core is over-subscribed (it removes traffic
at every hop), but still wins at full bisection because the master's and
the rack aggregator's inbound links remain bottlenecks.
"""

from __future__ import annotations

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    NetAggStrategy,
    RackLevelStrategy,
    deploy_boxes,
)
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99

OVERSUBSCRIPTIONS = (1.0, 2.0, 4.0, 8.0, 16.0)
STRATEGIES = (
    (BinaryTreeStrategy(), None),
    (ChainStrategy(), None),
    (NetAggStrategy(), deploy_boxes),
)


@register("fig11")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig11",
        description="99th-pct FCT vs over-subscription, relative to rack",
        columns=("oversubscription", "binary", "chain", "netagg"),
    )
    for oversub in OVERSUBSCRIPTIONS:
        sub = scale.with_topo(oversubscription=oversub)
        baseline = simulate(sub, RackLevelStrategy(), seed=seed)
        row = {"oversubscription": oversub}
        for strategy, deploy in STRATEGIES:
            sim = simulate(sub, strategy, deploy=deploy, seed=seed)
            row[strategy.name] = relative_p99(sim, baseline)
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
