"""Fig. 21 -- throughput vs active CPU cores on one agg box.

The cheap ``sample`` function is network-bound (flat once a few cores
deserialise fast enough); ``categorise`` scales linearly with cores --
the data-parallel local tree exploits them all.
"""

from __future__ import annotations

from repro.aggbox.functions import CategoriseFunction, SampleFunction
from repro.cluster.deployment import TestbedConfig
from repro.cluster.solr_driver import SolrEmulation, SolrEmulationParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)

CORES = (2, 4, 8, 12, 16)

_QUICK = dict(cores=(2, 4, 16), duration=5.0)


@register("fig21")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig21_solr_scaleup.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(cores=CORES, n_clients: int = 70,
           duration: float = 10.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig21",
        description="agg box throughput (Gbps) vs CPU cores",
        columns=("cores", "sample_gbps", "categorise_gbps"),
    )
    for n_cores in cores:
        config = TestbedConfig(box_cores=n_cores)
        sample = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration, use_netagg=True,
            agg_cpu_factor=SampleFunction.cpu_factor)).run()
        categorise = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration, use_netagg=True,
            agg_cpu_factor=CategoriseFunction.cpu_factor)).run()
        result.add_row(
            cores=n_cores,
            sample_gbps=sample.throughput_gbps,
            categorise_gbps=categorise.throughput_gbps,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
