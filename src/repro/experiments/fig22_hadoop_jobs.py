"""Fig. 22 -- Hadoop benchmarks: shuffle+reduce time and box rate.

Runs the five *real* mini-Hadoop benchmarks on sample inputs to measure
their output ratios, then emulates shuffle+reduce on the testbed at
gigabyte scale.  Paper shape: up to ~5x speed-up for reduction-friendly
jobs (WC, UV, PR), modest for compute-bound AP, none for TeraSort.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.apps.hadoop.benchmarks import (
    adpredictor_job,
    pagerank_job,
    terasort_job,
    uservisits_job,
    wordcount_job,
)
from repro.apps.hadoop.data import (
    generate_adpredictor_logs,
    generate_graph,
    generate_terasort_records,
    generate_text,
    generate_uservisits,
)
from repro.cluster.deployment import TestbedConfig
from repro.cluster.hadoop_driver import (
    HadoopEmulation,
    JobProfile,
    measure_job_profile,
)
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.units import GB


def _splits(data: Sequence, n: int = 10) -> List[Sequence]:
    size = max(1, len(data) // n)
    chunks = [data[i:i + size] for i in range(0, len(data), size)]
    return chunks[:n] if len(chunks) > n else chunks


def measure_profiles(seed: int = 1) -> List[JobProfile]:
    """Profiles of the five benchmarks from real (small) runs."""
    inputs = [
        (wordcount_job(), generate_text(800, seed=seed)),
        (adpredictor_job(), generate_adpredictor_logs(3000, seed=seed)),
        (pagerank_job(), generate_graph(800, seed=seed)),
        (uservisits_job(), generate_uservisits(3000, seed=seed)),
        (terasort_job(), generate_terasort_records(3000, seed=seed)),
    ]
    return [
        measure_job_profile(job, _splits(data), use_combiner=False)
        for job, data in inputs
    ]


@register("fig22")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    # The five-benchmark sweep is already CI-fast; every scale runs the
    # paper configuration.
    if knobs:
        reject_legacy_knobs("fig22_hadoop_jobs.run", knobs)
    return _sweep(seed=seed)


def _sweep(intermediate_bytes: float = 2 * GB, seed: int = 1,
           config: TestbedConfig = TestbedConfig()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig22",
        description="Hadoop shuffle+reduce time (relative to plain) and "
                    "agg box rate, 2 GB intermediate data",
        columns=("job", "measured_alpha", "plain_srt_s", "netagg_srt_s",
                 "relative_srt", "agg_time_s", "box_gbps"),
        notes="profiles measured from real mini-Hadoop runs",
    )
    emulation = HadoopEmulation(config)
    for profile in measure_profiles(seed=seed):
        plain = emulation.run(profile, intermediate_bytes,
                              use_netagg=False)
        if profile.aggregatable:
            netagg = emulation.run(profile, intermediate_bytes,
                                   use_netagg=True)
            netagg_srt = netagg.shuffle_reduce_seconds
            agg_time = netagg.agg_seconds
            box_rate = netagg.box_processing_gbps
        else:
            # TeraSort: no combiner, NetAgg cannot help; report plain.
            netagg_srt = plain.shuffle_reduce_seconds
            agg_time = 0.0
            box_rate = 0.0
        result.add_row(
            job=profile.name,
            measured_alpha=profile.output_ratio,
            plain_srt_s=plain.shuffle_reduce_seconds,
            netagg_srt_s=netagg_srt,
            relative_srt=netagg_srt / plain.shuffle_reduce_seconds,
            agg_time_s=agg_time,
            box_gbps=box_rate,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
