"""Ablation -- how many reducers does NetAgg's Hadoop win survive?

The paper's Hadoop deployment uses a single reducer (the worst case for
shuffle incast, and the case where on-path aggregation shines).  More
reducers parallelise the plain shuffle across inbound links, eroding
NetAgg's relative advantage -- this ablation quantifies the crossover.
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.hadoop_driver import HadoopEmulation, JobProfile
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.units import GB

REDUCER_COUNTS = (1, 2, 4, 8)


_QUICK = dict(reducer_counts=(1, 4))


@register("ablation_reducers")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("ablation_reducers.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(reducer_counts=REDUCER_COUNTS, alpha: float = 0.10,
           intermediate_bytes: float = 4 * GB,
           config: TestbedConfig = TestbedConfig()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-reducers",
        description="WordCount shuffle+reduce speed-up vs reducer count "
                    f"({intermediate_bytes / GB:.0f} GB, alpha={alpha:.0%})",
        columns=("n_reducers", "plain_srt_s", "netagg_srt_s", "speedup"),
    )
    emulation = HadoopEmulation(config)
    profile = JobProfile("WC", output_ratio=alpha, cpu_factor=1.0,
                         aggregatable=True)
    for n_reducers in reducer_counts:
        plain = emulation.run(profile, intermediate_bytes,
                              use_netagg=False, n_reducers=n_reducers)
        netagg = emulation.run(profile, intermediate_bytes,
                               use_netagg=True, n_reducers=n_reducers)
        result.add_row(
            n_reducers=n_reducers,
            plain_srt_s=plain.shuffle_reduce_seconds,
            netagg_srt_s=netagg.shuffle_reduce_seconds,
            speedup=(plain.shuffle_reduce_seconds
                     / netagg.shuffle_reduce_seconds),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
