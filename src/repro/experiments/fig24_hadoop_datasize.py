"""Fig. 24 -- shuffle+reduce time vs intermediate data size.

Fixed output ratio, growing intermediate data (2 -> 16 GB): the shuffle
dominates more as data grows, so NetAgg's speed-up rises (the paper
reports up to ~5x at the largest size).
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.hadoop_driver import HadoopEmulation, JobProfile
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.units import GB

DATA_SIZES_GB = (2, 4, 8, 16)

_QUICK = dict(sizes_gb=(2, 16))


@register("fig24")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig24_hadoop_datasize.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(sizes_gb=DATA_SIZES_GB, alpha: float = 0.10,
           config: TestbedConfig = TestbedConfig()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig24",
        description="WordCount shuffle+reduce time (s) vs intermediate "
                    f"data size, alpha={alpha:.0%}",
        columns=("size_gb", "plain_srt_s", "netagg_srt_s", "speedup"),
    )
    emulation = HadoopEmulation(config)
    profile = JobProfile("WC", output_ratio=alpha, cpu_factor=1.0,
                         aggregatable=True)
    for size_gb in sizes_gb:
        nbytes = size_gb * GB
        plain = emulation.run(profile, nbytes, use_netagg=False)
        netagg = emulation.run(profile, nbytes, use_netagg=True)
        result.add_row(
            size_gb=size_gb,
            plain_srt_s=plain.shuffle_reduce_seconds,
            netagg_srt_s=netagg.shuffle_reduce_seconds,
            speedup=(plain.shuffle_reduce_seconds
                     / netagg.shuffle_reduce_seconds),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
