"""Multiprocess sweep runner: multi-seed / multi-scale grids on all cores.

Two layers:

- :func:`run_parallel` is the generic fan-out primitive.  It maps a
  module-level function over picklable items with a ``fork`` process
  pool, preserves item order, and merges the children's ``netsim.*``
  counter increments back into the parent's metrics registry -- so
  observability totals are identical to a serial run.  It degrades to
  the plain serial loop whenever parallelism is unsafe or pointless:
  one item, ``processes=1`` (or ``REPRO_PROCESSES=1``), no ``fork``
  start method, an enabled tracer (child trace spans cannot be merged),
  or when already inside a pool worker (daemonic processes cannot
  spawn).  Results are deterministic either way: every cell carries its
  own explicit seed, so *which* worker runs it cannot matter.

Merge-back scope -- what does and does not cross the fork boundary:

- **Merged**: monotonic ``netsim.*`` *counters* only.  Each child
  reports its before/after delta, which the parent re-applies exactly
  once, so serial and parallel totals agree and nothing is counted
  twice (the child inherits the parent's counter values at fork time;
  the delta subtracts that inheritance out).
- **Per-process, discarded**: everything else.  Gauges and histograms
  are point-in-time process state with no meaningful cross-process
  sum.  Likewise the live telemetry plane (:mod:`repro.obs.live`) --
  ``TimeSeriesStore`` windows, ``SloMonitor`` burn state and
  ``FlightRecorder`` rings index *one process's* virtual clock; a
  child's windowed points are never folded into the parent store, so
  a sweep can never double-count a request into a window or fire a
  parent-side alert from child events.  Experiments that want live
  telemetry build a private :class:`repro.obs.live.SloMonitor` inside
  the cell function (see ``fig_burnrate``) and return plain rows.

- :func:`sweep` runs an (experiment x scale x seed) grid through
  :func:`run_parallel` and merges the cells into one
  :class:`ExperimentResult` per (experiment, scale), each row prefixed
  with its ``seed``/``scale`` columns, in deterministic grid order.
  ``python -m repro sweep fig06 fig08 --seeds 1,2,3`` is the CLI front
  end.

:mod:`repro.experiments.fig06_fct_cdf` uses :func:`run_parallel`
directly to run its four strategy simulations concurrently -- the
per-figure fan-out that makes ``DEFAULT``-scale figures interactive.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments import ExperimentResult, load, resolve
from repro.experiments.common import BENCH, DEFAULT, PAPER, QUICK, SimScale
from repro.obs import METRICS, get_tracer

#: Scale presets by name (the CLI vocabulary).
SCALES: Dict[str, SimScale] = {
    "quick": QUICK, "bench": BENCH, "default": DEFAULT, "paper": PAPER,
}

#: Counter namespace whose child-process increments are merged back.
_COUNTER_PREFIX = "netsim."


def _effective_processes(processes: Optional[int], n_items: int) -> int:
    """How many workers to actually use (1 = run serially)."""
    if n_items <= 1:
        return 1
    if processes is None:
        env = os.environ.get("REPRO_PROCESSES", "").strip()
        if env:
            try:
                processes = int(env)
            except ValueError:
                raise SystemExit(
                    f"REPRO_PROCESSES={env!r} is not an integer") from None
        else:
            processes = os.cpu_count() or 1
    if processes <= 1:
        return 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return 1
    if multiprocessing.current_process().daemon:
        return 1  # pool workers cannot spawn their own pools
    if get_tracer().enabled:
        return 1  # children's trace spans would be lost
    return min(processes, n_items)


def _counter_values(prefix: str) -> Dict[str, int]:
    """Current values of the counters under ``prefix`` (counters only:
    gauges, histograms and the ``repro.obs.live`` windowed stores are
    per-process state, not mergeable sums -- see module docstring)."""
    out: Dict[str, int] = {}
    for name in METRICS.names(prefix):
        try:
            out[name] = METRICS.counter(name).value
        except TypeError:
            continue
    return out


def _call_with_counters(packed: Tuple[Callable, object]):
    """Pool target: run one call and capture its counter increments.

    Runs in a fork child whose metrics registry is a copy of the
    parent's; the before/after difference is exactly this call's
    contribution, which the parent re-applies on merge.
    """
    fn, item = packed
    before = _counter_values(_COUNTER_PREFIX)
    payload = fn(item)
    after = _counter_values(_COUNTER_PREFIX)
    delta = {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }
    return payload, delta


def run_parallel(fn: Callable, items: Iterable,
                 processes: Optional[int] = None) -> List:
    """``[fn(item) for item in items]``, fanned out over fork workers.

    ``fn`` must be a module-level function and every item picklable.
    Results come back in item order; the children's ``netsim.*``
    counter increments are merged into the parent registry.  Falls back
    to the serial loop when parallelism is unavailable (see module
    docstring) -- results and counter totals are identical either way.
    """
    items = list(items)
    count = _effective_processes(processes, len(items))
    if count <= 1:
        return [fn(item) for item in items]
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=count) as pool:
        outs = pool.map(_call_with_counters,
                        [(fn, item) for item in items])
    results = []
    for payload, delta in outs:
        for name, value in delta.items():
            METRICS.counter(name).inc(value)
        results.append(payload)
    return results


#: One sweep cell: (experiment module, scale name, seed).
SweepCell = Tuple[str, str, int]


def _run_cell(cell: SweepCell) -> Dict[str, object]:
    module, scale_name, seed = cell
    exp = load(module)
    result = exp.run(scale=SCALES[scale_name], seed=seed)
    return result.to_dict()


def sweep(names: Sequence[str],
          scales: Sequence[str] = ("bench",),
          seeds: Sequence[int] = (1,),
          processes: Optional[int] = None) -> List[ExperimentResult]:
    """Run an (experiment x scale x seed) grid; one merged result per
    (experiment, scale), rows prefixed with ``seed`` and ``scale``.

    The grid order -- experiments in the order given, then scales, then
    seeds -- is deterministic, every cell's seed is explicit, and
    :func:`run_parallel` preserves cell order, so the output is
    bit-for-bit identical at any worker count.
    """
    modules = [resolve(name) for name in names]
    for scale_name in scales:
        if scale_name not in SCALES:
            raise KeyError(
                f"unknown scale {scale_name!r}; "
                f"choose from {sorted(SCALES)}")
    grid: List[SweepCell] = [
        (module, scale_name, seed)
        for module in modules
        for scale_name in scales
        for seed in seeds
    ]
    payloads = run_parallel(_run_cell, grid, processes=processes)

    order: List[Tuple[str, str]] = []
    groups: Dict[Tuple[str, str], List[Tuple[int, Dict[str, object]]]] = {}
    for (module, scale_name, seed), payload in zip(grid, payloads):
        key = (module, scale_name)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((seed, payload))

    merged: List[ExperimentResult] = []
    for module, scale_name in order:
        cells = groups[(module, scale_name)]
        first = cells[0][1]
        seed_list = ",".join(str(seed) for seed, _ in cells)
        result = ExperimentResult(
            experiment=first["experiment"],
            description=first["description"],
            columns=("scale", "seed") + tuple(first["columns"]),
            notes=f"sweep over seeds [{seed_list}] at scale "
                  f"{scale_name!r}" + (f"; {first['notes']}"
                                       if first.get("notes") else ""),
        )
        for seed, payload in cells:
            for row in payload["rows"]:
                result.add_row(scale=scale_name, seed=seed, **row)
        merged.append(result)
    return merged
