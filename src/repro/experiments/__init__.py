"""One module per paper figure/table (the per-experiment index of
DESIGN.md), plus the experiment registry.

Every figure module registers one canonical entry point with the
:func:`register` decorator::

    @register("fig08")
    def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
        ...

The CLI, the benchmark harness and the tests all go through the
registry -- :func:`load` imports a module on demand and returns its
:class:`Experiment` record, :func:`all_experiments` iterates the whole
catalogue in figure order, and :func:`resolve` maps short names
(``fig08``) to module names (``fig08_output_ratio``).
"""

from __future__ import annotations

import importlib
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.experiments.common import (
    BENCH,
    DEFAULT,
    PAPER,
    QUICK,
    ExperimentResult,
    SimScale,
    simulate,
)

#: Ordered catalogue of experiment modules (figure order, then extras).
MODULES: List[str] = [
    "fig02_processing_rate",
    "fig03_cost",
    "fig06_fct_cdf",
    "fig07_nonagg_cdf",
    "fig08_output_ratio",
    "fig09_link_traffic",
    "fig10_agg_fraction",
    "fig11_oversub",
    "fig12_partial",
    "fig13_10g_scaleout",
    "fig14_stragglers",
    "fig15_localtree",
    "fig16_solr_throughput",
    "fig17_solr_latency",
    "fig18_solr_ratio",
    "fig19_solr_tworack",
    "fig20_solr_scaleout",
    "fig21_solr_scaleup",
    "fig22_hadoop_jobs",
    "fig23_hadoop_ratio",
    "fig24_hadoop_datasize",
    "fig25_fair_fixed",
    "fig26_fair_adaptive",
    "tab01_loc",
    "ablation_trees",
    "ablation_placement",
    "ablation_streaming",
    "ablation_routing",
    "ablation_multicast",
    "ablation_reducers",
    "ablation_colocation",
    "ablation_fattree",
    "ablation_arrivals",
    "fig_failures",
    "fig_overload",
    "fig_selfheal",
    "fig_serve",
    "fig_partition",
    "fig_burnrate",
]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: its names, summary and entry point."""

    name: str       #: short name used on the command line, e.g. ``fig08``
    module: str     #: module name, e.g. ``fig08_output_ratio``
    summary: str    #: first line of the module docstring (or override)
    run: Callable[..., ExperimentResult]  #: run(scale=..., seed=...)


_REGISTRY: Dict[str, Experiment] = {}


def register(name: str, summary: Optional[str] = None,
             ) -> Callable[[Callable[..., ExperimentResult]],
                           Callable[..., ExperimentResult]]:
    """Class the decorated function as an experiment entry point.

    ``name`` is the short CLI name (``fig08``); the registry key is the
    defining module's name.  The one-line summary defaults to the first
    line of the module docstring.
    """

    def decorate(fn: Callable[..., ExperimentResult]
                 ) -> Callable[..., ExperimentResult]:
        module = fn.__module__.rsplit(".", 1)[-1]
        text = summary
        if text is None:
            doc = (sys.modules[fn.__module__].__doc__ or "").strip()
            text = doc.splitlines()[0] if doc else ""
        _REGISTRY[module] = Experiment(
            name=name, module=module, summary=text, run=fn)
        return fn

    return decorate


def load(name: str) -> Experiment:
    """Import an experiment module (if needed) and return its record."""
    if name not in MODULES:
        raise KeyError(f"unknown experiment {name!r}")
    if name not in _REGISTRY:
        importlib.import_module(f"repro.experiments.{name}")
    if name not in _REGISTRY:
        raise RuntimeError(
            f"module repro.experiments.{name} defines no @register'd run()")
    return _REGISTRY[name]


def all_experiments() -> Iterator[Experiment]:
    """All experiments, in catalogue order (imports lazily)."""
    for name in MODULES:
        yield load(name)


def resolve(name: str) -> str:
    """Map a short or prefix name (``fig08``, ``tab01``) to its module.

    Raises ``KeyError`` for unknown names and ``ValueError`` for
    ambiguous prefixes.
    """
    if name in MODULES:
        return name
    matches = [m for m in MODULES if m.startswith(name)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"unknown experiment {name!r}")
    raise ValueError(f"ambiguous experiment {name!r}: {matches}")


def unknown_experiment_message(name: str) -> str:
    """The error text for a name :func:`resolve` rejects.

    Lists every registered experiment so a typo against the registry is
    a one-glance fix instead of a trip through ``python -m repro list``.
    """
    catalogue = "\n".join(f"  {m}" for m in MODULES)
    return (f"unknown experiment {name!r}; registered experiments:\n"
            f"{catalogue}")


__all__ = [
    "Experiment",
    "ExperimentResult",
    "MODULES",
    "SimScale",
    "all_experiments",
    "load",
    "register",
    "resolve",
    "simulate",
    "unknown_experiment_message",
    "QUICK",
    "BENCH",
    "DEFAULT",
    "PAPER",
]
