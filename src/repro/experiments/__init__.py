"""One module per paper figure/table (the per-experiment index of
DESIGN.md).  Every module exposes ``run(scale=..., seed=...) ->
ExperimentResult`` whose rows are the paper's series; ``benchmarks/``
regenerates each one, and EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments.common import (
    BENCH,
    DEFAULT,
    PAPER,
    QUICK,
    ExperimentResult,
    SimScale,
    simulate,
)

__all__ = [
    "ExperimentResult",
    "SimScale",
    "simulate",
    "QUICK",
    "BENCH",
    "DEFAULT",
    "PAPER",
]
