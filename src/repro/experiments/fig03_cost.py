"""Fig. 3 -- performance and upgrade cost of DC configurations.

Compares rack-level aggregation on upgraded networks (FullBisec-10G,
Oversub-10G, FullBisec-1G) against NetAgg and Incremental-NetAgg on the
base network (1 Gbps edges, 4:1 over-subscription).  The paper's
finding: NetAgg achieves nearly FullBisec-10G's FCT reduction at a small
fraction of its cost.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.cost.model import PriceList, netagg_cost, upgrade_cost
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99
from repro.topology.base import AGGR
from repro.units import Gbps


@register("fig03")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        prices: PriceList = PriceList()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig03",
        description="FCT (relative to base rack-level) and upgrade cost",
        columns=("configuration", "relative_p99", "upgrade_cost_usd"),
    )
    base = scale.topo
    baseline = simulate(scale, RackLevelStrategy(), seed=seed)

    def rack_on(topo_overrides) -> float:
        sub = scale.with_topo(**topo_overrides)
        return relative_p99(
            simulate(sub, RackLevelStrategy(), seed=seed), baseline
        )

    # -- upgraded networks, still rack-level aggregation -------------------
    full_10g = dict(edge_rate=Gbps(10.0), oversubscription=1.0)
    oversub_10g = dict(edge_rate=Gbps(10.0))
    full_1g = dict(oversubscription=1.0)
    result.add_row(
        configuration="FullBisec-10G",
        relative_p99=rack_on(full_10g),
        upgrade_cost_usd=upgrade_cost(base, base.scaled(**full_10g),
                                      prices).total,
    )
    result.add_row(
        configuration="Oversub-10G",
        relative_p99=rack_on(oversub_10g),
        upgrade_cost_usd=upgrade_cost(base, base.scaled(**oversub_10g),
                                      prices).total,
    )
    result.add_row(
        configuration="FullBisec-1G",
        relative_p99=rack_on(full_1g),
        upgrade_cost_usd=upgrade_cost(base, base.scaled(**full_1g),
                                      prices).total,
    )

    # -- NetAgg on the base network -----------------------------------------
    n_switches = (base.n_tors + base.n_pods * base.aggrs_per_pod
                  + base.n_cores)
    netagg = simulate(scale, NetAggStrategy(), deploy=deploy_boxes,
                      seed=seed)
    result.add_row(
        configuration="NetAgg",
        relative_p99=relative_p99(netagg, baseline),
        upgrade_cost_usd=netagg_cost(n_switches, prices).total,
    )
    n_aggr = base.n_pods * base.aggrs_per_pod
    incremental = simulate(
        scale, NetAggStrategy(),
        deploy=lambda t: deploy_boxes(t, tiers=(AGGR,)),
        seed=seed,
    )
    result.add_row(
        configuration="Incremental-NetAgg",
        relative_p99=relative_p99(incremental, baseline),
        upgrade_cost_usd=netagg_cost(n_aggr, prices).total,
    )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
