"""Shared experiment infrastructure: scales, the simulation runner, and
the result container all figure modules use.

Scales trade runtime for fidelity:

- ``QUICK``   -- seconds; used by unit tests;
- ``BENCH``   -- sub-minute figures; the default for ``benchmarks/``;
- ``DEFAULT`` -- the tuned configuration behind EXPERIMENTS.md numbers;
- ``PAPER``   -- the paper's full 1,024-server topology (slow).

The workload constants follow DESIGN.md's documented assumptions; racks
are large (32 hosts) because the paper's incast degree (~40 servers per
rack) is what makes rack-level aggregation's inbound bottleneck visible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.aggregation.base import AggregationStrategy
from repro.faults import FaultSchedule, SimFaultInjector
from repro.netsim.routing import EcmpRouter
from repro.netsim.simulator import FlowSim, SimulationResult
from repro.topology.base import Topology
from repro.topology.threetier import ThreeTierParams, three_tier
from repro.units import MB
from repro.workload.stragglers import StragglerModel, inject_stragglers
from repro.workload.synthetic import WorkloadParams, generate_workload


@dataclass(frozen=True)
class SimScale:
    """A (topology, workload) size preset."""

    name: str
    topo: ThreeTierParams
    workload: WorkloadParams

    def with_topo(self, **overrides) -> "SimScale":
        return replace(self, topo=self.topo.scaled(**overrides))

    def with_workload(self, **overrides) -> "SimScale":
        return replace(self, workload=replace(self.workload, **overrides))


_WORKLOAD_DEFAULTS = dict(
    mean_flow_size=1 * MB,
    pareto_shape=1.5,
    max_flow_size=10 * MB,
    aggregatable_fraction=0.4,
    worker_pareto_shape=1.0,
)

QUICK = SimScale(
    name="quick",
    topo=ThreeTierParams(n_pods=2, tors_per_pod=2, aggrs_per_pod=2,
                         n_cores=2, hosts_per_tor=8),
    workload=WorkloadParams(n_flows=80, max_workers=24,
                            **_WORKLOAD_DEFAULTS),
)

BENCH = SimScale(
    name="bench",
    topo=ThreeTierParams(n_pods=4, tors_per_pod=1, aggrs_per_pod=2,
                         n_cores=4, hosts_per_tor=32),
    workload=WorkloadParams(n_flows=300, max_workers=64,
                            **_WORKLOAD_DEFAULTS),
)

DEFAULT = SimScale(
    name="default",
    topo=ThreeTierParams(n_pods=4, tors_per_pod=2, aggrs_per_pod=2,
                         n_cores=4, hosts_per_tor=32),
    workload=WorkloadParams(n_flows=600, max_workers=96,
                            **_WORKLOAD_DEFAULTS),
)

PAPER = SimScale(
    name="paper",
    topo=ThreeTierParams(),  # 1,024 servers, 64/16/8 switches
    workload=WorkloadParams(n_flows=2000, max_workers=128,
                            **_WORKLOAD_DEFAULTS),
)


def simulate(
    scale: SimScale,
    strategy: AggregationStrategy,
    deploy: Optional[Callable[[Topology], object]] = None,
    seed: int = 1,
    stragglers: Optional[StragglerModel] = None,
    router: Optional[EcmpRouter] = None,
    faults: Optional[FaultSchedule] = None,
    solver: str = "auto",
) -> SimulationResult:
    """Build topology, deploy boxes, generate workload, run one strategy.

    Passing a :class:`repro.faults.FaultSchedule` wires the simulator
    fault injector in uniformly: the strategy plans against the
    injector's fault view (if it accepts one, e.g. ``NetAggStrategy``)
    and the schedule's capacity/reroute events are applied to the run.

    ``solver`` selects the max-min backend (see
    :class:`repro.netsim.simulator.FlowSim`): ``"vectorized"``,
    ``"incremental"`` or ``"auto"``.
    """
    topo = three_tier(scale.topo)
    if deploy is not None:
        deploy(topo)
    injector = None
    if faults is not None:
        injector = SimFaultInjector(topo, faults)
        # Fault-aware strategies expose a ``fault_view`` attribute read
        # at plan time; only fill it in when the caller left it unset.
        if hasattr(strategy, "fault_view") \
                and getattr(strategy, "fault_view") is None:
            strategy.fault_view = injector.fault_view
    workload = generate_workload(topo, scale.workload, seed=seed)
    if stragglers is not None:
        workload = inject_stragglers(workload, stragglers, seed=seed)
    sim = FlowSim(topo.network, label=getattr(strategy, "name", ""),
                  solver=solver)
    sim.add_flows(strategy.plan(workload, topo, router))
    if injector is not None:
        injector.apply(sim, workload)
    return sim.run()


def reject_legacy_knobs(entry: str, knobs: Dict[str, object]) -> None:
    """Refuse a legacy ad-hoc-keyword call to a figure's ``run()``.

    Figure modules used to expose per-module tuning knobs directly on
    ``run()`` (``run(clients=..., duration=...)``); the canonical
    signature is ``run(scale=..., seed=...)``.  The deprecation shim
    that used to forward such calls (with a ``DeprecationWarning``) is
    retired: old call sites now fail loudly with a migration hint.
    Pinned by ``tests/test_experiments.py::TestLegacyEntrypoints``.
    """
    names = ", ".join(sorted(knobs))
    raise TypeError(
        f"{entry} no longer accepts ad-hoc keyword arguments ({names}); "
        "use run(scale=..., seed=...) with a SimScale preset "
        "(QUICK/BENCH/DEFAULT/PAPER)")


@dataclass
class ExperimentResult:
    """Rows of one regenerated figure/table."""

    experiment: str
    description: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""
    #: Flat observability snapshot (``repro.obs.METRICS.snapshot()``)
    #: captured by the runner; empty when the run was not instrumented.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Trace diagnosis (``repro.obs.analyze``): per-request critical
    #: paths and ranked link bottlenecks.  Attached by ``python -m
    #: repro analyze``; empty for plain runs.
    diagnosis: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns: {sorted(missing)}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned text table (for example scripts)."""
        widths = {
            c: max(len(c), *(len(_fmt(row[c])) for row in self.rows))
            if self.rows else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [f"== {self.experiment}: {self.description} ==", header,
                 "-" * len(header)]
        for row in self.rows:
            lines.append("  ".join(
                _fmt(row[c]).ljust(widths[c]) for c in self.columns
            ))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-ready)."""
        data = {
            "experiment": self.experiment,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": self.notes,
        }
        if self.metrics:
            data["metrics"] = dict(self.metrics)
        if self.diagnosis:
            data["diagnosis"] = dict(self.diagnosis)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        result = cls(
            experiment=data["experiment"],
            description=data["description"],
            columns=tuple(data["columns"]),
            notes=data.get("notes", ""),
            metrics=dict(data.get("metrics", {})),
            diagnosis=dict(data.get("diagnosis", {})),
        )
        for row in data["rows"]:
            result.add_row(**row)
        return result

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise; round-trips through :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
