"""Ablation -- NetAgg on a fat-tree with multiple aggregation trees.

A k-ary fat-tree offers (k/2)^2 equal-cost core paths between pods --
exactly the diversity §3.1's multiple disjoint aggregation trees exist
to exploit.  This experiment deploys boxes over a fat-tree and sweeps
the tree count: with one tree per application every job funnels through
a single core group; more trees spread the aggregation load across the
fabric.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.netsim.metrics import fct_summary, relative_p99
from repro.netsim.simulator import FlowSim
from repro.topology import fat_tree
from repro.topology.base import AGGR, CORE, TOR
from repro.units import Gbps, MB
from repro.workload import WorkloadParams, generate_workload

TREE_COUNTS = (1, 2, 4)


def _workload_params(n_trees: int) -> WorkloadParams:
    return WorkloadParams(
        n_flows=200,
        mean_flow_size=1 * MB,
        pareto_shape=1.5,
        max_flow_size=10 * MB,
        aggregatable_fraction=0.5,
        worker_pareto_shape=1.0,
        max_workers=24,
        n_trees=n_trees,
    )


_QUICK = dict(k=4, tree_counts=(1, 2))


@register("ablation_fattree")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("ablation_fattree.run", knobs)
    return _sweep(seed=seed, **(_QUICK if scale.name == "quick" else {}))


def _sweep(k: int = 8, tree_counts=TREE_COUNTS,
           seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-fattree",
        description=f"NetAgg on a k={k} fat-tree: 99th-pct FCT relative "
                    "to rack-level, sweeping trees per application",
        columns=("n_trees", "relative_p99", "agg_p99_s"),
    )
    baseline_topo = fat_tree(k)
    baseline_wl = generate_workload(baseline_topo, _workload_params(1),
                                    seed=seed)
    sim = FlowSim(baseline_topo.network)
    sim.add_flows(RackLevelStrategy().plan(baseline_wl, baseline_topo))
    baseline = sim.run()

    for n_trees in tree_counts:
        topo = fat_tree(k)
        for tier in (TOR, AGGR, CORE):
            for switch in topo.switches(tier):
                topo.attach_aggbox(switch, link_rate=Gbps(10.0),
                                   proc_rate=Gbps(9.2))
        workload = generate_workload(topo, _workload_params(n_trees),
                                     seed=seed)
        sim = FlowSim(topo.network)
        sim.add_flows(NetAggStrategy().plan(workload, topo))
        outcome = sim.run()
        result.add_row(
            n_trees=n_trees,
            relative_p99=relative_p99(outcome, baseline),
            agg_p99_s=fct_summary(outcome, aggregatable=True).p99,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
