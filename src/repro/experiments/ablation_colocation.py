"""Ablation -- request latency under co-location (Figs. 25/26, latency view).

The paper's fairness figures show CPU *shares*; this experiment shows
what those shares buy: the aggregation latency of a latency-sensitive
online application (Solr-like, 30 ms merges) co-located with a
throughput-oriented batch application (Hadoop-like, 1 ms merges),
under fixed vs adaptive weighted fair queuing.

With fixed weights the batch app starves (Fig. 25) -- its queue grows
without bound and its merge latency explodes; the adaptive scheduler
holds both applications near their target shares and keeps batch
latency finite at a modest cost to the online app.
"""

from __future__ import annotations

from typing import Dict

from repro.aggbox.box import AppBinding
from repro.aggbox.functions import SumFunction
from repro.aggbox.timed import TimedAggBox
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.netsim.engine import EventQueue
from repro.units import percentile
from repro.wire.serializer import read_float, write_float

#: Bytes per partial result chosen so merges cost ~30 ms (online) and
#: ~1 ms (batch) on one core at the default rate.
ONLINE_BYTES = 2_400_000.0
BATCH_BYTES = 80_000.0
PARTIALS_PER_REQUEST = 4


def _binding(app: str) -> AppBinding:
    return AppBinding(
        app=app,
        function=SumFunction(),
        deserialise=lambda b: read_float(b)[0],
        serialise=write_float,
    )


def _drive(adaptive: bool, duration: float, cores: int,
           seed_requests: int) -> Dict[str, float]:
    queue = EventQueue()
    box = TimedAggBox(queue, cores=cores, adaptive=adaptive)
    box.register_app(_binding("online"), target_share=0.5)
    box.register_app(_binding("batch"), target_share=0.5)

    def offer(app: str, nbytes: float, interval: float, index: int = 0):
        def fire() -> None:
            request = f"{app}:{index_holder[0]}"
            index_holder[0] += 1
            box.announce(app, request, expected=PARTIALS_PER_REQUEST)
            for source in range(PARTIALS_PER_REQUEST):
                box.submit(app, request, f"w{source}", 1.0, nbytes)
            if queue.now + interval < duration:
                queue.schedule(interval, fire)

        index_holder = [index]
        queue.schedule(0.0, fire)

    # The box is saturated, as in the paper's co-location experiment:
    # the online app offers 4 cores of demand on a 4-core box (it is
    # effectively backlogged), the batch app needs 1.5 cores.  Under
    # fixed count-fair picks the batch time share collapses to ~3%
    # (0.12 cores << 1.5), so its latency diverges; the adaptive
    # scheduler restores its 50% target (2 cores) at the cost of online
    # throughput.
    offer("online", ONLINE_BYTES, interval=0.030)
    offer("batch", BATCH_BYTES, interval=0.00267, index=1_000_000)
    queue.run(until=duration)

    out: Dict[str, float] = {}
    for app in ("online", "batch"):
        latencies = box.latencies(app)
        out[f"{app}_p99_ms"] = (
            percentile(latencies, 99.0) * 1e3 if latencies else float("inf")
        )
        out[f"{app}_done"] = len(latencies)
    out["online_cpu_share"] = box.executor.cpu_seconds["online"] / max(
        sum(box.executor.cpu_seconds.values()), 1e-12
    )
    return out


_QUICK = dict(duration=10.0)


@register("ablation_colocation")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("ablation_colocation.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(duration: float = 20.0, cores: int = 4) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-colocation",
        description="co-located merge latency: fixed vs adaptive WFQ",
        columns=("scheduler", "online_p99_ms", "batch_p99_ms",
                 "online_cpu_share", "online_done", "batch_done"),
    )
    for adaptive in (False, True):
        row = _drive(adaptive, duration, cores, 0)
        result.add_row(
            scheduler="adaptive" if adaptive else "fixed",
            online_p99_ms=row["online_p99_ms"],
            batch_p99_ms=row["batch_p99_ms"],
            online_cpu_share=row["online_cpu_share"],
            online_done=row["online_done"],
            batch_done=row["batch_done"],
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
