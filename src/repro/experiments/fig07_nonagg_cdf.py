"""Fig. 7 -- CDF of flow completion time, non-aggregatable traffic only.

The paper's point: NetAgg speeds up even flows it cannot aggregate,
because shrinking the aggregatable traffic frees shared bandwidth.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.experiments.fig06_fct_cdf import FRACTIONS, STRATEGIES


@register("fig07")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig07",
        description="FCT at sampled CDF fractions, non-aggregatable "
                    "traffic (seconds)",
        columns=("strategy",) + tuple(f"p{int(f * 100)}" for f in FRACTIONS),
    )
    for strategy, deploy in STRATEGIES:
        sim = simulate(scale, strategy, deploy=deploy, seed=seed)
        fcts = sorted(sim.fcts(aggregatable=False))
        row = {"strategy": strategy.name}
        for fraction in FRACTIONS:
            index = min(len(fcts) - 1, int(fraction * len(fcts)) - 1)
            row[f"p{int(fraction * 100)}"] = fcts[max(index, 0)]
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
