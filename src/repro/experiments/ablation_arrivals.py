"""Ablation -- arrival patterns (§4.1's robustness claim).

The paper's default workload starts every flow simultaneously ("a worst
case for network contention") and notes: "We also ran experiments using
dynamic workloads with various arrival patterns, obtaining comparable
results (between 2%-10% of the reported FCT values)."  This ablation
reproduces that robustness check: NetAgg's relative p99 under
simultaneous, uniform and Poisson arrivals.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99

ARRIVALS = (
    ("simultaneous", 0.0),
    ("uniform", 0.5),
    ("uniform", 2.0),
    ("poisson", 0.5),
    ("poisson", 2.0),
)


@register("ablation_arrivals")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-arrivals",
        description="NetAgg relative p99 under different arrival patterns",
        columns=("arrival_process", "span_s", "netagg_relative_p99"),
    )
    for process, span in ARRIVALS:
        sub = scale.with_workload(arrival_process=process,
                                  arrival_span=span)
        baseline = simulate(sub, RackLevelStrategy(), seed=seed)
        netagg = simulate(sub, NetAggStrategy(), deploy=deploy_boxes,
                          seed=seed)
        result.add_row(
            arrival_process=process,
            span_s=span,
            netagg_relative_p99=relative_p99(netagg, baseline),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
