"""Fig. 26 -- CPU sharing with the adaptive scheduler (the fix).

Same co-location as Fig. 25, but weights adapt to measured task
durations (w_i proportional to target/duration): CPU time converges to
the 50/50 target despite the 30x task-length asymmetry.
"""

from __future__ import annotations

from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.experiments.fig25_fair_fixed import _QUICK, _sweep


@register("fig26")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig26_fair_adaptive.run", knobs)
    return _adaptive(seed=seed, **(_QUICK if scale.name == "quick" else {}))


def _adaptive(duration: float = 30.0, seed: int = 1) -> ExperimentResult:
    return _sweep(duration=duration, seed=seed, adaptive=True)


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
