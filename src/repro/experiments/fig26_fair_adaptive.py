"""Fig. 26 -- CPU sharing with the adaptive scheduler (the fix).

Same co-location as Fig. 25, but weights adapt to measured task
durations (w_i proportional to target/duration): CPU time converges to
the 50/50 target despite the 30x task-length asymmetry.
"""

from __future__ import annotations

from repro.experiments import fig25_fair_fixed
from repro.experiments.common import ExperimentResult


def run(duration: float = 30.0, seed: int = 1) -> ExperimentResult:
    return fig25_fair_fixed.run(duration=duration, seed=seed, adaptive=True)


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
