"""Fig. 10 -- relative 99th-pct FCT vs fraction of aggregatable flows.

More aggregatable traffic helps all strategies, but past ~60% binary and
chain start to lose again (their edge-link overhead grows with the
aggregation volume); NetAgg keeps the lowest FCT all the way to 100%.
"""

from __future__ import annotations

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    NetAggStrategy,
    RackLevelStrategy,
    deploy_boxes,
)
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
STRATEGIES = (
    (BinaryTreeStrategy(), None),
    (ChainStrategy(), None),
    (NetAggStrategy(), deploy_boxes),
)


@register("fig10")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        description="99th-pct FCT vs aggregatable flow fraction, "
                    "relative to rack",
        columns=("fraction", "binary", "chain", "netagg"),
    )
    for fraction in FRACTIONS:
        sub = scale.with_workload(aggregatable_fraction=fraction)
        baseline = simulate(sub, RackLevelStrategy(), seed=seed)
        row = {"fraction": fraction}
        for strategy, deploy in STRATEGIES:
            sim = simulate(sub, strategy, deploy=deploy, seed=seed)
            row[strategy.name] = relative_p99(sim, baseline)
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
