"""Fig. 20 -- agg-box scale-out for CPU-intensive aggregation.

With the ``categorise`` function the box CPU is the bottleneck;
attaching a second box to the same switch (requests hash-split between
them) doubles throughput until the network binds.
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.solr_driver import SolrEmulation, SolrEmulationParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.aggbox.functions import CategoriseFunction

CLIENTS = (10, 30, 50, 70, 90)

_QUICK = dict(clients=(70,), duration=5.0)


@register("fig20")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig20_solr_scaleout.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(clients=CLIENTS, duration: float = 10.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig20",
        description="categorise throughput (Gbps): one vs two boxes "
                    "per switch",
        columns=("clients", "one_box_gbps", "two_boxes_gbps"),
    )
    cpu_factor = CategoriseFunction.cpu_factor
    for n_clients in clients:
        one = SolrEmulation(
            TestbedConfig(boxes_per_rack=1),
            SolrEmulationParams(n_clients=n_clients, duration=duration,
                                use_netagg=True, agg_cpu_factor=cpu_factor),
        ).run()
        two = SolrEmulation(
            TestbedConfig(boxes_per_rack=2),
            SolrEmulationParams(n_clients=n_clients, duration=duration,
                                use_netagg=True, agg_cpu_factor=cpu_factor),
        ).run()
        result.add_row(
            clients=n_clients,
            one_box_gbps=one.throughput_gbps,
            two_boxes_gbps=two.throughput_gbps,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
