"""Fig. 23 -- WordCount shuffle+reduce time vs output ratio.

The output ratio is controlled the way the paper does it -- "by varying
the repetition of words in the input" (our vocabulary-size knob) -- and
*measured* from real runs before emulating at scale.  NetAgg's benefit
is largest at small ratios and fades as aggregation stops shrinking
data.
"""

from __future__ import annotations

from repro.apps.hadoop.benchmarks import wordcount_job
from repro.apps.hadoop.data import generate_text
from repro.cluster.deployment import TestbedConfig
from repro.cluster.hadoop_driver import HadoopEmulation, measure_job_profile
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.experiments.fig22_hadoop_jobs import _splits
from repro.units import GB

#: Vocabulary sizes spanning high to low word repetition.
VOCABULARIES = (20, 100, 500, 2500, 12500)

_QUICK = dict(vocabularies=(20, 12500))


@register("fig23")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig23_hadoop_ratio.run", knobs)
    return _sweep(seed=seed, **(_QUICK if scale.name == "quick" else {}))


def _sweep(vocabularies=VOCABULARIES, intermediate_bytes: float = 2 * GB,
           seed: int = 1, config: TestbedConfig = TestbedConfig()
           ) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig23",
        description="WordCount shuffle+reduce vs measured output ratio",
        columns=("vocabulary", "measured_alpha", "plain_srt_s",
                 "netagg_srt_s", "relative_srt"),
    )
    emulation = HadoopEmulation(config)
    for vocabulary in vocabularies:
        text = generate_text(800, vocabulary=vocabulary, seed=seed)
        profile = measure_job_profile(wordcount_job(), _splits(text),
                                      use_combiner=False)
        plain = emulation.run(profile, intermediate_bytes, use_netagg=False)
        netagg = emulation.run(profile, intermediate_bytes, use_netagg=True)
        result.add_row(
            vocabulary=vocabulary,
            measured_alpha=profile.output_ratio,
            plain_srt_s=plain.shuffle_reduce_seconds,
            netagg_srt_s=netagg.shuffle_reduce_seconds,
            relative_srt=(netagg.shuffle_reduce_seconds
                          / plain.shuffle_reduce_seconds),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
