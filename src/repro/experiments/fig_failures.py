"""fig_failures -- FCT degradation and result exactness under faults.

Not a paper figure: a robustness experiment over the fault-injection
layer (§3.1's failure handling, exercised end to end).  One seeded
:class:`repro.faults.FaultSchedule` -- box crashes (a fraction of them
permanent), link flaps and capacity degradations -- is replayed against
three strategies at increasing fault rates:

- ``netagg``: on-path aggregation; crashed boxes drop out of the rate
  solve, in-flight segment flows are re-admitted on the rewired tree;
- ``edge``: a binary edge-server tree (no boxes -- only link flaps bite);
- ``none``: no aggregation (the same link flaps, largest flows).

The ``exact`` column runs the *functional* platform under the same
schedule (clock advanced into the first crash window so the shims
actually retry and fall back) and checks the aggregate is byte-identical
to a centralised computation -- graceful degradation must never change
results, only timing.
"""

from __future__ import annotations

from typing import Optional

from repro.aggregation import (
    BinaryTreeStrategy,
    NetAggStrategy,
    NoAggregationStrategy,
    deploy_boxes,
)
from repro.aggbox.functions import SearchResult, TopKFunction
from repro.core.platform import NetAggPlatform
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    simulate,
)
from repro.experiments import register
from repro.faults import (
    BOX_CRASH,
    FaultSchedule,
    PlatformFaultInjector,
)
from repro.faults.retry import RetryPolicy
from repro.netsim.metrics import fct_summary
from repro.topology.threetier import three_tier
from repro.wire.records import decode_search_results, encode_search_results

FAULT_RATES = (0.0, 0.1, 0.2, 0.4)

#: Workers represented in the platform exactness check.
_EXACT_WORKERS = 8


def _make_schedule(scale: SimScale, rate: float, horizon: float,
                   seed: int) -> Optional[FaultSchedule]:
    """One schedule per fault rate, shared verbatim across strategies.

    Targets are drawn from the *boxed* topology; strategies without
    boxes simply skip the box events (same link flaps for everyone).
    """
    if rate <= 0:
        return None
    topo = three_tier(scale.topo)
    deploy_boxes(topo)
    boxes = sorted(info.box_id for info in topo.all_boxes())
    links = sorted(
        link.link_id for link in topo.network.wire_links()
        if "->core:" in link.link_id
    )
    return FaultSchedule.generate(
        seed=seed * 7919 + int(rate * 1000),
        duration=horizon,
        boxes=boxes,
        links=links,
        workers=_EXACT_WORKERS,
        box_crashes=max(1, int(rate * len(boxes))),
        link_flaps=max(1, int(rate * len(links))),
        degradations=max(1, int(rate * len(boxes)) // 2),
        churns=1,
    )


def _run_arm(scale: SimScale, arm: str, seed: int,
             schedule: Optional[FaultSchedule]) -> tuple:
    """(p99 FCT, simulated end time) of one strategy under the schedule.

    Fault wiring goes through ``simulate(faults=...)``: the runner
    builds the injector, hands fault-aware strategies its fault view,
    and applies the schedule's events to the simulation.
    """
    if arm == "netagg":
        strategy, deploy = NetAggStrategy(), deploy_boxes
    elif arm == "edge":
        strategy, deploy = BinaryTreeStrategy(), None
    else:
        strategy, deploy = NoAggregationStrategy(), None
    result = simulate(scale, strategy, deploy=deploy, seed=seed,
                      faults=schedule)
    # Tiny scales / heavy schedules may drain nothing; degrade to an
    # explicit NaN row rather than dying inside FctSummary.of.
    end = max((record.drain_time for record in result.records.values()),
              default=0.0)
    return fct_summary(result, empty_ok=True).p99, end


def _check_exact(scale: SimScale, seed: int,
                 schedule: Optional[FaultSchedule]) -> bool:
    """Platform results must survive the schedule byte-identically."""
    topo = three_tier(scale.topo)
    deploy_boxes(topo)
    faults = PlatformFaultInjector(schedule) if schedule else None
    # Retries back off with seeded decorrelated jitter: same spread-out
    # probing a fleet would get, byte-identical results per seed.
    platform = NetAggPlatform(topo, faults=faults,
                              retry=RetryPolicy(decorrelated=True,
                                                seed=seed))
    function = TopKFunction(k=10)
    platform.register_app("topk", function,
                          encode_search_results, decode_search_results)
    if schedule is not None:
        crashes = schedule.events_for(kind=BOX_CRASH)
        if crashes:
            platform.advance_clock(crashes[0].time)
    hosts = sorted(topo.hosts())
    master = hosts[0]
    partials = [
        (host, [SearchResult(doc_id=i * 100 + j, score=float((i * 37 + j * 13)
                                                             % 97))
                for j in range(6)])
        for i, host in enumerate(hosts[1:1 + _EXACT_WORKERS])
    ]
    outcome = platform.execute_request("topk", f"exact:{seed}", master,
                                       partials)
    expected = function.merge([value for _, value in partials])
    return outcome.value == expected


@register("fig_failures")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        fault_rates=FAULT_RATES) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig_failures",
        description="p99 FCT and result exactness vs injected fault rate",
        columns=("fault_rate", "netagg_p99", "edge_p99", "none_p99",
                 "netagg_degradation", "exact"),
        notes="degradation = netagg p99 / fault-free netagg p99; "
              "exact = platform aggregate byte-identical under faults",
    )
    baseline_p99, baseline_end = _run_arm(scale, "netagg", seed, None)
    # The fault horizon covers the fault-free run end to end.
    horizon = max(baseline_end, 1e-6)
    for rate in fault_rates:
        schedule = _make_schedule(scale, rate, horizon, seed)
        netagg_p99 = baseline_p99 if schedule is None \
            else _run_arm(scale, "netagg", seed, schedule)[0]
        edge_p99 = _run_arm(scale, "edge", seed, schedule)[0]
        none_p99 = _run_arm(scale, "none", seed, schedule)[0]
        degradation = netagg_p99 / baseline_p99 if baseline_p99 > 0 \
            else float("nan")
        result.add_row(
            fault_rate=rate,
            netagg_p99=netagg_p99,
            edge_p99=edge_p99,
            none_p99=none_p99,
            netagg_degradation=degradation,
            exact=_check_exact(scale, seed, schedule),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
