"""Fig. 16 -- Solr network throughput vs number of clients.

Plain Solr saturates its frontend's 1 Gbps link; NetAgg keeps absorbing
partial results until the agg box's 10 Gbps link fills (sample function,
α = 5% so the frontend link never binds).
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.solr_driver import SolrEmulation, SolrEmulationParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)

CLIENTS = (5, 10, 20, 30, 50, 70)

_QUICK = dict(clients=(10, 50), duration=5.0)


@register("fig16")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig16_solr_throughput.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(clients=CLIENTS, duration: float = 10.0,
           config: TestbedConfig = TestbedConfig()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig16",
        description="Solr throughput (Gbps) vs clients, sample fn alpha=5%",
        columns=("clients", "solr_gbps", "netagg_gbps"),
    )
    for n_clients in clients:
        plain = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration)).run()
        netagg = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration, use_netagg=True)).run()
        result.add_row(
            clients=n_clients,
            solr_gbps=plain.throughput_gbps,
            netagg_gbps=netagg.throughput_gbps,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
