"""Fig. 15 -- processing rate of an in-memory local aggregation tree.

Micro-benchmark of one agg box's pipelined tree: throughput vs number of
leaves for several thread-pool sizes, WordCount combine at α=10%.
Paper shape: throughput grows with leaves (more schedulable tasks) and
saturates near the 10 Gbps ingest with a large enough pool.
"""

from __future__ import annotations

from repro.aggbox.localtree import LocalTreeModel, TreeModelParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.units import to_gbps

LEAVES = (2, 4, 8, 16, 32, 64)
THREADS = (8, 16, 24, 32)

#: Reduced sweep used at ``quick`` scale (CI); other scales run the
#: paper's full grid.
_QUICK = dict(leaves=(4, 16, 64), threads=(8, 32))


@register("fig15")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig15_localtree.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(leaves=LEAVES, threads=THREADS, alpha: float = 0.10
           ) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig15",
        description="local aggregation tree throughput (Gbps) vs leaves",
        columns=("leaves",) + tuple(f"threads_{t}" for t in threads),
    )
    for n_leaves in leaves:
        row = {"leaves": n_leaves}
        for n_threads in threads:
            model = LocalTreeModel(TreeModelParams(
                leaves=n_leaves, threads=n_threads, alpha=alpha,
            ))
            row[f"threads_{n_threads}"] = to_gbps(model.run().throughput)
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
