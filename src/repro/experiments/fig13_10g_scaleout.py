"""Fig. 13 -- NetAgg in a 10 Gbps network, with box scale-out.

With 10 Gbps edges the single agg box (9.2 Gbps processing) becomes the
bottleneck at low over-subscription; attaching two or four boxes per
switch restores the benefit -- the paper's argument that NetAgg scales
out with future network upgrades.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99
from repro.units import Gbps

OVERSUBSCRIPTIONS = (1.0, 2.0, 4.0, 8.0)
BOXES_PER_SWITCH = (1, 2, 4)


@register("fig13")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig13",
        description="10G network: 99th-pct FCT relative to rack, "
                    "1x/2x/4x boxes per switch",
        columns=("oversubscription",) + tuple(
            f"x{n}_boxes" for n in BOXES_PER_SWITCH
        ),
    )
    ten_g = scale.with_topo(edge_rate=Gbps(10.0))
    # Flows must be larger to load a 10G fabric comparably.
    ten_g = ten_g.with_workload(
        mean_flow_size=scale.workload.mean_flow_size * 10,
        max_flow_size=scale.workload.max_flow_size * 10,
    )
    for oversub in OVERSUBSCRIPTIONS:
        sub = ten_g.with_topo(oversubscription=oversub)
        baseline = simulate(sub, RackLevelStrategy(), seed=seed)
        row = {"oversubscription": oversub}
        for n_boxes in BOXES_PER_SWITCH:
            # Applications spread their aggregation trees across the
            # boxes of a switch (§3.1): one disjoint tree per box, so a
            # job's ingest scales with the attached boxes.
            sim = simulate(
                sub.with_workload(n_trees=n_boxes),
                NetAggStrategy(),
                deploy=lambda t, n=n_boxes: deploy_boxes(
                    t, link_rate=Gbps(10.0), boxes_per_switch=n
                ),
                seed=seed,
            )
            row[f"x{n_boxes}_boxes"] = relative_p99(sim, baseline)
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
