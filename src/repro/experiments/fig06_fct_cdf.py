"""Fig. 6 -- CDF of flow completion time, all traffic.

Four strategies over the same workload.  The paper's shape: binary and
chain improve the tail over rack but hurt mid-distribution flows (their
extra edge-link usage squeezes other traffic); NetAgg improves the whole
distribution.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    NetAggStrategy,
    RackLevelStrategy,
    deploy_boxes,
)
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.experiments.sweep import run_parallel
from repro.netsim.metrics import fct_cdf

STRATEGIES = (
    (RackLevelStrategy(), None),
    (BinaryTreeStrategy(), None),
    (ChainStrategy(), None),
    (NetAggStrategy(), deploy_boxes),
)

#: CDF fractions sampled into the result rows.
FRACTIONS = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00)


def _strategy_fcts(task: Tuple[int, SimScale, int]) -> List[float]:
    """One strategy's sorted FCT list (module-level: pool-picklable)."""
    index, scale, seed = task
    strategy, deploy = STRATEGIES[index]
    sim = simulate(scale, strategy, deploy=deploy, seed=seed)
    return sorted(sim.fcts())


def cdfs(scale: SimScale = DEFAULT, seed: int = 1,
         aggregatable=None) -> Dict[str, List[Tuple[float, float]]]:
    """Full CDFs per strategy (used by Fig. 7 and the plots)."""
    out = {}
    for strategy, deploy in STRATEGIES:
        result = simulate(scale, strategy, deploy=deploy, seed=seed)
        out[strategy.name] = fct_cdf(result, aggregatable=aggregatable)
    return out


@register("fig06")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig06",
        description="FCT at sampled CDF fractions, all traffic (seconds)",
        columns=("strategy",) + tuple(f"p{int(f * 100)}" for f in FRACTIONS),
    )
    tasks = [(index, scale, seed) for index in range(len(STRATEGIES))]
    per_strategy = run_parallel(_strategy_fcts, tasks)
    for (strategy, _deploy), fcts in zip(STRATEGIES, per_strategy):
        row = {"strategy": strategy.name}
        for fraction in FRACTIONS:
            index = min(len(fcts) - 1, int(fraction * len(fcts)) - 1)
            row[f"p{int(fraction * 100)}"] = fcts[max(index, 0)]
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
