"""fig_selfheal -- the self-healing control loop under drifting load.

Not a paper figure: the flow-level face of the optimizer control plane
(``repro.core.optimizer``).  A drifting Zipfian workload concentrates
each phase's jobs onto one hot rack, and the hot rack's ToR box is
simultaneously degraded (a ``box-overload`` processing slow-down that
*follows the drift*): think of a box whose co-tenant steals its cores
exactly where the traffic lands -- the situation §4's "adapt to
changing network conditions" argument is about.  Two arms replay the
same workload against the same degradation schedule:

- ``opt``: NetAgg with the control loop ticking at every job arrival.
  The auditor's utilization feed is the plan-time concurrent fan-in
  demand over each box's *effective* (degradation-adjusted)
  processing rate -- the flow-level stand-in for the platform's
  pressure heartbeats; the ``rebalance_hot_edges`` strategy migrates
  work off boxes above the hot threshold (two-phase
  drain-then-cutover at the plan level) and returns drained boxes to
  the planner once the hotspot drifts away and they cool below the
  cold threshold.  The drained set feeds ``NetAggStrategy``'s fault
  view, so later jobs rewire around migrated boxes through the §3.1
  path and their aggregation lands on boxes with headroom.
- ``noopt``: the same drifting workload and degradations, no control
  loop; every job piles onto the momentarily-hot, slowed box.

The headline metric is the **SLO-violation fraction**: the share of
offered worker bytes whose flow completes outside a fixed SLO (a
multiple of the uncongested p99 FCT).  With the optimizer on it should
strictly dominate (be lower than) the optimizer-off arm at every load
point where violations occur at all.

Every optimizer decision is traced: ``python -m repro analyze --run
fig_selfheal`` shows the migrations in the diagnosis's ``optimizer``
section, attributed by target box, strategy and reason.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Sequence, Set, Tuple

from repro.aggregation import NetAggStrategy, deploy_boxes
from repro.core.optimizer import (
    Auditor,
    OptimizerLoop,
    PlanApplier,
    StrategyConfig,
)
from repro.core.failure import rewire_failed_box
from repro.core.tree import TreeBuilder
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    simulate,
)
from repro.faults import FaultEvent, FaultSchedule, SimFaultInjector
from repro.faults.schedule import BOX_OVERLOAD
from repro.netsim.metrics import fct_summary
from repro.netsim.simulator import FlowSim
from repro.topology.base import Topology, link_id
from repro.topology.threetier import three_tier
from repro.workload.synthetic import AggJob, Workload, generate_workload

LOADS = (1.0, 1.5, 2.0, 3.0)

#: SLO = this multiple of the uncongested (unskewed, lowest-load) p99.
SLO_MULTIPLIER = 4.0

#: Arrival span (seconds) the offered load is spread over.
ARRIVAL_SPAN = 2.0

#: Number of hot-rack phases the Zipf rank permutation rotates through.
DRIFT_PHASES = 4

#: Zipf exponent over rack ranks (rank 1 = the phase's hot rack).
ZIPF_S = 1.4

#: Sliding window (seconds) of the plan-time fan-in account: jobs
#: arriving within this window are treated as concurrent demand.
UTIL_WINDOW = 0.25

#: Processing slow-down on the hot rack's ToR box during its phase.
DEGRADE_SEVERITY = 16.0

#: Control-loop thresholds: migrate above hot, return below cold.
#: Utilization is offered fan-in rate over *effective* processing
#: capacity, so 1.0 is the saturation point.  Hot sits well above it:
#: plain concentration is what on-path aggregation is *for* (migrating
#: away from a merely-busy box forfeits the uplink byte reduction), so
#: only boxes whose effective rate collapsed under degradation -- where
#: aggregating there is slower than not aggregating at all -- qualify.
LOOP_CONFIG = StrategyConfig(hot_utilization=2.0, cold_utilization=0.5,
                             max_actions=2, min_active=2)


def _loaded_scale(scale: SimScale, load: float) -> SimScale:
    return scale.with_workload(
        n_flows=max(8, int(scale.workload.n_flows * load)),
        arrival_process="uniform",
        arrival_span=ARRIVAL_SPAN,
    )


def _phase_offset(phase: int, n_racks: int) -> int:
    """Rack index the Zipf rank permutation starts at in ``phase``."""
    return (phase * max(1, n_racks // DRIFT_PHASES)) % n_racks


def _tor_box_of_rack(topo: Topology) -> Dict[int, str]:
    """rack index -> the ToR-tier agg box serving that rack."""
    boxes: Dict[int, str] = {}
    for info in topo.all_boxes():
        node = topo.node(info.box_id)
        if info.box_id.startswith("box:tor:") and node.rack >= 0:
            boxes.setdefault(node.rack, info.box_id)
    return boxes


def drift_schedule(topo: Topology) -> FaultSchedule:
    """Degradation windows following the drifting hot rack.

    Each drift phase slows the phase's hot-rack ToR box by
    ``DEGRADE_SEVERITY`` for the phase's slice of the arrival span
    (plus a tail while its flows drain) -- the co-moving interference
    the optimizer exists to route around.
    """
    racks = _rack_hosts(topo)
    tor_boxes = _tor_box_of_rack(topo)
    phase_len = ARRIVAL_SPAN / DRIFT_PHASES
    events = []
    for phase in range(DRIFT_PHASES):
        rack = _phase_offset(phase, len(racks))
        box_id = tor_boxes.get(rack)
        if box_id is None:
            continue
        events.append(FaultEvent(
            time=phase * phase_len,
            kind=BOX_OVERLOAD,
            target=box_id,
            severity=DEGRADE_SEVERITY,
            duration=phase_len * 1.25,
        ))
    return FaultSchedule(events)


def _rack_hosts(topo: Topology) -> List[List[str]]:
    """Hosts grouped by rack, rack index order."""
    racks: Dict[int, List[str]] = {}
    for host in sorted(topo.hosts()):
        racks.setdefault(topo.rack_of(host), []).append(host)
    return [racks[r] for r in sorted(racks)]


def _zipf_rank(rng: random.Random, n: int) -> int:
    """One Zipf(ZIPF_S) draw over ranks ``0..n-1`` (0 = hottest)."""
    weights = [1.0 / (r + 1) ** ZIPF_S for r in range(n)]
    total = sum(weights)
    pick = rng.random() * total
    for rank, weight in enumerate(weights):
        pick -= weight
        if pick <= 0.0:
            return rank
    return n - 1


def skew_workload(workload: Workload, topo: Topology,
                  seed: int) -> Workload:
    """Re-place workers under a drifting Zipfian rack distribution.

    Each job's workers move to hosts drawn rack-first: the rack comes
    from a Zipf distribution over rack *ranks*, and the rank-to-rack
    permutation rotates once per drift phase (phase = which slice of
    the arrival span the job starts in), so the hot rack walks across
    the deployment during the run.  Job arrivals are re-spread evenly
    over the span (the generator's sorted-arrival pool clusters the
    job stream at the front, which would collapse every job into phase
    0); flow sizes, masters and background traffic are untouched --
    the skew moves only *where* and *when* aggregation happens.
    """
    racks = _rack_hosts(topo)
    n_racks = len(racks)
    rng = random.Random(seed * 9176 + 13)
    jobs: List[AggJob] = []
    ordered = sorted(workload.jobs, key=lambda j: (j.start_time, j.job_id))
    for index, job in enumerate(ordered):
        start = ARRIVAL_SPAN * (index + 0.5) / len(ordered)
        phase = min(DRIFT_PHASES - 1,
                    int(start / ARRIVAL_SPAN * DRIFT_PHASES))
        offset = _phase_offset(phase, n_racks)
        used = {job.master}
        hosts: List[str] = []
        for _ in job.workers:
            rank = _zipf_rank(rng, n_racks)
            host = None
            for step in range(n_racks):
                rack = racks[(offset + rank + step) % n_racks]
                free = [h for h in rack if h not in used]
                if free:
                    host = free[rng.randrange(len(free))]
                    break
            if host is None:  # deployment smaller than the job
                host = racks[(offset + rank) % n_racks][0]
            used.add(host)
            hosts.append(host)
        workers = tuple(
            (host, size) for host, (_, size) in zip(hosts, job.workers)
        )
        jobs.append(replace(job, workers=workers, start_time=start))
    return Workload(jobs=jobs, background=list(workload.background))


class PlanDrainShim:
    """The drain-capable surface :class:`PlanApplier` needs, plan-side.

    No box runtimes exist at plan time, so migrations reduce to their
    drain phase (nothing to park); the drained set is the output the
    planner consumes.
    """

    def __init__(self, topo: Topology) -> None:
        self.topology = topo
        self.clock = 0.0
        self._drained: Set[str] = set()

    def drain_box(self, box_id: str) -> None:
        self._drained.add(box_id)

    def undrain_box(self, box_id: str) -> None:
        self._drained.discard(box_id)

    def drained_boxes(self) -> Set[str]:
        return set(self._drained)

    def failed_boxes(self) -> Set[str]:
        return set()


class _PlanBeat:
    """Minimal heartbeat for the plan-time auditor (always healthy)."""

    __slots__ = ("state", "pending", "sheds", "flushes")

    def __init__(self) -> None:
        self.state = "healthy"
        self.pending = 0
        self.sheds = 0
        self.flushes = 0


class SelfHealController:
    """Plan-time control loop for the ``opt`` arm.

    ``view(job)`` is installed as ``NetAggStrategy``'s fault view, so
    it runs once per job in arrival order: it advances the utilization
    window to the job's start, ticks the optimizer (audit ->
    ``rebalance_hot_edges`` -> drain/undrain through the real
    :class:`PlanApplier`, ``optimizer.*`` trace records included),
    charges the job's surviving tree boxes, and returns the drained
    set for the strategy to rewire around.
    """

    def __init__(self, topo: Topology, schedule: FaultSchedule,
                 config: StrategyConfig = LOOP_CONFIG) -> None:
        self._topo = topo
        self._schedule = schedule
        self._builder = TreeBuilder(topo)
        capacities = topo.network.capacities()
        self._capacity = {
            info.box_id: capacities[info.proc_link]
            for info in topo.all_boxes()
        }
        self._edge = {
            host: capacities[link_id(host, topo.tor_of(host))]
            for host in topo.hosts()
        }
        self._charges: List[Tuple[float, str, float]] = []
        self._shim = PlanDrainShim(topo)
        auditor = Auditor(
            health=self._health,
            utilization=self._utilization,
            drained=self._shim.drained_boxes,
        )
        applier = PlanApplier(self._shim, min_active=config.min_active)
        self.loop = OptimizerLoop(auditor, "rebalance_hot_edges",
                                  applier, config)
        self.migrations = 0
        self.undrains = 0

    def _health(self) -> Dict[str, _PlanBeat]:
        return {box_id: _PlanBeat() for box_id in sorted(self._capacity)}

    def _utilization(self) -> Dict[str, float]:
        """Concurrent fan-in demand over *effective* processing rate.

        Each worker of each recent job offers its edge-link rate into
        its entry box while its flow drains; summing those rates over
        the window and dividing by the box's degradation-adjusted
        processing rate puts the saturation point at 1.0.  The
        degradation factor is the plan-time stand-in for the box's own
        pressure heartbeat (a deployed box knows its service rate
        collapsed; the planner learns it here the same way
        ``fig_overload``'s admission view does).
        """
        now = self._shim.clock
        demand = {box_id: 0.0 for box_id in self._capacity}
        for at, box_id, rate in self._charges:
            if at > now - UTIL_WINDOW:
                demand[box_id] += rate
        return {
            box_id: total * self._schedule.overload_at(box_id, now)
            / self._capacity[box_id]
            for box_id, total in demand.items()
        }

    def view(self, job: AggJob) -> Set[str]:
        t = job.start_time
        self._shim.clock = max(self._shim.clock, t)
        self._charges = [c for c in self._charges
                         if c[0] > t - UTIL_WINDOW]
        tick = self.loop.tick(t)
        if tick.result is not None:
            self.migrations += len(tick.result.migrations)
            self.undrains += sum(
                1 for a in tick.result.applied if a.kind == "undrain")
        drained = self._shim.drained_boxes()
        # Charge the boxes this job will actually use: build its trees,
        # rewire the drained boxes out exactly as the strategy will,
        # and charge each worker's edge rate to its entry box.
        trees = self._builder.build_many(
            job.job_id, job.master, [h for h, _ in job.workers],
            job.n_trees,
        )
        for tree in trees:
            for box_id in sorted(drained):
                if box_id in tree.boxes:
                    tree = rewire_failed_box(tree, box_id)
            for index, (host, _) in enumerate(job.workers):
                entry = tree.worker_entry[index]
                if entry is not None:
                    self._charges.append((t, entry, self._edge[host]))
        return drained


def _violations(result, slo: float) -> float:
    """SLO-violation fraction: offered worker bytes landing late."""
    offered = 0.0
    late = 0.0
    for record in result.records.values():
        if record.spec.kind != "worker":
            continue
        offered += record.spec.size
        if record.fct > slo:
            late += record.spec.size
    return late / max(offered, 1e-9)


def _run_arm(scale: SimScale, arm: str, seed: int) -> tuple:
    """(result, controller) of one arm at one load point."""
    topo = three_tier(scale.topo)
    deploy_boxes(topo)
    schedule = drift_schedule(topo)
    workload = skew_workload(
        generate_workload(topo, scale.workload, seed=seed), topo, seed)
    controller = None
    if arm == "opt":
        controller = SelfHealController(topo, schedule)
        strategy = NetAggStrategy(name="netagg-selfheal",
                                  fault_view=controller.view)
    else:
        strategy = NetAggStrategy(name="netagg-drift")
    sim = FlowSim(topo.network, label=strategy.name)
    sim.add_flows(strategy.plan(workload, topo, None))
    SimFaultInjector(topo, schedule).apply(sim, workload)
    return sim.run(), controller


@register("fig_selfheal")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        loads: Sequence[float] = LOADS) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig_selfheal",
        description="SLO-violation fraction under drifting Zipfian "
                    "load, with/without the self-healing optimizer",
        columns=("load", "opt_viol", "noopt_viol", "opt_p99",
                 "noopt_p99", "migrations", "undrains"),
        notes="viol = fraction of offered worker bytes finishing past "
              f"the SLO ({SLO_MULTIPLIER:g}x uncongested p99); "
              "migrations/undrains = optimizer actions applied in the "
              "opt arm (see the trace's optimizer.* records)",
    )
    # The SLO anchors to an uncongested, unskewed run at the lowest load.
    reference = simulate(_loaded_scale(scale, min(loads)),
                         NetAggStrategy(), deploy=deploy_boxes, seed=seed)
    slo = SLO_MULTIPLIER * fct_summary(reference, empty_ok=True).p99
    for load in sorted(loads):
        loaded = _loaded_scale(scale, load)
        opt, controller = _run_arm(loaded, "opt", seed)
        noopt, _ = _run_arm(loaded, "noopt", seed)
        result.add_row(
            load=load,
            opt_viol=_violations(opt, slo),
            noopt_viol=_violations(noopt, slo),
            opt_p99=fct_summary(opt, empty_ok=True).p99,
            noopt_p99=fct_summary(noopt, empty_ok=True).p99,
            migrations=controller.migrations,
            undrains=controller.undrains,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
