"""fig_burnrate -- burn-rate alert lead time ahead of SLO exhaustion.

Not a paper figure: the live-telemetry face of ``repro.obs.live``.
The question a burn-rate alert must answer is *how much earlier than
the actual SLO breach does it fire?* -- an alert that arrives after
the error budget is spent is a post-mortem, not an alert.

The workload is ``fig_selfheal``'s drifting hotspot, optimizer off
(the ``noopt`` arm): a Zipfian worker placement whose hot rack walks
across the deployment while that rack's ToR box is degraded, so each
phase manufactures a real latency regression.  Per load point:

- every *worker* flow completion becomes one SLO event on the virtual
  clock (good iff its FCT is within the SLO, the same
  ``SLO_MULTIPLIER x uncongested p99`` anchor ``fig_selfheal`` uses),
  streamed in completion order into an :class:`~repro.obs.live
  .SloMonitor` with the standard fast/slow multi-window objective;
- ``alert_at`` is the first burn-rate alert's (virtual) time;
- ``breach_at`` is when the run's error budget is actually exhausted:
  the first instant the *cumulative* bad fraction exceeds the
  objective's budget (after a small warm-up so one early straggler
  cannot 'breach' a three-event stream);
- ``lead_s = breach_at - alert_at`` is the headline: positive means
  the multi-window alert fired *before* the budget was gone.

At loads that never exhaust the budget the alert should ideally stay
quiet (the slow 1x-budget window is the guard); ``alerts`` makes the
false-positive behaviour visible per row.  A row that never alerts or
never breaches reports -1 for the corresponding time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments import register
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale
from repro.experiments.fig_selfheal import (
    SLO_MULTIPLIER,
    _loaded_scale,
    _run_arm,
    _violations,
)
from repro.netsim.metrics import fct_summary
from repro.obs.live import SloMonitor, SloObjective

LOADS = (1.0, 2.0, 3.0)

#: The per-run SLO objective.  Windows are sized to the drift phase
#: (0.5 s of the 2 s arrival span): the fast window sees one burst,
#: the slow window spans a whole phase.
OBJECTIVE = SloObjective(key="flows", target=0.9,
                         fast_window=0.125, slow_window=0.5,
                         fast_burn=5.0, slow_burn=1.0)

#: Completions before the cumulative budget check is trusted.
BREACH_WARMUP = 20


def completion_events(result, slo: float) -> List[Tuple[float, bool]]:
    """(drain_time, good) of every worker flow, completion order."""
    events = [
        (record.drain_time, record.fct <= slo)
        for record in result.records.values()
        if record.spec.kind == "worker"
    ]
    events.sort(key=lambda event: event[0])
    return events


def breach_time(events: Sequence[Tuple[float, bool]], budget: float,
                warmup: int = BREACH_WARMUP) -> float:
    """When the cumulative bad fraction first exceeds the budget.

    -1.0 when the stream never exhausts it.  ``warmup`` suppresses the
    degenerate early breach (1 bad of the first 2 events is a 50% bad
    fraction but says nothing about the run).
    """
    bad = 0
    for index, (at, good) in enumerate(events):
        if not good:
            bad += 1
        if index + 1 >= warmup and bad / (index + 1) > budget:
            return at
    return -1.0


def first_alert(events: Sequence[Tuple[float, bool]],
                objective: SloObjective = OBJECTIVE,
                ) -> Tuple[float, int]:
    """(first alert time or -1.0, total alerts) over the stream."""
    monitor = SloMonitor(template=objective)
    monitor.add_objective(objective)
    for at, good in events:
        monitor.record(objective.key, at, good)
        monitor.evaluate(at)
    if not monitor.alerts:
        return -1.0, 0
    return monitor.alerts[0].at, len(monitor.alerts)


@register("fig_burnrate")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        loads: Sequence[float] = LOADS) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig_burnrate",
        description="Burn-rate alert lead time vs actual SLO budget "
                    "exhaustion under the drifting-hotspot workload",
        columns=("load", "alerts", "alert_at", "breach_at", "lead_s",
                 "viol_frac"),
        notes="SLO = {mult:g}x uncongested p99; objective: target "
              "{target:g}, fast {fast:g}s@>={fb:g}x / slow {slow:g}s"
              "@>={sb:g}x burn; breach = cumulative bad fraction past "
              "the {budget:g} budget; lead = breach - alert (-1 = "
              "never)".format(
                  mult=SLO_MULTIPLIER, target=OBJECTIVE.target,
                  fast=OBJECTIVE.fast_window, fb=OBJECTIVE.fast_burn,
                  slow=OBJECTIVE.slow_window, sb=OBJECTIVE.slow_burn,
                  budget=OBJECTIVE.budget),
    )
    # Same anchor as fig_selfheal: an uncongested, unskewed reference
    # run at the lowest load sets the latency SLO.
    from repro.aggregation import NetAggStrategy, deploy_boxes
    from repro.experiments.common import simulate

    reference = simulate(_loaded_scale(scale, min(loads)),
                         NetAggStrategy(), deploy=deploy_boxes, seed=seed)
    slo = SLO_MULTIPLIER * fct_summary(reference, empty_ok=True).p99
    for load in sorted(loads):
        sim_result, _ = _run_arm(_loaded_scale(scale, load), "noopt",
                                 seed)
        events = completion_events(sim_result, slo)
        alert_at, alerts = first_alert(events)
        breach_at = breach_time(events, OBJECTIVE.budget)
        lead = (breach_at - alert_at
                if alert_at >= 0.0 and breach_at >= 0.0 else -1.0)
        result.add_row(
            load=load,
            alerts=alerts,
            alert_at=alert_at,
            breach_at=breach_at,
            lead_s=lead,
            viol_frac=_violations(sim_result, slo),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
