"""Fig. 17 -- Solr 99th-percentile response latency vs clients.

Plain Solr's latency climbs steeply once the frontend link saturates;
NetAgg serves far higher load at low latency by keeping that link clear.
"""

from __future__ import annotations

from repro.cluster.deployment import TestbedConfig
from repro.cluster.solr_driver import SolrEmulation, SolrEmulationParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.experiments.fig16_solr_throughput import CLIENTS

_QUICK = dict(clients=(50,), duration=5.0)


@register("fig17")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig17_solr_latency.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(clients=CLIENTS, duration: float = 10.0,
           config: TestbedConfig = TestbedConfig()) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig17",
        description="Solr 99th-pct response latency (s) vs clients",
        columns=("clients", "solr_p99_s", "netagg_p99_s"),
    )
    for n_clients in clients:
        plain = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration)).run()
        netagg = SolrEmulation(config, SolrEmulationParams(
            n_clients=n_clients, duration=duration, use_netagg=True)).run()
        result.add_row(
            clients=n_clients,
            solr_p99_s=plain.p99_latency,
            netagg_p99_s=netagg.p99_latency,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
