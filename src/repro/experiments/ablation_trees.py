"""Ablation -- multiple aggregation trees per application (§3.1).

A single tree funnels every job through one lane of the multi-rooted
topology; k disjoint trees spread load over k cores/aggregation
switches.  The effect shows on aggregatable-flow FCT under core
contention (high over-subscription).
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import fct_summary, relative_p99

TREE_COUNTS = (1, 2, 4)


@register("ablation_trees")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        oversubscription: float = 8.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-trees",
        description="NetAgg with k disjoint aggregation trees "
                    f"(oversubscription {oversubscription:.0f}:1)",
        columns=("n_trees", "relative_p99", "agg_p99_s"),
    )
    sub = scale.with_topo(oversubscription=oversubscription)
    baseline = simulate(sub, RackLevelStrategy(), seed=seed)
    for n_trees in TREE_COUNTS:
        tree_scale = sub.with_workload(n_trees=n_trees)
        sim = simulate(tree_scale, NetAggStrategy(), deploy=deploy_boxes,
                       seed=seed)
        result.add_row(
            n_trees=n_trees,
            relative_p99=relative_p99(sim, baseline),
            agg_p99_s=fct_summary(sim, aggregatable=True).p99,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
