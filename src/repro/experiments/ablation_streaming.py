"""Ablation -- pipelined vs store-and-forward local aggregation (§3.2.1).

The agg box streams *chunks* through its local tree ("executed in a
pipelined fashion by streaming data across the aggregation tasks").
The ablation coarsens the streaming granularity up to whole partial
results -- at which point every merge waits for its complete inputs
(store-and-forward) and the tree's levels serialise, costing throughput
and buffering.
"""

from __future__ import annotations

from repro.aggbox.localtree import LocalTreeModel, TreeModelParams
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)
from repro.units import MB, to_gbps

#: Streaming granularities, fine to whole-input.
CHUNK_SIZES = (64_000.0, 256_000.0, 1 * MB, 8 * MB)


_QUICK = dict(leaves=16, threads=8)


@register("ablation_streaming")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("ablation_streaming.run", knobs)
    return _sweep(**(_QUICK if scale.name == "quick" else {}))


def _sweep(chunk_sizes=CHUNK_SIZES, leaves: int = 32,
           threads: int = 16, bytes_per_leaf: float = 8 * MB
           ) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation-streaming",
        description="local-tree throughput (Gbps) vs streaming chunk size "
                    "(largest = store-and-forward)",
        columns=("chunk_mb", "throughput_gbps", "tasks"),
    )
    for chunk in chunk_sizes:
        model = LocalTreeModel(TreeModelParams(
            leaves=leaves, threads=threads, chunk_bytes=chunk,
            bytes_per_leaf=bytes_per_leaf,
        ))
        outcome = model.run()
        result.add_row(
            chunk_mb=chunk / MB,
            throughput_gbps=to_gbps(outcome.throughput),
            tasks=outcome.tasks_executed,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
