"""Fig. 25 -- CPU sharing with fixed-weight WFQ (the failure case).

Solr and Hadoop co-located on one agg box, both targeting a 50% CPU
share.  A Solr aggregation task runs ~30 ms, a Hadoop task ~1 ms, so
fixed 50/50 *pick* probabilities hand almost all CPU time to Solr --
Hadoop starves (the paper's motivation for the adaptive scheduler).
"""

from __future__ import annotations

from repro.aggbox.scheduler import SchedulerParams, TaskScheduler, WorkloadSpec
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    reject_legacy_knobs,
)

SOLR_TASK_SECONDS = 0.030
HADOOP_TASK_SECONDS = 0.001

_QUICK = dict(duration=20.0)


@register("fig25")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        **knobs) -> ExperimentResult:
    if knobs:
        reject_legacy_knobs("fig25_fair_fixed.run", knobs)
    return _sweep(seed=seed, **(_QUICK if scale.name == "quick" else {}))


def _sweep(duration: float = 30.0, seed: int = 1,
           adaptive: bool = False) -> ExperimentResult:
    scheduler = TaskScheduler(
        [
            WorkloadSpec("solr", task_seconds=SOLR_TASK_SECONDS,
                         target_share=0.5),
            WorkloadSpec("hadoop", task_seconds=HADOOP_TASK_SECONDS,
                         target_share=0.5),
        ],
        SchedulerParams(adaptive=adaptive),
        seed=seed,
    )
    outcome = scheduler.run(duration)
    label = "adaptive" if adaptive else "fixed"
    result = ExperimentResult(
        experiment="fig26" if adaptive else "fig25",
        description=f"CPU share over time, {label}-weight WFQ "
                    "(solr vs hadoop, 50/50 target)",
        columns=("time_s", "solr_share", "hadoop_share"),
        notes=f"overall: solr={outcome.overall_share('solr'):.2f} "
              f"hadoop={outcome.overall_share('hadoop'):.2f}",
    )
    for when, snapshot in outcome.timeline:
        result.add_row(
            time_s=when,
            solr_share=snapshot["solr"],
            hadoop_share=snapshot["hadoop"],
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
