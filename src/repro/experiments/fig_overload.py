"""fig_overload -- goodput and p99 FCT vs offered load under overload.

Not a paper figure: the flow-level face of the overload-control plane
(PR 3).  Offered load scales the workload's flow count over a fixed
arrival span while a seeded schedule of ``box-overload`` (service
slow-down) and ``box-shed`` (refused ingress) windows -- sized with the
load factor -- replays against three strategies:

- ``ctrl``: NetAgg *with* overload control: the planner consults a
  deterministic admission view (per-box token buckets over job
  arrivals, plus the schedule's overload/shed windows) and re-plans new
  jobs' trees away from saturated boxes -- the flow-level analogue of
  the platform's pressured-health NACK + re-planning path;
- ``nc``: NetAgg *without* control: every job uses its planned boxes
  regardless of saturation, so flows pile into slowed processing links;
- ``edge``: a binary edge-server tree (no boxes to overload).

Goodput counts the bytes of worker flows completing within a fixed SLO
(a multiple of the uncongested p99 FCT), divided by the run's horizon.
With control, goodput should degrade gracefully as load grows; without,
it falls off a cliff once the overload windows trap enough traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.aggregation import (
    BinaryTreeStrategy,
    NetAggStrategy,
    deploy_boxes,
)
from repro.core.admission import TokenBucket
from repro.core.tree import TreeBuilder
from repro.experiments import register
from repro.experiments.common import (
    DEFAULT,
    ExperimentResult,
    SimScale,
    simulate,
)
from repro.faults import FaultSchedule
from repro.netsim.metrics import fct_summary
from repro.topology.base import Topology
from repro.topology.threetier import three_tier
from repro.workload.synthetic import AggJob

LOADS = (0.5, 1.0, 1.5, 2.0, 3.0)

#: The SLO is this multiple of the uncongested (no-fault, lowest-load)
#: NetAgg p99 FCT; goodput counts bytes landing inside it.
SLO_MULTIPLIER = 4.0

#: Fraction of a box's processing capacity the plan-time token bucket
#: admits as sustained load (headroom for bursts and background flows).
ADMIT_FRACTION = 0.7

#: Arrival span (seconds) the offered load is spread over.
ARRIVAL_SPAN = 2.0


class OverloadAdmission:
    """Plan-time admission view over a job stream (the ``ctrl`` arm).

    For each job (in arrival order -- planning order is arrival order,
    which keeps the buckets deterministic) the job's prospective trees
    are built and each participating box is charged its share of the
    job's bytes against a per-box token bucket refilling at
    ``ADMIT_FRACTION`` of the box's processing capacity.  A box denies
    the job when its bucket is dry *or* the fault schedule has it
    inside an overload/shed window at the job's start -- the flow-level
    stand-in for the platform's health feed.  Denied boxes are rewired
    out of that job's trees (spill-to-parent, ultimately direct to the
    master), exactly like a NACKed sender walking its ladder.
    """

    def __init__(self, topo: Topology,
                 schedule: Optional[FaultSchedule]) -> None:
        self._topo = topo
        self._schedule = schedule
        self._builder = TreeBuilder(topo)
        capacities = topo.network.capacities()
        self._buckets = {
            info.box_id: TokenBucket(
                rate=ADMIT_FRACTION * capacities[info.proc_link],
                burst=ADMIT_FRACTION * capacities[info.proc_link],
            )
            for info in topo.all_boxes()
        }
        self.denials = 0

    def view(self, job: AggJob) -> Set[str]:
        """Boxes this job must plan around (the strategy's fault view)."""
        t = job.start_time
        trees = self._builder.build_many(
            job.job_id, job.master, [h for h, _ in job.workers], job.n_trees,
        )
        boxes = sorted({b for tree in trees for b in tree.boxes})
        if not boxes:
            return set()
        denied: Set[str] = set()
        share = job.total_bytes / len(boxes)
        for box_id in boxes:
            if self._schedule is not None and (
                    self._schedule.shedding_at(box_id, t)
                    or self._schedule.overload_at(box_id, t) > 1.0):
                denied.add(box_id)
                continue
            if not self._buckets[box_id].try_take(t, share):
                denied.add(box_id)
        self.denials += len(denied)
        return denied


def _loaded_scale(scale: SimScale, load: float) -> SimScale:
    """Scale the offered load: more flows over the same arrival span."""
    return scale.with_workload(
        n_flows=max(8, int(scale.workload.n_flows * load)),
        arrival_process="uniform",
        arrival_span=ARRIVAL_SPAN,
    )


def _make_schedule(scale: SimScale, load: float,
                   seed: int) -> Optional[FaultSchedule]:
    """Overload/shed windows scaled with the load factor *and* the
    deployment size, so saturation tracks the boxes actually in use at
    every scale (a fixed window count vanishes into a large topology).
    """
    topo = three_tier(scale.topo)
    deploy_boxes(topo)
    boxes = sorted(info.box_id for info in topo.all_boxes())
    overloads = int(load * max(4, len(boxes)))
    sheds = int(load * max(2, len(boxes) // 2))
    if overloads + sheds == 0:
        return None
    return FaultSchedule.generate(
        seed=seed * 6007 + int(load * 1000),
        duration=ARRIVAL_SPAN,
        boxes=boxes,
        overloads=overloads,
        sheds=sheds,
    )


def _goodput(result, slo: float) -> float:
    """Fraction of offered worker bytes whose FCT lands within the SLO.

    1.0 = every partial delivered in time; a cliff shows as a sharp
    drop once queueing delay blows through the SLO.
    """
    offered = 0.0
    within = 0.0
    for record in result.records.values():
        if record.spec.kind != "worker":
            continue
        offered += record.spec.size
        if record.fct <= slo:
            within += record.spec.size
    return within / max(offered, 1e-9)


def _run_arm(scale: SimScale, arm: str, seed: int,
             schedule: Optional[FaultSchedule]) -> tuple:
    """(result, denials) of one strategy at one load point."""
    denials = 0
    if arm == "ctrl":
        topo = three_tier(scale.topo)
        deploy_boxes(topo)
        admission = OverloadAdmission(topo, schedule)
        strategy = NetAggStrategy(name="netagg-ctrl",
                                  fault_view=admission.view)
        result = simulate(scale, strategy, deploy=deploy_boxes, seed=seed,
                          faults=schedule)
        denials = admission.denials
    elif arm == "nc":
        result = simulate(scale, NetAggStrategy(), deploy=deploy_boxes,
                          seed=seed, faults=schedule)
    else:
        result = simulate(scale, BinaryTreeStrategy(), seed=seed,
                          faults=schedule)
    return result, denials


@register("fig_overload")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        loads: Sequence[float] = LOADS) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig_overload",
        description="goodput and p99 FCT vs offered load, with/without "
                    "overload control",
        columns=("load", "ctrl_goodput", "nc_goodput", "edge_goodput",
                 "ctrl_p99", "nc_p99", "edge_p99", "ctrl_denials"),
        notes="goodput = fraction of offered worker bytes within SLO "
              f"({SLO_MULTIPLIER:g}x uncongested p99); denials = plan-time "
              "(job, box) admission refusals in the ctrl arm",
    )
    # The SLO anchors to an uncongested run: lowest load, no schedule.
    reference, _ = _run_arm(_loaded_scale(scale, min(loads)), "nc", seed,
                            None)
    slo = SLO_MULTIPLIER * fct_summary(reference, empty_ok=True).p99
    for load in sorted(loads):
        loaded = _loaded_scale(scale, load)
        schedule = _make_schedule(scale, load, seed)
        ctrl, denials = _run_arm(loaded, "ctrl", seed, schedule)
        nc, _ = _run_arm(loaded, "nc", seed, schedule)
        edge, _ = _run_arm(loaded, "edge", seed, schedule)
        result.add_row(
            load=load,
            ctrl_goodput=_goodput(ctrl, slo),
            nc_goodput=_goodput(nc, slo),
            edge_goodput=_goodput(edge, slo),
            ctrl_p99=fct_summary(ctrl, empty_ok=True).p99,
            nc_p99=fct_summary(nc, empty_ok=True).p99,
            edge_p99=fct_summary(edge, empty_ok=True).p99,
            ctrl_denials=denials,
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
