"""Fig. 14 -- impact of straggling workers.

Stragglers delay their partial results, shrinking the window in which
aggregation can combine data; NetAgg's relative benefit decays with the
straggler ratio but stays positive at realistic ratios.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99
from repro.workload.stragglers import StragglerModel

STRAGGLER_RATIOS = (0.0, 0.05, 0.1, 0.2, 0.4)


@register("fig14")
def run(scale: SimScale = DEFAULT, seed: int = 1,
        mean_delay: float = 0.5) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig14",
        description="99th-pct FCT relative to rack vs straggler ratio",
        columns=("straggler_ratio", "netagg_relative_p99"),
    )
    for ratio in STRAGGLER_RATIOS:
        model = StragglerModel(ratio=ratio, mean_delay=mean_delay) \
            if ratio > 0 else None
        baseline = simulate(scale, RackLevelStrategy(), seed=seed,
                            stragglers=model)
        netagg = simulate(scale, NetAggStrategy(), deploy=deploy_boxes,
                          seed=seed, stragglers=model)
        result.add_row(
            straggler_ratio=ratio,
            netagg_relative_p99=relative_p99(netagg, baseline),
        )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
