"""Fig. 2 -- 99th-pct FCT vs agg-box processing rate R.

The feasibility question of §2.4: how fast must a software agg box be to
beat rack-level aggregation?  The paper finds even 2 Gbps per box cuts
the tail substantially under 4:1 over-subscription, with diminishing
returns past ~6 Gbps.
"""

from __future__ import annotations

from repro.aggregation import NetAggStrategy, RackLevelStrategy, deploy_boxes
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99
from repro.units import Gbps

PROCESSING_RATES_GBPS = (2.0, 4.0, 6.0, 8.0, 10.0)
OVERSUBSCRIPTIONS = (1.0, 4.0)


@register("fig02")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig02",
        description="99th-pct FCT vs agg box processing rate, "
                    "relative to rack-level aggregation",
        columns=("oversubscription", "rate_gbps", "relative_p99"),
    )
    for oversub in OVERSUBSCRIPTIONS:
        sub_scale = scale.with_topo(oversubscription=oversub)
        baseline = simulate(sub_scale, RackLevelStrategy(), seed=seed)
        for rate in PROCESSING_RATES_GBPS:
            netagg = simulate(
                sub_scale,
                NetAggStrategy(),
                deploy=lambda t, r=rate: deploy_boxes(t, proc_rate=Gbps(r)),
                seed=seed,
            )
            result.add_row(
                oversubscription=oversub,
                rate_gbps=rate,
                relative_p99=relative_p99(netagg, baseline),
            )
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
