"""Fig. 12 -- partial NetAgg deployments.

Two questions: (a) which *tier* benefits most from boxes (ToR-only vs
aggregation-only vs core-only vs full)?  (b) with a fixed budget of
boxes, where should they go?  The paper finds the core/aggregation tiers
matter most -- they intercept the most flows -- so incremental roll-outs
should start there.
"""

from __future__ import annotations

from repro.aggregation import (
    NetAggStrategy,
    RackLevelStrategy,
    deploy_box_budget,
    deploy_boxes,
)
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99
from repro.topology.base import AGGR, CORE, TOR

TIER_CONFIGS = (
    ("tor-only", (TOR,)),
    ("aggr-only", (AGGR,)),
    ("core-only", (CORE,)),
    ("full", (TOR, AGGR, CORE)),
)

BUDGET_CONFIGS = (
    ("budget-core", (CORE,)),
    ("budget-aggr", (AGGR,)),
    ("budget-aggr+core", (AGGR, CORE)),
)


@register("fig12")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig12",
        description="partial deployments, 99th-pct FCT relative to rack",
        columns=("deployment", "n_boxes", "relative_p99"),
    )
    baseline = simulate(scale, RackLevelStrategy(), seed=seed)

    for name, tiers in TIER_CONFIGS:
        boxes = [0]

        def deploy(topo, tiers=tiers, boxes=boxes):
            boxes[0] = deploy_boxes(topo, tiers=tiers)

        sim = simulate(scale, NetAggStrategy(), deploy=deploy, seed=seed)
        result.add_row(deployment=name, n_boxes=boxes[0],
                       relative_p99=relative_p99(sim, baseline))

    # Fixed budget: as many boxes as the aggregation tier has switches.
    budget = scale.topo.n_pods * scale.topo.aggrs_per_pod
    for name, tiers in BUDGET_CONFIGS:
        def deploy(topo, tiers=tiers):
            deploy_box_budget(topo, budget=budget, tiers=tiers)

        sim = simulate(scale, NetAggStrategy(), deploy=deploy, seed=seed)
        result.add_row(deployment=name, n_boxes=budget,
                       relative_p99=relative_p99(sim, baseline))
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
