"""Fig. 8 -- relative 99th-pct FCT vs aggregation output ratio α.

α sweeps from 5% (strong reduction, top-k/max/count-like) to 100%
(nothing can be aggregated).  Paper shape: NetAgg's benefit shrinks as α
grows; chain is *worse* than rack at large α because its hops carry
accumulating data over extra edge links.
"""

from __future__ import annotations

from repro.aggregation import (
    BinaryTreeStrategy,
    ChainStrategy,
    NetAggStrategy,
    RackLevelStrategy,
    deploy_boxes,
)
from repro.experiments.common import DEFAULT, ExperimentResult, SimScale, simulate
from repro.experiments import register
from repro.netsim.metrics import relative_p99

ALPHAS = (0.05, 0.10, 0.25, 0.50, 0.75, 1.00)
STRATEGIES = (
    (BinaryTreeStrategy(), None),
    (ChainStrategy(), None),
    (NetAggStrategy(), deploy_boxes),
)


@register("fig08")
def run(scale: SimScale = DEFAULT, seed: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig08",
        description="99th-pct FCT vs output ratio alpha, relative to rack",
        columns=("alpha", "binary", "chain", "netagg"),
    )
    for alpha in ALPHAS:
        sub = scale.with_workload(alpha=alpha)
        baseline = simulate(sub, RackLevelStrategy(), seed=seed)
        row = {"alpha": alpha}
        for strategy, deploy in STRATEGIES:
            sim = simulate(sub, strategy, deploy=deploy, seed=seed)
            row[strategy.name] = relative_p99(sim, baseline)
        result.add_row(**row)
    return result


def main() -> None:
    print(run().to_text())


if __name__ == "__main__":
    main()
