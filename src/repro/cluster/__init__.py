"""Deterministic emulator of the paper's 34-server testbed (§4.2).

The testbed: two racks, each with one 12-core master, ten 4-core
workers, five client machines, 1 Gbps edge links, and an agg box on a
10 Gbps link.  We model it as a queueing network -- NICs are rate
servers, CPU pools are multi-server queues -- driven by the discrete-
event engine, with application behaviour (result sizes, output ratios,
CPU costs) *measured* from real runs of the mini apps.

- :mod:`repro.cluster.emulator` -- resources and transfer chains;
- :mod:`repro.cluster.deployment` -- the testbed configuration;
- :mod:`repro.cluster.solr_driver` -- closed-loop search workload
  (Figs. 16-21);
- :mod:`repro.cluster.hadoop_driver` -- batch job execution
  (Figs. 22-24).
"""

from repro.cluster.deployment import TestbedConfig
from repro.cluster.emulator import Resource, TransferChain
from repro.cluster.hadoop_driver import HadoopEmulation, HadoopRunResult
from repro.cluster.solr_driver import SolrEmulation, SolrRunResult

__all__ = [
    "Resource",
    "TransferChain",
    "TestbedConfig",
    "SolrEmulation",
    "SolrRunResult",
    "HadoopEmulation",
    "HadoopRunResult",
]
