"""Closed-loop search workload on the emulated testbed (Figs. 16-21).

Each client runs a closed loop: issue a query, wait for the response,
repeat.  A query scatters to every backend; each backend spends CPU time
producing a partial result of ``result_bytes`` and ships it either
straight to the frontend (plain Solr) or into its rack's agg box
(NetAgg), which merges all partials and forwards ``alpha``-scaled data.

Measured outputs mirror the paper's: *network throughput* is the rate of
partial-result bytes the backends inject (what the agg box / frontend
must absorb), and response latency is the client-observed request time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.deployment import TestbedConfig
from repro.cluster.emulator import Barrier, Resource
from repro.netsim.engine import EventQueue
from repro.units import KB, percentile, to_gbps


@dataclass(frozen=True)
class SolrEmulationParams:
    """One experiment configuration.

    Attributes:
        n_clients: closed-loop clients across all racks.
        result_bytes: partial-result size per backend per query (the
            paper: "results are of the order of hundreds of kilobytes").
        backend_cpu_seconds: per-query search time on one backend core.
        use_netagg: route partial results through the agg box(es).
        alpha: aggregation output ratio of the deployed function.
        agg_cpu_factor: CPU multiplier of the aggregation function
            (1.0 = sample-like, >> 1 = categorise-like).
        frontend_cpu_seconds: master-side merge cost per response.
        duration: emulated seconds.
        seed: jitter seed.
    """

    n_clients: int = 30
    result_bytes: float = 200 * KB
    backend_cpu_seconds: float = 0.012
    use_netagg: bool = False
    alpha: float = 0.05
    agg_cpu_factor: float = 0.25
    frontend_cpu_seconds: float = 0.001
    duration: float = 20.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.result_bytes <= 0 or self.duration <= 0:
            raise ValueError("sizes and duration must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")


@dataclass
class SolrRunResult:
    """Measured outcome of one emulated run."""

    requests_completed: int
    duration: float
    injected_bytes: float
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput_bytes(self) -> float:
        return self.injected_bytes / self.duration

    @property
    def throughput_gbps(self) -> float:
        return to_gbps(self.throughput_bytes)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies, 99.0)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies)


class SolrEmulation:
    """Build and run the closed-loop search emulation."""

    def __init__(self, config: TestbedConfig = TestbedConfig(),
                 params: SolrEmulationParams = SolrEmulationParams()) -> None:
        self._config = config
        self._params = params

    def run(self) -> SolrRunResult:
        config, params = self._config, self._params
        queue = EventQueue()
        rng = random.Random(params.seed)

        # -- resources ---------------------------------------------------------
        frontend_in = Resource(queue, "frontend-in", config.edge_rate)
        frontend_cpu = Resource(queue, "frontend-cpu", 1.0,
                                servers=config.master_cores)
        backend_nics = [
            Resource(queue, f"backend-out:{i}", config.edge_rate)
            for i in range(config.n_backends)
        ]
        backend_cpus = [
            Resource(queue, f"backend-cpu:{i}", 1.0,
                     servers=config.backend_cores)
            for i in range(config.n_backends)
        ]
        n_boxes = config.racks * config.boxes_per_rack
        box_in = [
            Resource(queue, f"box-in:{b}", config.box_link_rate)
            for b in range(n_boxes)
        ]
        box_cpu = [
            Resource(queue, f"box-cpu:{b}", 1.0, servers=config.box_cores)
            for b in range(n_boxes)
        ]
        box_out = [
            Resource(queue, f"box-out:{b}", config.box_link_rate)
            for b in range(n_boxes)
        ]

        stats = SolrRunResult(requests_completed=0,
                              duration=params.duration,
                              injected_bytes=0.0)

        def backend_box(index: int, request_seq: int) -> int:
            """Scale-out: hash requests over the rack's boxes."""
            rack = index // config.backends_per_rack
            offset = request_seq % config.boxes_per_rack
            return rack * config.boxes_per_rack + offset

        def issue(client_id: int, seq: int) -> None:
            if queue.now >= params.duration:
                return
            started = queue.now
            request_seq = client_id * 1_000_003 + seq

            def finish() -> None:
                stats.requests_completed += 1
                stats.latencies.append(queue.now - started)
                issue(client_id, seq + 1)

            def deliver_to_frontend(nbytes: float) -> None:
                frontend_in.request(nbytes, lambda: frontend_cpu.request(
                    params.frontend_cpu_seconds, finish))

            if not params.use_netagg:
                barrier = Barrier(config.n_backends, lambda: frontend_cpu
                                  .request(params.frontend_cpu_seconds,
                                           finish))
                for i in range(config.n_backends):
                    arrive = barrier.arm()

                    def through_frontend(i=i, arrive=arrive) -> None:
                        stats.injected_bytes += params.result_bytes
                        backend_nics[i].request(
                            params.result_bytes,
                            lambda: frontend_in.request(params.result_bytes,
                                                        arrive),
                        )

                    backend_cpus[i].request(
                        self._jittered(rng, params.backend_cpu_seconds),
                        through_frontend,
                    )
                return

            # NetAgg path: group backends by their box for this request.
            groups: Dict[int, List[int]] = {}
            for i in range(config.n_backends):
                groups.setdefault(backend_box(i, request_seq), []).append(i)
            fan_in = Barrier(len(groups), lambda: frontend_cpu.request(
                params.frontend_cpu_seconds, finish))
            for box_index, members in groups.items():
                box_done = fan_in.arm()
                aggregate_in = params.result_bytes * len(members)
                out_bytes = params.alpha * aggregate_in

                def box_phase(box_index=box_index, box_done=box_done,
                              aggregate_in=aggregate_in,
                              out_bytes=out_bytes) -> None:
                    merge_cpu = (params.agg_cpu_factor * aggregate_in
                                 / config.core_rate)
                    box_cpu[box_index].request(
                        merge_cpu,
                        lambda: box_out[box_index].request(
                            out_bytes,
                            lambda: frontend_in.request(
                                out_bytes,
                                lambda: box_done(),
                            ),
                        ),
                    )

                collect = Barrier(len(members), box_phase)
                for i in members:
                    arrive = collect.arm()

                    def into_box(i=i, box_index=box_index,
                                 arrive=arrive) -> None:
                        stats.injected_bytes += params.result_bytes
                        backend_nics[i].request(
                            params.result_bytes,
                            lambda: box_in[box_index].request(
                                params.result_bytes, arrive),
                        )

                    backend_cpus[i].request(
                        self._jittered(rng, params.backend_cpu_seconds),
                        into_box,
                    )

        for client in range(params.n_clients):
            # Stagger client starts a hair so ties don't synchronise.
            queue.schedule(client * 1e-4, lambda c=client: issue(c, 0))
        queue.run(until=params.duration)

        if not stats.latencies:
            raise RuntimeError(
                "no request completed; duration too short for the load"
            )
        return stats

    @staticmethod
    def _jittered(rng: random.Random, value: float) -> float:
        return value * (0.9 + 0.2 * rng.random())
