"""Batch-job execution on the emulated testbed (Figs. 22-24).

One map/reduce job: ten mappers in one rack, one reducer, one
aggregation tree (the paper's Hadoop deployment).  The map phase is
excluded, as in the paper ("we ignore the map phase because it is not
affected by NetAgg"); we emulate shuffle + reduce:

- **plain Hadoop**: every mapper ships its share of the intermediate
  data to the reducer, whose 1 Gbps inbound link is the bottleneck; the
  reducer then spends CPU on the full volume and spills output to disk.
- **NetAgg**: mappers ship into the rack's agg box over its 10 Gbps
  link; the box combines (CPU, pipelined with arrival) and forwards the
  alpha-scaled aggregate; the reducer -- unaware the data is final --
  still re-reads and reduces what it receives (the paper's conscious
  transparency trade-off), then spills.

Job parameters (output ratio, CPU factor) come from *measured* runs of
the real mini-Hadoop engine: :func:`measure_job_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.hadoop.engine import MapReduceEngine
from repro.apps.hadoop.job import JobSpec
from repro.cluster.deployment import TestbedConfig
from repro.cluster.emulator import Barrier, Resource
from repro.netsim.engine import EventQueue
from repro.units import GB, to_gbps


@dataclass(frozen=True)
class JobProfile:
    """What the emulator needs to know about a job."""

    name: str
    output_ratio: float  # alpha, measured
    cpu_factor: float  # reduce-side CPU multiplier
    aggregatable: bool

    def __post_init__(self) -> None:
        if not 0.0 < self.output_ratio <= 1.0:
            raise ValueError("output_ratio must be in (0, 1]")
        if self.cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")


def measure_job_profile(job: JobSpec,
                        splits: Sequence[Sequence[object]],
                        use_combiner: bool = True) -> JobProfile:
    """Run the real engine on sample data and extract the profile."""
    _, stats = MapReduceEngine().run(job, splits, use_combiner=use_combiner)
    return JobProfile(
        name=job.name,
        output_ratio=max(min(stats.output_ratio, 1.0), 1e-6),
        cpu_factor=job.cpu_factor,
        aggregatable=job.aggregatable,
    )


@dataclass
class HadoopRunResult:
    """Timing of one emulated shuffle+reduce execution."""

    job: str
    use_netagg: bool
    shuffle_reduce_seconds: float
    agg_seconds: float  # time spent at the agg box (AGG in Fig. 22)
    box_processing_gbps: float
    intermediate_bytes: float


class HadoopEmulation:
    """Emulate shuffle + reduce of one job on the testbed."""

    def __init__(self, config: TestbedConfig = TestbedConfig()) -> None:
        self._config = config

    #: Fixed shuffle+reduce overhead (task scheduling, JVM startup,
    #: sort-merge setup) -- the paper's speed-up grows with data size
    #: because this constant matters less as transfers dominate.
    FIXED_OVERHEAD_SECONDS = 5.0

    def run(self, profile: JobProfile, intermediate_bytes: float = 2 * GB,
            use_netagg: bool = False, n_mappers: Optional[int] = None,
            fixed_overhead: Optional[float] = None,
            n_reducers: int = 1) -> HadoopRunResult:
        if intermediate_bytes <= 0:
            raise ValueError("intermediate_bytes must be positive")
        overhead = (self.FIXED_OVERHEAD_SECONDS if fixed_overhead is None
                    else fixed_overhead)
        if overhead < 0:
            raise ValueError("fixed_overhead must be >= 0")
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if use_netagg and not profile.aggregatable:
            raise ValueError(
                f"job {profile.name!r} has no combiner; NetAgg cannot help"
            )
        config = self._config
        n_mappers = n_mappers or config.backends_per_rack
        per_mapper = intermediate_bytes / n_mappers

        queue = EventQueue()
        mapper_nics = [
            Resource(queue, f"mapper-out:{i}", config.edge_rate)
            for i in range(n_mappers)
        ]
        reducer_in = [
            Resource(queue, f"reducer-in:{r}", config.edge_rate)
            for r in range(n_reducers)
        ]
        reducer_cpu = [
            Resource(queue, f"reducer-cpu:{r}", 1.0,
                     servers=config.backend_cores)
            for r in range(n_reducers)
        ]
        disks = [
            Resource(queue, f"reducer-disk:{r}", config.disk_rate)
            for r in range(n_reducers)
        ]
        box_in = Resource(queue, "box-in", config.box_link_rate)
        box_cpu = Resource(queue, "box-cpu", 1.0, servers=config.box_cores)
        box_out = Resource(queue, "box-out", config.box_link_rate)

        done_at = [0.0]
        box_busy = [0.0, 0.0]  # [start of box phase, end of box phase]

        def record_done() -> None:
            done_at[0] = max(done_at[0], queue.now)

        all_reduced = Barrier(n_reducers, lambda: None)
        output_per_reducer = (profile.output_ratio * intermediate_bytes
                              / n_reducers)

        def reduce_phase(reducer: int, received_bytes: float) -> None:
            cpu_work = profile.cpu_factor * received_bytes / config.core_rate
            # The reduce is parallelised over the reducer's cores in
            # Hadoop's merge phase; model as core-count-wide work.
            per_core = cpu_work / config.backend_cores
            barrier = Barrier(
                config.backend_cores,
                lambda: disks[reducer].request(output_per_reducer,
                                               record_done),
            )
            for _ in range(config.backend_cores):
                reducer_cpu[reducer].request(per_core, barrier.arm())

        per_reducer_share = intermediate_bytes / n_reducers

        if not use_netagg:
            # Each mapper ships a 1/R slice of its output to each reducer.
            for reducer in range(n_reducers):
                shuffle_done = Barrier(
                    n_mappers,
                    lambda r=reducer: reduce_phase(r, per_reducer_share),
                )
                slice_bytes = per_mapper / n_reducers
                for i in range(n_mappers):
                    arrive = shuffle_done.arm()
                    mapper_nics[i].request(
                        slice_bytes,
                        lambda r=reducer, arrive=arrive: reducer_in[r]
                        .request(per_mapper / n_reducers, arrive),
                    )
            queue.run()
            return HadoopRunResult(
                job=profile.name,
                use_netagg=False,
                shuffle_reduce_seconds=done_at[0] + overhead,
                agg_seconds=0.0,
                box_processing_gbps=0.0,
                intermediate_bytes=intermediate_bytes,
            )

        # -- NetAgg path ------------------------------------------------------
        # Mappers stream chunks into the box; combining is pipelined with
        # arrival, so box time ~ max(transfer, cpu) rather than their sum.
        n_chunks = 64
        chunk = per_mapper / n_chunks
        combined_bytes = profile.output_ratio * intermediate_bytes
        merge_cpu_total = (profile.cpu_factor * intermediate_bytes
                           / config.core_rate)
        merge_cpu_chunk = merge_cpu_total / (n_mappers * n_chunks)

        def after_box() -> None:
            box_busy[1] = queue.now
            per_out = combined_bytes / n_reducers
            for reducer in range(n_reducers):
                box_out.request(
                    per_out,
                    lambda r=reducer: reducer_in[r].request(
                        combined_bytes / n_reducers,
                        lambda r=r: reduce_phase(
                            r, combined_bytes / n_reducers),
                    ),
                )

        collect = Barrier(n_mappers * n_chunks, after_box)
        for i in range(n_mappers):
            def send_chunk(i=i, remaining=n_chunks) -> None:
                if remaining == 0:
                    return
                arrive = collect.arm()
                mapper_nics[i].request(
                    chunk,
                    lambda: box_in.request(
                        chunk,
                        lambda: box_cpu.request(merge_cpu_chunk, arrive),
                    ),
                )
                queue.schedule(0.0, lambda: send_chunk(i, remaining - 1))

            send_chunk()
        queue.run()
        agg_seconds = box_busy[1]
        total = done_at[0]
        return HadoopRunResult(
            job=profile.name,
            use_netagg=True,
            shuffle_reduce_seconds=total + overhead,
            agg_seconds=agg_seconds,
            box_processing_gbps=to_gbps(
                intermediate_bytes / agg_seconds if agg_seconds > 0 else 0.0
            ),
            intermediate_bytes=intermediate_bytes,
        )
