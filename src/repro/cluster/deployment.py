"""Testbed configuration (§4.2, "Testbed set-up").

The paper's hardware: per rack, one 12-core 2.9 GHz master with 32 GB,
ten 8-core 3.3 GHz workers, five client machines; 1 Gbps server links;
agg boxes with master-class hardware on 10 Gbps links.  We keep the
shape and expose every knob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.aggbox.functions import DEFAULT_CORE_RATE
from repro.units import Gbps, MB


@dataclass(frozen=True)
class TestbedConfig:
    """Emulated testbed parameters (defaults = the paper's testbed)."""

    __test__ = False  # not a pytest test class, despite the name

    racks: int = 1
    backends_per_rack: int = 10
    clients_per_rack: int = 5
    edge_rate: float = Gbps(1.0)
    box_link_rate: float = Gbps(10.0)
    box_cores: int = 16
    boxes_per_rack: int = 1
    backend_cores: int = 8
    master_cores: int = 12
    core_rate: float = DEFAULT_CORE_RATE  # bytes/second of merge work
    disk_rate: float = 120 * MB  # reducer output spill rate

    def __post_init__(self) -> None:
        if min(self.racks, self.backends_per_rack, self.box_cores,
               self.boxes_per_rack, self.backend_cores,
               self.master_cores) < 1:
            raise ValueError("all counts must be >= 1")
        if min(self.edge_rate, self.box_link_rate, self.core_rate,
               self.disk_rate) <= 0:
            raise ValueError("rates must be positive")

    @property
    def n_backends(self) -> int:
        return self.racks * self.backends_per_rack

    def scaled(self, **overrides) -> "TestbedConfig":
        return replace(self, **overrides)
