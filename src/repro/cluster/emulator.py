"""Queueing resources for the testbed emulator.

A :class:`Resource` is a FIFO queue in front of one or more rate
servers: NICs are single-server resources whose work is bytes, CPU pools
are multi-server resources whose work is core-seconds.  A
:class:`TransferChain` runs a piece of work through several resources in
sequence (e.g. sender NIC then receiver NIC), which pipelines across
independent transfers exactly like store-and-forward hops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Sequence, Tuple

from repro.netsim.engine import EventQueue


class Resource:
    """A FIFO multi-server rate resource.

    Resources can *fail* mid-run: :meth:`fail` parks everything in
    service back at the head of the queue (the work restarts from
    scratch on :meth:`recover` -- replay, not resume, matching a crashed
    agg box that lost its in-memory partials) and stops dispatching;
    :meth:`degrade` slows the service rate for future dispatches until
    recovery.  Time already burnt on parked work stays in ``busy_time``
    (it was real occupancy) and the replay is charged again in full, so
    utilisation reflects wasted work.
    """

    def __init__(self, queue: EventQueue, name: str, rate: float,
                 servers: int = 1) -> None:
        if rate <= 0:
            raise ValueError(f"resource {name!r} needs rate > 0")
        if servers < 1:
            raise ValueError(f"resource {name!r} needs servers >= 1")
        self._queue = queue
        self.name = name
        self.rate = rate
        self._base_rate = rate
        self.servers = servers
        self._free = servers
        self._waiting: Deque[Tuple[float, Callable[[], None]]] = deque()
        #: token -> (amount, done, started_at, service) for parking on fail.
        self._in_service: Dict[int, Tuple[float, Callable[[], None],
                                          float, float]] = {}
        self._down = False
        self.busy_time = 0.0
        self.completed = 0
        self.failures = 0

    def request(self, amount: float, done: Callable[[], None]) -> None:
        """Enqueue ``amount`` units of work; ``done`` fires on completion."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self._waiting.append((amount, done))
        self._pump()

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def is_down(self) -> bool:
        return self._down

    def fail(self) -> None:
        """Take the resource down, parking in-service work for replay.

        Idempotent while down.  Each in-service item's scheduled
        completion is cancelled and the item returns to the *front* of
        the queue in its original dispatch order; its not-yet-served
        time is refunded from ``busy_time`` (the elapsed part stays --
        those server-seconds really were spent before the crash).
        """
        if self._down:
            return
        self._down = True
        self.failures += 1
        now = self._queue.now
        parked = sorted(self._in_service.items())
        for token, (_amount, _done, started, service) in parked:
            self._queue.cancel(token)
            self.busy_time -= service - (now - started)
        for _token, (amount, done, _started, _service) in reversed(parked):
            self._waiting.appendleft((amount, done))
        self._in_service.clear()
        self._free = self.servers

    def recover(self) -> None:
        """Bring the resource back at full rate and replay parked work."""
        self._down = False
        self.rate = self._base_rate
        self._pump()

    def degrade(self, factor: float) -> None:
        """Divide the service rate by ``factor`` (from the built rate,
        not compounding) for future dispatches, until :meth:`recover`."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self.rate = self._base_rate / factor

    def utilisation(self, elapsed: float) -> float:
        """Average busy fraction over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def _pump(self) -> None:
        while not self._down and self._free > 0 and self._waiting:
            amount, done = self._waiting.popleft()
            self._free -= 1
            service = amount / self.rate
            self.busy_time += service
            token_cell: list = []

            def finish(cb=done, cell=token_cell):
                self._free += 1
                self.completed += 1
                self._in_service.pop(cell[0], None)
                cb()
                self._pump()

            token = self._queue.schedule(service, finish)
            token_cell.append(token)
            self._in_service[token] = (amount, done, self._queue.now, service)


@dataclass
class TransferChain:
    """Run work through resources in sequence, then call ``done``."""

    stages: Sequence[Tuple[Resource, float]]

    def start(self, done: Callable[[], None]) -> None:
        stages = list(self.stages)

        def advance(index: int) -> None:
            if index >= len(stages):
                done()
                return
            resource, amount = stages[index]
            resource.request(amount, lambda: advance(index + 1))

        advance(0)


class Barrier:
    """Invoke a callback after ``count`` arms complete."""

    def __init__(self, count: int, done: Callable[[], None]) -> None:
        if count < 1:
            raise ValueError("barrier needs count >= 1")
        self._remaining = count
        self._done = done

    def arm(self) -> Callable[[], None]:
        def arrive() -> None:
            self._remaining -= 1
            if self._remaining == 0:
                self._done()
            elif self._remaining < 0:
                raise RuntimeError("barrier over-released")

        return arrive
