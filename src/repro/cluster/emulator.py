"""Queueing resources for the testbed emulator.

A :class:`Resource` is a FIFO queue in front of one or more rate
servers: NICs are single-server resources whose work is bytes, CPU pools
are multi-server resources whose work is core-seconds.  A
:class:`TransferChain` runs a piece of work through several resources in
sequence (e.g. sender NIC then receiver NIC), which pipelines across
independent transfers exactly like store-and-forward hops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Sequence, Tuple

from repro.netsim.engine import EventQueue


class Resource:
    """A FIFO multi-server rate resource."""

    def __init__(self, queue: EventQueue, name: str, rate: float,
                 servers: int = 1) -> None:
        if rate <= 0:
            raise ValueError(f"resource {name!r} needs rate > 0")
        if servers < 1:
            raise ValueError(f"resource {name!r} needs servers >= 1")
        self._queue = queue
        self.name = name
        self.rate = rate
        self.servers = servers
        self._free = servers
        self._waiting: Deque[Tuple[float, Callable[[], None]]] = deque()
        self.busy_time = 0.0
        self.completed = 0

    def request(self, amount: float, done: Callable[[], None]) -> None:
        """Enqueue ``amount`` units of work; ``done`` fires on completion."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self._waiting.append((amount, done))
        self._pump()

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilisation(self, elapsed: float) -> float:
        """Average busy fraction over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def _pump(self) -> None:
        while self._free > 0 and self._waiting:
            amount, done = self._waiting.popleft()
            self._free -= 1
            service = amount / self.rate
            self.busy_time += service

            def finish(cb=done):
                self._free += 1
                self.completed += 1
                cb()
                self._pump()

            self._queue.schedule(service, finish)


@dataclass
class TransferChain:
    """Run work through resources in sequence, then call ``done``."""

    stages: Sequence[Tuple[Resource, float]]

    def start(self, done: Callable[[], None]) -> None:
        stages = list(self.stages)

        def advance(index: int) -> None:
            if index >= len(stages):
                done()
                return
            resource, amount = stages[index]
            resource.request(amount, lambda: advance(index + 1))

        advance(0)


class Barrier:
    """Invoke a callback after ``count`` arms complete."""

    def __init__(self, count: int, done: Callable[[], None]) -> None:
        if count < 1:
            raise ValueError("barrier needs count >= 1")
        self._remaining = count
        self._done = done

    def arm(self) -> Callable[[], None]:
        def arrive() -> None:
            self._remaining -= 1
            if self._remaining == 0:
                self._done()
            elif self._remaining < 0:
                raise RuntimeError("barrier over-released")

        return arrive
