"""Terminal-friendly rendering of experiment results.

Pure-text charts (no plotting dependencies, works over SSH):

- :func:`bar_chart` -- horizontal bars for one numeric column;
- :func:`series_chart` -- multi-series line-ish chart over an x column;
- :func:`sparkline` -- a one-line trend.

Used by the CLI (``python -m repro run --plot``) and the examples.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult

_SPARK = "▁▂▃▄▅▆▇█"
_BAR = "█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a one-line unicode sparkline."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - low) / span * (len(_SPARK) - 1)))]
        for v in values
    )


def bar_chart(result: ExperimentResult, label_column: str,
              value_column: str, width: int = 40) -> str:
    """Horizontal bar chart of ``value_column``, one row per entry."""
    _require_columns(result, (label_column, value_column))
    labels = [str(row[label_column]) for row in result.rows]
    values = [float(row[value_column]) for row in result.rows]
    if not values:
        return "(no data)"
    label_width = max(len(l) for l in labels)
    peak = max(values) or 1.0
    lines = [f"{result.experiment}: {value_column}"]
    for label, value in zip(labels, values):
        bar = _BAR * max(1, round(value / peak * width)) if value > 0 \
            else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)


def series_chart(result: ExperimentResult, x_column: str,
                 series: Optional[Sequence[str]] = None,
                 height: int = 10, width: int = 60) -> str:
    """Plot numeric series against ``x_column`` on a character grid."""
    if series is None:
        series = [c for c in result.columns
                  if c != x_column and _is_numeric(result, c)]
    _require_columns(result, (x_column, *series))
    if not result.rows:
        return "(no data)"
    marks = "*o+x#@%&"
    xs = [float(row[x_column]) for row in result.rows]
    all_values = [float(row[c]) for c in series for row in result.rows]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    x_low, x_high = min(xs), max(xs)
    x_span = (x_high - x_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, column in enumerate(series):
        mark = marks[si % len(marks)]
        for row in result.rows:
            x = float(row[x_column])
            y = float(row[column])
            col = int((x - x_low) / x_span * (width - 1))
            line = height - 1 - int((y - low) / span * (height - 1))
            grid[line][col] = mark
    lines = [f"{result.experiment} — y in [{low:.3g}, {high:.3g}], "
             f"x = {x_column} in [{x_low:.3g}, {x_high:.3g}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{marks[i % len(marks)]} {c}" for i, c in enumerate(series)
    )
    lines.append(f"  {legend}")
    return "\n".join(lines)


def summarise(result: ExperimentResult) -> str:
    """One sparkline per numeric column (a compact run overview).

    When the result carries a trace diagnosis
    (``repro.obs.analyze``, attached by ``python -m repro analyze``)
    a bottleneck-breakdown section follows: per run, the top links by
    busy fraction and the critical path's category fractions.
    """
    lines = [f"{result.experiment}: {result.description}"]
    for column in result.columns:
        if not _is_numeric(result, column):
            continue
        values = [float(row[column]) for row in result.rows]
        lines.append(
            f"  {column:24s} {sparkline(values)}  "
            f"[{min(values):.3g} .. {max(values):.3g}]"
        )
    breakdown = _bottleneck_breakdown(result)
    if breakdown:
        lines.append(breakdown)
    return "\n".join(lines)


def _bottleneck_breakdown(result: ExperimentResult, top: int = 3) -> str:
    """Bottleneck section rendered from an attached diagnosis dict."""
    runs = (result.diagnosis or {}).get("runs", [])
    if not runs:
        return ""
    lines = ["bottlenecks:"]
    for run in runs:
        timeline = run.get("timeline", {})
        label = run.get("strategy") or "(unlabelled)"
        lines.append(f"  {label}: dominant tier "
                     f"{timeline.get('dominant_tier', '?')}")
        ranked = sorted(timeline.get("links", []),
                        key=lambda s: (-float(s.get("busy_frac", 0.0)),
                                       str(s.get("link", ""))))
        for stats in ranked[:top]:
            lines.append(
                f"    {str(stats.get('link', '')):24s} "
                f"[{str(stats.get('tier', '')):4s}] "
                f"busy {float(stats.get('busy_frac', 0.0)):6.1%}  "
                f"p99 util {float(stats.get('p99_util', 0.0)):6.1%}  "
                f"cp {float(stats.get('cp_seconds', 0.0)):.3f}s")
        fractions = (run.get("critical_path") or {}).get("fractions", {})
        if fractions:
            parts = "  ".join(f"{cat} {float(frac):.1%}"
                              for cat, frac in fractions.items())
            lines.append(f"    critical path: {parts}")
    return "\n".join(lines)


def _is_numeric(result: ExperimentResult, column: str) -> bool:
    return all(
        isinstance(row[column], (int, float)) and
        not isinstance(row[column], bool)
        for row in result.rows
    ) and bool(result.rows)


def _require_columns(result: ExperimentResult,
                     columns: Sequence[str]) -> None:
    missing = [c for c in columns if c not in result.columns]
    if missing:
        raise KeyError(f"result has no column(s) {missing}")
