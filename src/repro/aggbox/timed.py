"""A timed agg box: functional aggregation under CPU contention.

Combines the functional :class:`repro.aggbox.box.AggBoxRuntime` (what is
computed) with the :class:`repro.aggbox.scheduler.WfqExecutor` (when the
CPU gets around to it): every submitted partial result costs
``function.cpu_seconds(bytes)`` of core time, scheduled across the box's
applications by weighted fair queuing.  The result is per-request
*aggregation latency* under co-location -- the latency-side complement
of the CPU-share Figs. 25/26.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.aggbox.box import AggBoxRuntime, AppBinding
from repro.aggbox.functions import DEFAULT_CORE_RATE
from repro.aggbox.scheduler import WfqExecutor
from repro.netsim.engine import EventQueue


@dataclass
class RequestTiming:
    """Latency breakdown of one aggregated request on a box."""

    app: str
    request_id: str
    first_arrival: float
    emitted_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.emitted_at is None:
            return None
        return self.emitted_at - self.first_arrival


class TimedAggBox:
    """An agg box whose merges take simulated CPU time."""

    def __init__(self, queue: EventQueue, box_id: str = "box:timed",
                 cores: int = 16, core_rate: float = DEFAULT_CORE_RATE,
                 adaptive: bool = True) -> None:
        self._queue = queue
        self._runtime = AggBoxRuntime(box_id)
        self._executor = WfqExecutor(queue, threads=cores,
                                     adaptive=adaptive)
        self._core_rate = core_rate
        self._timings: Dict[tuple, RequestTiming] = {}
        self._emit_callbacks: Dict[tuple, Callable] = {}

    @property
    def runtime(self) -> AggBoxRuntime:
        return self._runtime

    @property
    def executor(self) -> WfqExecutor:
        return self._executor

    def register_app(self, binding: AppBinding,
                     target_share: float = 1.0) -> None:
        self._runtime.register_app(binding)
        self._executor.register_app(binding.app, target_share)

    def announce(self, app: str, request_id: str, expected: int,
                 on_emit: Optional[Callable[[Any, float], None]] = None
                 ) -> None:
        """Expect ``expected`` partials; ``on_emit(value, time)`` fires
        when the aggregate is ready."""
        self._runtime.announce(app, request_id, expected)
        if on_emit is not None:
            self._emit_callbacks[(app, request_id)] = on_emit

    def submit(self, app: str, request_id: str, source: str,
               value: Any, nbytes: float) -> None:
        """One partial result arrives; merging it costs CPU time."""
        key = (app, request_id)
        if key not in self._timings:
            self._timings[key] = RequestTiming(
                app=app, request_id=request_id,
                first_arrival=self._queue.now,
            )
        binding = self._runtime.binding(app)
        duration = binding.function.cpu_seconds(nbytes, self._core_rate)

        def merge_done() -> None:
            ready = self._runtime.submit_partial(app, request_id, source,
                                                 value)
            if ready is None:
                return
            timing = self._timings[key]
            timing.emitted_at = self._queue.now
            callback = self._emit_callbacks.get(key)
            if callback is not None:
                callback(ready.value, self._queue.now)

        self._executor.submit(app, duration, merge_done)

    def timings(self, app: Optional[str] = None) -> List[RequestTiming]:
        return [
            t for t in self._timings.values()
            if app is None or t.app == app
        ]

    def latencies(self, app: str) -> List[float]:
        return [
            t.latency for t in self.timings(app) if t.latency is not None
        ]
