"""Local aggregation trees (§3.2.1).

Within one agg box, aggregation computation forms a *local aggregation
tree* of tasks: leaves ingest deserialised partial results, internal
tasks merge the outputs of their children, and the root produces the
box's aggregate.  Execution is pipelined (chunks stream through the
tree) with back-pressure via bounded buffers.

Two faces:

- :func:`tree_aggregate` -- the *functional* execution: merges real
  values through a binary tree, used by the apps and the platform.  For
  associative/commutative functions the result equals a flat merge,
  which the property tests assert.
- :class:`LocalTreeModel` -- the *performance* model: a discrete-event
  simulation of the pipelined tree over a thread pool, reproducing the
  micro-benchmark of Fig. 15 (throughput vs. leaves and pool size) and
  the scale-up behaviour of Fig. 21.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.aggbox.functions import DEFAULT_CORE_RATE, AggregationFunction
from repro.netsim.engine import EventQueue
from repro.units import Gbps, MB


def tree_aggregate(function: AggregationFunction,
                   items: Sequence[Any], fan_in: int = 2) -> Any:
    """Merge ``items`` through a ``fan_in``-ary tree of partial merges.

    Equivalent to ``function.merge(items)`` for associative/commutative
    functions; structures the computation the way an agg box schedules
    it (pairwise tasks that can run in parallel).
    """
    if fan_in < 2:
        raise ValueError("fan_in must be >= 2")
    if not items:
        return function.identity()
    level: List[Any] = list(items)
    while len(level) > 1:
        level = [
            function.merge(level[i:i + fan_in])
            for i in range(0, len(level), fan_in)
        ]
    # One final identity-shaped merge when a single partial came in, so
    # single-input aggregation still passes through the function once.
    if len(items) == 1:
        return function.merge([items[0]])
    return level[0]


@dataclass(frozen=True)
class TreeModelParams:
    """Knobs of the performance model (defaults match §4.2's testbed).

    Attributes:
        leaves: number of leaf inputs L (binary tree: L-1 merge tasks).
        threads: thread-pool size.
        chunk_bytes: granularity of pipelined streaming.
        bytes_per_leaf: input volume each leaf ingests.
        core_rate: per-core merge throughput (bytes/second).
        cpu_factor: function cost multiplier (see AggregationFunction).
        alpha: aggregation output ratio (output chunk = alpha * input).
        buffer_chunks: bounded buffer per tree edge (back-pressure).
        ingest_rate: total rate at which the network layer can feed
            leaves (bytes/second); models the 10 Gbps box link.
    """

    leaves: int = 16
    threads: int = 8
    chunk_bytes: float = 256_000.0
    bytes_per_leaf: float = 8 * MB
    core_rate: float = DEFAULT_CORE_RATE
    cpu_factor: float = 1.0
    alpha: float = 0.10
    buffer_chunks: int = 4
    ingest_rate: float = Gbps(10.0)

    def __post_init__(self) -> None:
        if self.leaves < 1:
            raise ValueError("leaves must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if min(self.chunk_bytes, self.bytes_per_leaf, self.core_rate,
               self.ingest_rate) <= 0:
            raise ValueError("sizes and rates must be positive")
        if self.buffer_chunks < 1:
            raise ValueError("buffer_chunks must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")


@dataclass
class _TaskNode:
    """One merge task of the local tree."""

    node_id: int
    children: List[int]
    parent: Optional[int]
    #: Chunks buffered on the inbound edge from each child (or the
    #: leaf's remaining input when children is empty).
    in_chunks: List[int] = field(default_factory=list)
    out_chunks: int = 0
    running: bool = False


@dataclass
class TreeModelResult:
    """Outcome of one performance-model run."""

    makespan: float
    input_bytes: float
    throughput: float  # input bytes / makespan
    tasks_executed: int
    peak_concurrency: int


class LocalTreeModel:
    """Discrete-event model of a pipelined binary local aggregation tree.

    Leaves hold a backlog of input chunks (their workers are assumed to
    saturate the box link, as in the micro-benchmark).  An internal task
    fires when every child edge has a chunk buffered and its own output
    buffer has space; it occupies one thread for the merge's CPU time and
    emits one (alpha-scaled) chunk upstream.  The root consumes chunks
    immediately.
    """

    def __init__(self, params: TreeModelParams) -> None:
        self._p = params
        self._nodes: List[_TaskNode] = []
        self._build_tree()

    def _build_tree(self) -> None:
        """Binary tree over ``leaves`` leaf slots; nodes are merge tasks."""
        p = self._p
        # Level 0: leaf feeders (not tasks; they just hold backlog).
        current = []
        for leaf in range(p.leaves):
            node = _TaskNode(node_id=len(self._nodes), children=[],
                             parent=None)
            self._nodes.append(node)
            current.append(node.node_id)
        while len(current) > 1:
            next_level = []
            for i in range(0, len(current), 2):
                group = current[i:i + 2]
                if len(group) == 1:
                    # Odd node out: promote it instead of wrapping it in
                    # a pointless single-input merge task.
                    next_level.append(group[0])
                    continue
                node = _TaskNode(node_id=len(self._nodes),
                                 children=list(group), parent=None)
                self._nodes.append(node)
                for child in group:
                    self._nodes[child].parent = node.node_id
                next_level.append(node.node_id)
            current = next_level
        self._root = current[0]

    @property
    def n_tasks(self) -> int:
        """Number of merge tasks (internal nodes)."""
        return sum(1 for n in self._nodes if n.children)

    def run(self) -> TreeModelResult:
        p = self._p
        queue = EventQueue()
        chunks_per_leaf = max(1, round(p.bytes_per_leaf / p.chunk_bytes))
        # Leaf ingest: the shared box link feeds leaves round-robin; we
        # model it as each leaf's backlog becoming available at the
        # aggregate ingest rate.
        for node in self._nodes:
            if not node.children:
                node.in_chunks = [0]
        total_chunks = chunks_per_leaf * p.leaves
        ingest_interval = p.chunk_bytes / p.ingest_rate

        free_threads = [p.threads]
        executed = [0]
        peak = [0]
        busy = [0]

        def deliver(leaf_index: int, seq: int) -> None:
            leaf = self._leaf(leaf_index)
            leaf.in_chunks[0] += 1
            pump()

        # Schedule all chunk arrivals, interleaved across leaves.
        for seq in range(total_chunks):
            leaf_index = seq % p.leaves
            queue.schedule_at(seq * ingest_interval,
                              lambda li=leaf_index, s=seq: deliver(li, s))

        def runnable(node: _TaskNode) -> bool:
            if not node.children or node.running:
                return False
            if node.out_chunks >= p.buffer_chunks and \
                    node.node_id != self._root:
                return False
            return all(
                self._nodes[c].in_chunks[0] > 0
                if not self._nodes[c].children
                else self._nodes[c].out_chunks > 0
                for c in node.children
            )

        def start(node: _TaskNode) -> None:
            node.running = True
            free_threads[0] -= 1
            busy[0] += 1
            peak[0] = max(peak[0], busy[0])
            input_bytes = 0.0
            for c in node.children:
                child = self._nodes[c]
                if child.children:
                    child.out_chunks -= 1
                    input_bytes += p.chunk_bytes * p.alpha
                else:
                    child.in_chunks[0] -= 1
                    input_bytes += p.chunk_bytes
            duration = p.cpu_factor * input_bytes / p.core_rate
            queue.schedule(duration, lambda n=node: finish(n))

        def finish(node: _TaskNode) -> None:
            node.running = False
            free_threads[0] += 1
            busy[0] -= 1
            executed[0] += 1
            if node.node_id != self._root:
                node.out_chunks += 1
            pump()

        def pump() -> None:
            progress = True
            while progress and free_threads[0] > 0:
                progress = False
                for node in self._nodes:
                    if free_threads[0] == 0:
                        break
                    if runnable(node):
                        start(node)
                        progress = True

        pump()
        queue.run()
        input_bytes = total_chunks * p.chunk_bytes
        makespan = max(queue.now, 1e-12)
        return TreeModelResult(
            makespan=makespan,
            input_bytes=input_bytes,
            throughput=input_bytes / makespan,
            tasks_executed=executed[0],
            peak_concurrency=peak[0],
        )

    def _leaf(self, index: int) -> _TaskNode:
        leaves = [n for n in self._nodes if not n.children]
        return leaves[index]
