"""Aggregation functions hosted by agg boxes.

Every function is associative and commutative (§2.1): it exposes a
``merge`` over real Python values -- so the apps genuinely compute
results through NetAgg -- plus a cost model used by the performance
simulations:

- ``cpu_seconds(input_bytes, core_rate)`` -- processing time of one merge
  on one core;
- ``output_bytes(input_bytes_list)`` -- size of the merged output.

The two testbed functions of §4.2.1 are here: ``sample`` (cheap,
output-ratio-controlled) and ``categorise`` (CPU-intensive
classification), alongside the classic associative reducers (top-k, sum,
max, combiner-style dictionary merge).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.units import MB
from repro.wire.records import KeyValue, SearchResult

#: Default per-core processing rate for cheap streaming merges, in
#: bytes/second.  Calibrated so a 16-core box sustains ~10 Gbps, matching
#: the prototype's 9.2 Gbps measured aggregate rate.
DEFAULT_CORE_RATE = 80 * MB


class AggregationFunction(ABC):
    """One application-provided aggregation function."""

    #: Short name, used in schedulers and experiment rows.
    name: str = "abstract"
    #: Relative CPU cost multiplier (1.0 = cheap streaming merge).
    cpu_factor: float = 1.0

    @abstractmethod
    def merge(self, items: Sequence[Any]) -> Any:
        """Aggregate partial results into one (associative/commutative)."""

    @abstractmethod
    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        """Modelled output size for the given input sizes."""

    def cpu_seconds(self, input_bytes: float,
                    core_rate: float = DEFAULT_CORE_RATE) -> float:
        """One-core processing time for ``input_bytes`` of input."""
        if input_bytes < 0:
            raise ValueError("input_bytes must be >= 0")
        return self.cpu_factor * input_bytes / core_rate

    def identity(self) -> Any:
        """The neutral element (merge of nothing)."""
        return self.merge([])


class TopKFunction(AggregationFunction):
    """Merge scored search results, keeping the k best (Solr's merge)."""

    name = "top-k"

    def __init__(self, k: int = 10) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def merge(self, items: Sequence[List[SearchResult]]) -> List[SearchResult]:
        merged: List[SearchResult] = []
        for partial in items:
            merged.extend(partial)
        return heapq.nlargest(self.k, merged,
                              key=lambda r: (r.score, -r.doc_id))

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        if not input_sizes:
            return 0.0
        # Each input is itself a top-k list; output is one top-k list.
        return max(input_sizes)


class CombinerFunction(AggregationFunction):
    """Hadoop combiner semantics: merge key->count dictionaries.

    Wraps the application's ``Combiner.reduce(key, values)`` interface:
    ``reduce`` defaults to summation but can be overridden per job.
    The output-size model is the saturating dictionary of DESIGN.md,
    parameterised by the job's output ratio over total intermediate data.
    """

    name = "combiner"

    def __init__(self, alpha: float = 0.1, total_bytes: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.total_bytes = total_bytes

    def reduce(self, key: str, values: Iterable[int]) -> int:
        """The combiner's per-key reduction (default: sum)."""
        return sum(values)

    def merge(self, items: Sequence[List[KeyValue]]) -> List[KeyValue]:
        grouped: Dict[str, List[int]] = {}
        for partial in items:
            for pair in partial:
                grouped.setdefault(pair.key, []).append(pair.value)
        return [
            KeyValue(key, self.reduce(key, values))
            for key, values in sorted(grouped.items())
        ]

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        total_in = sum(input_sizes)
        if self.total_bytes > 0:
            return min(total_in, self.alpha * self.total_bytes)
        return self.alpha * total_in


class SampleFunction(AggregationFunction):
    """The paper's cheap ``sample`` function: keep an alpha fraction.

    Deterministic: keeps every ceil(1/alpha)-th item, which makes tests
    reproducible while preserving the output ratio.  Sub-sampling is
    cheaper than merge work (no dictionary to maintain), hence the
    sub-unit CPU factor -- this is what makes the function network-bound
    across core counts in Fig. 21.
    """

    name = "sample"
    cpu_factor = 0.25

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    def merge(self, items: Sequence[List[Any]]) -> List[Any]:
        merged: List[Any] = []
        for partial in items:
            merged.extend(partial)
        if not merged:
            return []
        keep = max(1, round(len(merged) * self.alpha))
        stride = max(1, len(merged) // keep)
        return merged[::stride][:keep]

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        return self.alpha * sum(input_sizes)


class CategoriseFunction(AggregationFunction):
    """The paper's CPU-intensive ``categorise`` function.

    Classifies documents into base categories by scanning their content
    for category markers and returns the top-k per category.  The CPU
    factor reflects that parsing dominates: the paper's Fig. 21 shows it
    scaling linearly with cores instead of saturating the link.
    """

    name = "categorise"
    cpu_factor = 12.0

    def __init__(self, categories: Sequence[str] = (), k: int = 5) -> None:
        self.categories = tuple(categories) or (
            "science", "history", "geography", "arts", "sports",
        )
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def classify(self, text: str) -> str:
        """The majority base category of the category strings in text."""
        counts = {c: text.lower().count(c) for c in self.categories}
        best = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        return best[0] if best[1] > 0 else self.categories[0]

    def merge(self, items: Sequence[List[Tuple[str, float, str]]]
              ) -> List[Tuple[str, float, str]]:
        """Merge (doc_text, score, category?) partials into top-k/category.

        Accepts items whose category field may be empty -- classification
        happens here, on the box, as in the paper.
        """
        per_category: Dict[str, List[Tuple[float, str, str]]] = {}
        for partial in items:
            for entry in partial:
                text, score = entry[0], entry[1]
                category = entry[2] if len(entry) > 2 and entry[2] else \
                    self.classify(text)
                per_category.setdefault(category, []).append(
                    (score, text, category)
                )
        out: List[Tuple[str, float, str]] = []
        for category in sorted(per_category):
            best = heapq.nlargest(self.k, per_category[category])
            out.extend((text, score, category) for score, text, category in best)
        return out

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        # Top-k per category: bounded by a constant slice of the input.
        total = sum(input_sizes)
        bound = self.k * len(self.categories) * 1_000.0
        return min(total, bound)


class SumFunction(AggregationFunction):
    """Scalar sum -- the extreme n-to-1 reduction."""

    name = "sum"

    def merge(self, items: Sequence[float]) -> float:
        return float(sum(items))

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        return 8.0 if input_sizes else 0.0


class MaxFunction(AggregationFunction):
    """Scalar max -- another extreme n-to-1 reduction."""

    name = "max"

    def merge(self, items: Sequence[float]) -> float:
        values = list(items)
        if not values:
            return float("-inf")
        return float(max(values))

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        return 8.0 if input_sizes else 0.0
