"""Cooperative task scheduling with (adaptive) weighted fair queuing.

§3.2.1: an agg box keeps one task queue per application and offers each
freed thread to application *i* with probability proportional to its
weight.  Fixed weights starve applications with long tasks (the paper's
Fig. 25: a Solr task runs ~30 ms, a Hadoop task ~1 ms, so 50/50 weights
yield a lopsided CPU split).  The *adaptive* scheduler periodically
re-derives weights from measured task durations:

    w_i = (s_i / t_i) / sum_j (s_j / t_j)

where ``s_i`` is application i's target share and ``t_i`` a moving
average of its task execution time -- restoring the target CPU shares
(Fig. 26).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.engine import EventQueue


@dataclass(frozen=True)
class WorkloadSpec:
    """One application's task stream offered to the scheduler.

    Attributes:
        app: application name.
        task_seconds: duration of one aggregation task on one core.
        target_share: desired CPU fraction (the ``s_i`` above).
        jitter: relative uniform jitter applied to task durations.
    """

    app: str
    task_seconds: float
    target_share: float
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.task_seconds <= 0:
            raise ValueError("task_seconds must be positive")
        if not 0.0 < self.target_share <= 1.0:
            raise ValueError("target_share must be in (0, 1]")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class SchedulerParams:
    """Scheduler configuration.

    Attributes:
        threads: thread-pool size.
        adaptive: adapt weights from measured task times (Fig. 26) or
            keep them fixed at the target shares (Fig. 25).
        ema_alpha: smoothing of the task-duration moving average.
        adapt_interval: seconds between weight re-computations.
        sample_interval: CPU-share sampling window for the time series.
    """

    threads: int = 16
    adaptive: bool = False
    ema_alpha: float = 0.2
    adapt_interval: float = 0.5
    sample_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if self.adapt_interval <= 0 or self.sample_interval <= 0:
            raise ValueError("intervals must be positive")


@dataclass
class AppShare:
    """Measured CPU usage of one application."""

    app: str
    cpu_seconds: float = 0.0
    tasks_run: int = 0

    def share_of(self, total: float) -> float:
        return self.cpu_seconds / total if total > 0 else 0.0


@dataclass
class SchedulerResult:
    """Outcome of a scheduler run."""

    duration: float
    shares: Dict[str, AppShare]
    #: Per-window CPU share samples: list of (time, {app: share}).
    timeline: List[Tuple[float, Dict[str, float]]]

    def overall_share(self, app: str) -> float:
        total = sum(s.cpu_seconds for s in self.shares.values())
        return self.shares[app].share_of(total)


class WfqExecutor:
    """Dynamic weighted-fair executor over an event queue.

    The :class:`TaskScheduler` models *backlogged* synthetic workloads
    (Figs. 25/26); this executor accepts tasks as they arrive -- it is
    what a live agg box runs.  Each application has a FIFO queue and a
    weight; a freed thread picks the non-empty queue with the largest
    weighted deficit (deterministic WFQ rather than the paper's
    probabilistic offer, so tests are exact); adaptive mode re-derives
    weights from an EMA of measured task durations exactly like the
    paper's scheduler.
    """

    def __init__(self, queue: EventQueue, threads: int = 16,
                 adaptive: bool = True, ema_alpha: float = 0.2) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self._queue = queue
        self._threads_free = threads
        self.threads = threads
        self._adaptive = adaptive
        self._ema_alpha = ema_alpha
        self._targets: Dict[str, float] = {}
        self._ema: Dict[str, Optional[float]] = {}
        self._pending: Dict[str, List] = {}
        self._served: Dict[str, float] = {}  # cpu-seconds granted
        self.cpu_seconds: Dict[str, float] = {}

    def register_app(self, app: str, target_share: float = 1.0) -> None:
        if app in self._targets:
            raise ValueError(f"app {app!r} already registered")
        if target_share <= 0:
            raise ValueError("target_share must be positive")
        self._targets[app] = target_share
        self._ema[app] = None
        self._pending[app] = []
        self._served[app] = 0.0
        self.cpu_seconds[app] = 0.0

    def submit(self, app: str, duration: float, done) -> None:
        """Queue one task of ``duration`` cpu-seconds for ``app``."""
        if app not in self._targets:
            raise KeyError(f"app {app!r} not registered")
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self._pending[app].append((duration, done))
        self._pump()

    def queue_length(self, app: str) -> int:
        return len(self._pending[app])

    # -- internals -----------------------------------------------------------

    def _weight(self, app: str) -> float:
        target = self._targets[app]
        if not self._adaptive:
            return target
        measured = self._ema[app]
        if not measured:
            return target
        return target / measured

    def _pick(self) -> Optional[str]:
        candidates = [a for a, q in self._pending.items() if q]
        if not candidates:
            return None
        # Deterministic analogue of the paper's probabilistic offer:
        # every *pick* costs 1/weight, so fixed weights are count-fair
        # (the Fig. 25 pathology: long tasks hog CPU time) and adaptive
        # weights (target / EMA duration) become time-fair (Fig. 26).
        def deficit(app: str) -> float:
            weight = self._weight(app)
            return self._served[app] / weight if weight > 0 else float("inf")

        return min(candidates, key=lambda a: (deficit(a), a))

    def _pump(self) -> None:
        while self._threads_free > 0:
            app = self._pick()
            if app is None:
                return
            duration, done = self._pending[app].pop(0)
            self._threads_free -= 1
            self._served[app] += 1.0  # one pick (see _pick)
            self.cpu_seconds[app] += duration
            previous = self._ema[app]
            self._ema[app] = duration if previous is None else (
                self._ema_alpha * duration
                + (1 - self._ema_alpha) * previous
            )

            def finish(cb=done):
                self._threads_free += 1
                cb()
                self._pump()

            self._queue.schedule(duration, finish)


class TaskScheduler:
    """Discrete-event model of the cooperative agg-box scheduler.

    Applications are assumed backlogged (their queues never empty), which
    matches the paper's co-location experiment: both Solr and Hadoop
    continuously offer aggregation work.
    """

    def __init__(self, workloads: Sequence[WorkloadSpec],
                 params: SchedulerParams = SchedulerParams(),
                 seed: int = 1) -> None:
        if not workloads:
            raise ValueError("need at least one workload")
        names = [w.app for w in workloads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate application names")
        total_share = sum(w.target_share for w in workloads)
        if total_share <= 0:
            raise ValueError("target shares must sum to a positive value")
        self._workloads = {w.app: w for w in workloads}
        self._params = params
        self._rng = random.Random(seed)
        # Normalise target shares.
        self._targets = {
            w.app: w.target_share / total_share for w in workloads
        }

    def run(self, duration: float = 60.0) -> SchedulerResult:
        if duration <= 0:
            raise ValueError("duration must be positive")
        params = self._params
        queue = EventQueue()
        weights = dict(self._targets)  # initial weights = target shares
        ema: Dict[str, Optional[float]] = {a: None for a in self._workloads}
        shares = {a: AppShare(app=a) for a in self._workloads}
        window: Dict[str, float] = {a: 0.0 for a in self._workloads}
        timeline: List[Tuple[float, Dict[str, float]]] = []

        def pick_app() -> str:
            apps = sorted(weights)
            total = sum(weights[a] for a in apps)
            point = self._rng.random() * total
            acc = 0.0
            for app in apps:
                acc += weights[app]
                if point <= acc:
                    return app
            return apps[-1]

        def task_duration(app: str) -> float:
            spec = self._workloads[app]
            jitter = 1.0 + spec.jitter * (2.0 * self._rng.random() - 1.0)
            return spec.task_seconds * jitter

        def run_thread() -> None:
            """One thread picks a task, runs it to completion, repeats."""
            if queue.now >= duration:
                return
            app = pick_app()
            took = task_duration(app)
            end = min(queue.now + took, duration)
            used = end - queue.now
            shares[app].cpu_seconds += used
            shares[app].tasks_run += 1
            window[app] += used
            previous = ema[app]
            ema[app] = took if previous is None else (
                params.ema_alpha * took + (1 - params.ema_alpha) * previous
            )
            queue.schedule(took, run_thread)

        def adapt() -> None:
            if queue.now >= duration:
                return
            if params.adaptive:
                ratios = {}
                for app, target in self._targets.items():
                    measured = ema[app]
                    if measured is None or measured <= 0:
                        ratios[app] = target
                    else:
                        ratios[app] = target / measured
                total = sum(ratios.values())
                for app in weights:
                    weights[app] = ratios[app] / total
            queue.schedule(params.adapt_interval, adapt)

        def sample() -> None:
            total = sum(window.values())
            snapshot = {
                app: (window[app] / total if total > 0 else 0.0)
                for app in window
            }
            timeline.append((queue.now, snapshot))
            for app in window:
                window[app] = 0.0
            if queue.now < duration:
                queue.schedule(params.sample_interval, sample)

        for _ in range(params.threads):
            run_thread()
        queue.schedule(params.adapt_interval, adapt)
        queue.schedule(params.sample_interval, sample)
        queue.run(until=duration)

        return SchedulerResult(duration=duration, shares=shares,
                               timeline=timeline)
