"""Overload control at the agg box: bounded queues, health, shedding.

NetAgg's failure story (§3.1) covers *crashes*; this module covers
*saturation*.  An :class:`repro.aggbox.box.AggBoxRuntime` constructed
with an :class:`OverloadPolicy` bounds how many partial results it will
buffer per application, tracks a :class:`BoxHealth` state machine over
high/low queue watermarks, and -- when the bound is hit -- applies one
of three load-shedding policies, all of which preserve exactness via the
runtime's duplicate-suppression sets:

``reject-new``
    Partials for *new* requests are refused with
    :class:`BoxOverloadError` (the shim NACKs and walks its degradation
    ladder); requests already in progress keep their buffered partials
    and overflow falls back to a partial flush, so nothing accepted is
    ever dropped.
``spill``
    Any overflow partial is refused with :class:`BoxSpillError`; the
    sender re-targets the box's parent (spill-to-parent), keeping the
    hot box's memory flat.
``flush``
    The most-loaded pending request is *partially flushed*: its buffered
    partials merge into a delta aggregate that is emitted upstream
    immediately (safe -- aggregation functions are associative and
    commutative), freeing queue space for the new partial.

Health states and legal transitions::

            +-----------+      +-----------+      +----------+
      ----->|  healthy  |<---->| pressured |<---->| shedding |
            +-----------+      +-----------+      +----------+
                  ^  \\_______________|__________________/
                  |                  v (any state)
                  |            +----------+
                  +------------|  failed  |
                    (recover)  +----------+

``healthy -> pressured`` when pending crosses the high watermark,
``pressured -> shedding`` when the queue is full (the shed policy is
active only in this state), ``shedding -> pressured`` once the queue
drains below the high watermark, ``pressured -> healthy`` below the low
watermark.  ``failed`` is entered explicitly (crash) from any state and
leaves only through ``recover``.  Every transition is recorded so chaos
tests can assert legality, and exported via :class:`BoxHeartbeat` so
the platform can re-plan trees away from pressured boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.obs import METRICS, get_tracer

HEALTHY = "healthy"
PRESSURED = "pressured"
SHEDDING = "shedding"
FAILED = "failed"

#: Report-only state: the platform substitutes ``suspect`` for a box
#: whose heartbeat is older than the configured staleness threshold.
#: A silent box may be healthy, wedged, or partitioned -- the optimizer
#: must not trust its last-known state either way.  ``suspect`` never
#: appears in :data:`LEGAL_TRANSITIONS`: it is a property of the
#: *report*, not of the box's own health machine.
SUSPECT = "suspect"

#: Report-only state like ``suspect``: the platform substitutes
#: ``gray`` for a box whose heartbeat says ``healthy`` but whose
#: observed service times the latency-outlier detector flagged
#: (:class:`repro.core.partition.GrayDetector`).  A gray box is the
#: heartbeat protocol's blind spot -- alive, responsive to health
#: probes, and useless -- so, like ``suspect``, it never appears in
#: :data:`LEGAL_TRANSITIONS`: it is a property of the *report*.
GRAY = "gray"

HEALTH_STATES = (HEALTHY, PRESSURED, SHEDDING, FAILED)

#: States a :class:`BoxHeartbeat` may carry (machine states plus the
#: platform-synthesised ``suspect``/``gray``).
REPORTABLE_STATES = HEALTH_STATES + (SUSPECT, GRAY)

#: state -> states it may legally transition to.
LEGAL_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    HEALTHY: (PRESSURED, FAILED),
    PRESSURED: (HEALTHY, SHEDDING, FAILED),
    SHEDDING: (PRESSURED, FAILED),
    FAILED: (HEALTHY,),
}

REJECT_NEW = "reject-new"
SPILL = "spill"
FLUSH = "flush"

SHED_POLICIES = (REJECT_NEW, SPILL, FLUSH)


@dataclass(frozen=True)
class OverloadPolicy:
    """Bounded-queue configuration of one agg box.

    Attributes:
        max_pending: per-app cap on buffered (not yet folded) partials.
        high_watermark: fraction of ``max_pending`` above which the box
            reports ``pressured`` (and returns there from ``shedding``).
        low_watermark: fraction below which it returns to ``healthy``.
        shed: policy applied when a submit would exceed ``max_pending``
            (one of :data:`SHED_POLICIES`).
    """

    max_pending: int = 64
    high_watermark: float = 0.75
    low_watermark: float = 0.25
    shed: str = REJECT_NEW

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1 "
                f"(got {self.low_watermark}, {self.high_watermark})"
            )
        if self.shed not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {self.shed!r}")

    @property
    def high_pending(self) -> int:
        return max(1, int(self.max_pending * self.high_watermark))

    @property
    def low_pending(self) -> int:
        return max(0, int(self.max_pending * self.low_watermark))


class BoxOverloadError(RuntimeError):
    """A box refused a partial because its pending queue is full.

    The sender should treat this as a NACK: degrade down the ladder
    (next on-path box, then direct to the master) instead of retrying
    into the saturated box.
    """

    def __init__(self, box_id: str, app: str, request_id: str,
                 policy: str) -> None:
        super().__init__(
            f"box {box_id!r} shed {app}/{request_id} (policy={policy})"
        )
        self.box_id = box_id
        self.app = app
        self.request_id = request_id
        self.policy = policy


class BoxSpillError(BoxOverloadError):
    """Overflow refusal under the ``spill`` policy: re-target upstream."""


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change of a box's health machine."""

    at: float
    frm: str
    to: str
    reason: str = ""


@dataclass(frozen=True)
class BoxHeartbeat:
    """One health report a box exports to the platform."""

    box_id: str
    at: float
    state: str
    pending: int          #: total buffered partials across apps
    max_pending: int      #: per-app bound (0 = unbounded)
    sheds: int            #: cumulative shed/reject decisions
    flushes: int          #: cumulative pressure-relief partial flushes


class BoxHealth:
    """The health state machine of one agg box.

    Driven by queue occupancy (:meth:`observe`) and explicit
    crash/recover calls; every transition is validated against
    :data:`LEGAL_TRANSITIONS` and recorded for the chaos suite.
    """

    def __init__(self, policy: OverloadPolicy, owner: str = "") -> None:
        self._policy = policy
        self._state = HEALTHY
        self._owner = owner  #: box id stamped onto trace instants
        self.transitions: List[HealthTransition] = []

    @property
    def state(self) -> str:
        return self._state

    def _move(self, to: str, at: float, reason: str) -> None:
        if to == self._state:
            return
        if to not in LEGAL_TRANSITIONS[self._state]:
            raise RuntimeError(
                f"illegal health transition {self._state} -> {to}"
            )
        self.transitions.append(
            HealthTransition(at=at, frm=self._state, to=to, reason=reason)
        )
        METRICS.counter(f"aggbox.health.{to}").inc()
        tracer = get_tracer()
        if tracer.enabled:
            # Queue watermark crossings land on the aggbox timeline.
            tracer.instant("box.health", at, layer="aggbox",
                           box=self._owner, frm=self._state, to=to,
                           reason=reason)
        self._state = to

    def observe(self, pending: int, at: float = 0.0) -> str:
        """Update the state from the current worst per-app queue depth."""
        if self._state == FAILED:
            return self._state
        policy = self._policy
        if pending >= policy.max_pending:
            if self._state == HEALTHY:
                self._move(PRESSURED, at, f"pending={pending}")
            self._move(SHEDDING, at, f"pending={pending}")
        elif pending >= policy.high_pending:
            # Shedding persists until the queue drains below the high
            # watermark (hysteresis); healthy boxes become pressured.
            if self._state == HEALTHY:
                self._move(PRESSURED, at, f"pending={pending}")
        else:
            if self._state == SHEDDING:
                self._move(PRESSURED, at, f"pending={pending}")
            if self._state == PRESSURED and pending < policy.low_pending:
                self._move(HEALTHY, at, f"pending={pending}")
        return self._state

    def fail(self, at: float = 0.0) -> None:
        """The box crashed (entered from any state)."""
        self._move(FAILED, at, "crash")

    def recover(self, at: float = 0.0) -> None:
        """The box came back empty (queues were lost with the crash)."""
        self._move(HEALTHY, at, "recover")


def assert_legal_transitions(
    transitions: List[HealthTransition],
) -> None:
    """Raise AssertionError when a recorded trace breaks the machine.

    Used by the chaos-invariant suite: the trace must start from
    ``healthy`` and every hop must be in :data:`LEGAL_TRANSITIONS`.
    """
    state = HEALTHY
    for t in transitions:
        assert t.frm == state, f"trace gap: at {t.at} expected {state}, " \
                               f"recorded {t.frm}"
        assert t.to in LEGAL_TRANSITIONS[t.frm], \
            f"illegal transition {t.frm} -> {t.to} at {t.at}"
        state = t.to
