"""The functional agg-box runtime.

This is the piece the platform (:mod:`repro.core`) deploys per box: it
hosts the aggregation functions of multiple applications, collects
partial results per request, merges them through a local aggregation
tree, and emits the aggregate once the expected number of partials has
arrived (the shim layer of the master announces that count, §3.2.2).

Incoming data is framed binary (see :mod:`repro.wire`); each application
registers its own serialiser pair so the box can deserialise without
knowing application semantics -- mirroring how the prototype reuses
Hadoop's SequenceFile codec and Solr's result serialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.aggbox.functions import AggregationFunction
from repro.aggbox.localtree import tree_aggregate
from repro.wire.framing import ChunkReassembler


@dataclass
class AppBinding:
    """One application hosted on a box.

    Attributes:
        app: application name.
        function: its aggregation function.
        deserialise: frame payload -> Python partial result.
        serialise: Python aggregate -> frame payload.
    """

    app: str
    function: AggregationFunction
    deserialise: Callable[[bytes], Any]
    serialise: Callable[[Any], bytes]


@dataclass
class RequestState:
    """Partial-result collection state for one (app, request)."""

    app: str
    request_id: str
    expected: Optional[int] = None
    partials: List[Any] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    #: Sources already folded into an emitted aggregate (failure
    #: recovery de-duplication, §3.1 "Handling failures").
    processed_sources: List[str] = field(default_factory=list)
    emitted: bool = False

    @property
    def complete(self) -> bool:
        return self.expected is not None and \
            len(self.partials) >= self.expected


@dataclass
class AggregateReady:
    """An emitted aggregate: payload plus provenance."""

    app: str
    request_id: str
    value: Any
    payload: bytes
    sources: List[str]


class AggBoxRuntime:
    """Hosts aggregation functions and merges partial results."""

    def __init__(self, box_id: str) -> None:
        self.box_id = box_id
        self._apps: Dict[str, AppBinding] = {}
        self._requests: Dict[tuple, RequestState] = {}
        self._reassemblers: Dict[tuple, ChunkReassembler] = {}

    # -- application management ---------------------------------------------

    def register_app(self, binding: AppBinding) -> None:
        if binding.app in self._apps:
            raise ValueError(f"app {binding.app!r} already registered")
        self._apps[binding.app] = binding

    def apps(self) -> List[str]:
        return sorted(self._apps)

    def binding(self, app: str) -> AppBinding:
        """The registered binding for ``app`` (KeyError if unknown)."""
        return self._binding(app)

    # -- request lifecycle -----------------------------------------------------

    def announce(self, app: str, request_id: str, expected: int) -> None:
        """Shim metadata: how many partial results to expect (§3.2.2)."""
        if expected < 1:
            raise ValueError("expected partial count must be >= 1")
        state = self._state(app, request_id)
        if state.expected is not None and state.expected != expected:
            raise ValueError(
                f"conflicting expected counts for {app}/{request_id}: "
                f"{state.expected} vs {expected}"
            )
        state.expected = expected

    def adjust_expected(self, app: str, request_id: str,
                        delta: int) -> Optional[AggregateReady]:
        """Change the expected partial count (failure recovery, §3.1).

        When an upstream node adopts a failed box's children, one input
        (the failed box's aggregate) is replaced by the children's
        individual results; the expected count shifts accordingly.
        Returns an aggregate if the adjustment completes the request.
        """
        state = self._state(app, request_id)
        if state.expected is None:
            raise ValueError(
                f"no announcement for {app}/{request_id}; nothing to adjust"
            )
        new_expected = state.expected + delta
        if new_expected < 0:
            raise ValueError(
                f"adjusted expected count {new_expected} must stay >= 0"
            )
        state.expected = new_expected
        if state.partials:
            return self._maybe_emit(state)
        return None

    def has_source(self, app: str, request_id: str, source: str) -> bool:
        """True when ``source``'s partial was received (pending or
        already folded into an emitted aggregate)."""
        state = self._state(app, request_id)
        return source in state.sources or source in state.processed_sources

    def submit_partial(self, app: str, request_id: str, source: str,
                       value: Any) -> Optional[AggregateReady]:
        """Deliver one deserialised partial result.

        Returns the aggregate when this partial completes the request.
        Re-submissions from already-processed sources are dropped (the
        failure-recovery protocol resends only unprocessed results).
        """
        self._binding(app)
        state = self._state(app, request_id)
        if source in state.processed_sources or source in state.sources:
            return None
        state.partials.append(value)
        state.sources.append(source)
        return self._maybe_emit(state)

    def submit_chunk(self, app: str, request_id: str, source: str,
                     chunk: bytes) -> Optional[AggregateReady]:
        """Deliver raw bytes; frames are reassembled across chunks.

        Each completed frame is deserialised with the application's codec
        and treated as one partial result from ``source``.
        """
        binding = self._binding(app)
        key = (app, request_id, source)
        reassembler = self._reassemblers.setdefault(key, ChunkReassembler())
        result = None
        for frame_payload in reassembler.feed(chunk):
            value = binding.deserialise(frame_payload)
            emitted = self.submit_partial(app, request_id, source, value)
            if emitted is not None:
                result = emitted
        return result

    def pending_requests(self) -> List[RequestState]:
        return [s for s in self._requests.values() if not s.emitted]

    def flush(self, app: str, request_id: str) -> Optional[AggregateReady]:
        """Aggregate whatever arrived so far (straggler handling, §3.1:
        "the agg box just aggregates available results").

        May fire more than once per request: partials arriving after an
        earlier emission (failure-recovery redirects) flush as a *delta*
        aggregate, which is safe to merge downstream because the
        functions are associative and commutative.
        """
        state = self._state(app, request_id)
        if not state.partials:
            return None
        return self._emit(state)

    def last_processed(self, app: str, request_id: str) -> List[str]:
        """Sources whose partials were folded into an emitted aggregate.

        The failure protocol sends this upstream so children do not
        resend already-processed results.
        """
        return list(self._state(app, request_id).processed_sources)

    def pending_sources(self, app: str, request_id: str) -> List[str]:
        """Sources received but not yet folded into an emission.

        When this box dies, exactly these partials are lost: emissions
        were handed upstream synchronously, and everything else never
        arrived.  The recovery protocol replays them.
        """
        return list(self._state(app, request_id).sources)

    # -- internals -----------------------------------------------------------

    def _binding(self, app: str) -> AppBinding:
        binding = self._apps.get(app)
        if binding is None:
            raise KeyError(f"no app {app!r} registered on box {self.box_id}")
        return binding

    def _state(self, app: str, request_id: str) -> RequestState:
        key = (app, request_id)
        state = self._requests.get(key)
        if state is None:
            state = RequestState(app=app, request_id=request_id)
            self._requests[key] = state
        return state

    def _maybe_emit(self, state: RequestState) -> Optional[AggregateReady]:
        if state.emitted or not state.complete:
            return None
        return self._emit(state)

    def _emit(self, state: RequestState) -> AggregateReady:
        binding = self._binding(state.app)
        value = tree_aggregate(binding.function, state.partials)
        payload = binding.serialise(value)
        state.processed_sources.extend(state.sources)
        state.partials = []
        state.sources = []
        state.emitted = True
        return AggregateReady(
            app=state.app,
            request_id=state.request_id,
            value=value,
            payload=payload,
            sources=list(state.processed_sources),
        )
