"""The functional agg-box runtime.

This is the piece the platform (:mod:`repro.core`) deploys per box: it
hosts the aggregation functions of multiple applications, collects
partial results per request, merges them through a local aggregation
tree, and emits the aggregate once the expected number of partials has
arrived (the shim layer of the master announces that count, §3.2.2).

Incoming data is framed binary (see :mod:`repro.wire`); each application
registers its own serialiser pair so the box can deserialise without
knowing application semantics -- mirroring how the prototype reuses
Hadoop's SequenceFile codec and Solr's result serialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.aggbox.functions import AggregationFunction
from repro.aggbox.localtree import tree_aggregate
from repro.aggbox.overload import (
    HEALTHY,
    REJECT_NEW,
    SPILL,
    BoxHealth,
    BoxHeartbeat,
    BoxOverloadError,
    BoxSpillError,
    HealthTransition,
    OverloadPolicy,
)
from repro.obs import METRICS, get_tracer
from repro.wire.framing import ChunkReassembler


@dataclass
class AppBinding:
    """One application hosted on a box.

    Attributes:
        app: application name.
        function: its aggregation function.
        deserialise: frame payload -> Python partial result.
        serialise: Python aggregate -> frame payload.
    """

    app: str
    function: AggregationFunction
    deserialise: Callable[[bytes], Any]
    serialise: Callable[[Any], bytes]


@dataclass
class RequestState:
    """Partial-result collection state for one (app, request)."""

    app: str
    request_id: str
    expected: Optional[int] = None
    partials: List[Any] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    #: Sources already folded into an emitted aggregate (failure
    #: recovery de-duplication, §3.1 "Handling failures").
    processed_sources: List[str] = field(default_factory=list)
    emitted: bool = False

    @property
    def complete(self) -> bool:
        return self.expected is not None and \
            len(self.partials) >= self.expected


@dataclass
class AggregateReady:
    """An emitted aggregate: payload plus provenance."""

    app: str
    request_id: str
    value: Any
    payload: bytes
    sources: List[str]


@dataclass(frozen=True)
class ParkedPartial:
    """One partial removed from a box by :meth:`AggBoxRuntime.park_pending`.

    Carries everything needed to replay the partial elsewhere (cutover)
    or back into the same box (rollback) under its original source tag.
    """

    app: str
    request_id: str
    source: str
    value: Any


class AggBoxRuntime:
    """Hosts aggregation functions and merges partial results.

    Constructed with an :class:`repro.aggbox.overload.OverloadPolicy`,
    the runtime bounds its per-app pending queues and runs the
    :class:`repro.aggbox.overload.BoxHealth` state machine over them;
    without one (the default) queues are unbounded and the box always
    reports ``healthy``.  ``clock`` is the virtual time stamped onto
    health transitions and heartbeats -- the hosting platform advances
    it alongside its own clock.
    """

    def __init__(self, box_id: str,
                 policy: Optional[OverloadPolicy] = None) -> None:
        self.box_id = box_id
        self.clock = 0.0
        #: Platform-level request id behind the partials currently being
        #: fed (the per-request key ``request_id`` is a per-tree alias
        #: like ``<origin>@t0``).  The hosting platform sets this before
        #: each delivery; it is stamped onto the box's spans/instants so
        #: the critical-path extractor can group box work per request.
        self.trace_origin = ""
        self._apps: Dict[str, AppBinding] = {}
        self._requests: Dict[tuple, RequestState] = {}
        self._reassemblers: Dict[tuple, ChunkReassembler] = {}
        self._policy = policy
        self._health = BoxHealth(policy, owner=box_id) \
            if policy is not None else None
        # Registry metrics survive METRICS.reset() (values zero in
        # place), so caching the objects here is safe and keeps the
        # per-partial path to one method call per metric.
        self._m_partials = METRICS.counter("aggbox.partials")
        self._m_queue = METRICS.histogram("aggbox.queue_depth")
        self._m_sheds = METRICS.counter("aggbox.sheds")
        self._m_flushes = METRICS.counter("aggbox.flushes")
        #: Buffered (not yet folded) partials per app.
        self._pending: Dict[str, int] = {}
        #: Delta aggregates emitted by pressure-relief partial flushes;
        #: the host drains these and forwards them upstream.
        self._shed_outbox: List[AggregateReady] = []
        self.sheds = 0     #: cumulative reject/spill decisions
        self.flushes = 0   #: cumulative pressure-relief partial flushes

    # -- overload control -----------------------------------------------------

    @property
    def policy(self) -> Optional[OverloadPolicy]:
        return self._policy

    @property
    def health(self) -> str:
        """Current health state (always ``healthy`` when unbounded)."""
        return self._health.state if self._health is not None else HEALTHY

    @property
    def health_transitions(self) -> List[HealthTransition]:
        return list(self._health.transitions) if self._health else []

    def pending_count(self, app: Optional[str] = None) -> int:
        """Buffered partials for ``app`` (or across all apps)."""
        if app is not None:
            return self._pending.get(app, 0)
        return sum(self._pending.values())

    def heartbeat(self, at: Optional[float] = None) -> BoxHeartbeat:
        """The health report this box exports to the platform."""
        return BoxHeartbeat(
            box_id=self.box_id,
            at=self.clock if at is None else at,
            state=self.health,
            pending=self.pending_count(),
            max_pending=self._policy.max_pending if self._policy else 0,
            sheds=self.sheds,
            flushes=self.flushes,
        )

    def mark_failed(self) -> None:
        """Drive the health machine into ``failed`` (box crash)."""
        if self._health is not None:
            self._health.fail(self.clock)

    def mark_recovered(self) -> None:
        if self._health is not None:
            self._health.recover(self.clock)

    def drain_shed(self) -> List[AggregateReady]:
        """Delta aggregates produced by partial flushes since last drain.

        The host must forward each upstream (with a fresh source tag --
        deltas are *additional* inputs to the parent, not replacements).
        """
        out = self._shed_outbox
        self._shed_outbox = []
        return out

    # -- application management ---------------------------------------------

    def register_app(self, binding: AppBinding) -> None:
        if binding.app in self._apps:
            raise ValueError(f"app {binding.app!r} already registered")
        self._apps[binding.app] = binding

    def apps(self) -> List[str]:
        return sorted(self._apps)

    def binding(self, app: str) -> AppBinding:
        """The registered binding for ``app`` (KeyError if unknown)."""
        return self._binding(app)

    # -- request lifecycle -----------------------------------------------------

    def announce(self, app: str, request_id: str, expected: int) -> None:
        """Shim metadata: how many partial results to expect (§3.2.2)."""
        if expected < 1:
            raise ValueError("expected partial count must be >= 1")
        state = self._state(app, request_id)
        if state.expected is not None and state.expected != expected:
            raise ValueError(
                f"conflicting expected counts for {app}/{request_id}: "
                f"{state.expected} vs {expected}"
            )
        state.expected = expected

    def adjust_expected(self, app: str, request_id: str,
                        delta: int) -> Optional[AggregateReady]:
        """Change the expected partial count (failure recovery, §3.1).

        When an upstream node adopts a failed box's children, one input
        (the failed box's aggregate) is replaced by the children's
        individual results; the expected count shifts accordingly.
        Returns an aggregate if the adjustment completes the request.
        """
        state = self._state(app, request_id)
        if state.expected is None:
            raise ValueError(
                f"no announcement for {app}/{request_id}; nothing to adjust"
            )
        new_expected = state.expected + delta
        if new_expected < 0:
            raise ValueError(
                f"adjusted expected count {new_expected} must stay >= 0"
            )
        state.expected = new_expected
        if state.partials:
            return self._maybe_emit(state)
        return None

    def has_source(self, app: str, request_id: str, source: str) -> bool:
        """True when ``source``'s partial was received (pending or
        already folded into an emitted aggregate)."""
        state = self._state(app, request_id)
        return source in state.sources or source in state.processed_sources

    def submit_partial(self, app: str, request_id: str, source: str,
                       value: Any) -> Optional[AggregateReady]:
        """Deliver one deserialised partial result.

        Returns the aggregate when this partial completes the request.
        Re-submissions from already-processed sources are dropped (the
        failure-recovery protocol resends only unprocessed results).

        With an :class:`OverloadPolicy`, a submit that would push the
        app's pending queue past its bound triggers the shed policy:
        ``reject-new``/``spill`` raise :class:`BoxOverloadError` /
        :class:`BoxSpillError` (the partial is refused, the sender walks
        its ladder), ``flush`` frees space by partially flushing the
        most-loaded request into :meth:`drain_shed`.
        """
        self._binding(app)
        state = self._state(app, request_id)
        if source in state.processed_sources or source in state.sources:
            return None
        if self._policy is not None and \
                self._pending.get(app, 0) >= self._policy.max_pending:
            self._shed(app, state)
        state.partials.append(value)
        state.sources.append(source)
        self._pending[app] = self._pending.get(app, 0) + 1
        self._m_partials.inc()
        self._m_queue.observe(self._pending[app])
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("box.partial", self.clock, layer="aggbox",
                           box=self.box_id, app=app, request=request_id,
                           origin=self.trace_origin, source=source,
                           pending=self._pending[app])
        self._observe(app)
        return self._maybe_emit(state)

    def submit_chunk(self, app: str, request_id: str, source: str,
                     chunk: bytes) -> Optional[AggregateReady]:
        """Deliver raw bytes; frames are reassembled across chunks.

        Each completed frame is deserialised with the application's codec
        and treated as one partial result from ``source``.
        """
        binding = self._binding(app)
        key = (app, request_id, source)
        reassembler = self._reassemblers.setdefault(key, ChunkReassembler())
        result = None
        for frame_payload in reassembler.feed(chunk):
            value = binding.deserialise(frame_payload)
            emitted = self.submit_partial(app, request_id, source, value)
            if emitted is not None:
                result = emitted
        return result

    def pending_requests(self) -> List[RequestState]:
        return [s for s in self._requests.values() if not s.emitted]

    def flush(self, app: str, request_id: str) -> Optional[AggregateReady]:
        """Aggregate whatever arrived so far (straggler handling, §3.1:
        "the agg box just aggregates available results").

        May fire more than once per request: partials arriving after an
        earlier emission (failure-recovery redirects) flush as a *delta*
        aggregate, which is safe to merge downstream because the
        functions are associative and commutative.
        """
        state = self._state(app, request_id)
        if not state.partials:
            return None
        return self._emit(state)

    def last_processed(self, app: str, request_id: str) -> List[str]:
        """Sources whose partials were folded into an emitted aggregate.

        The failure protocol sends this upstream so children do not
        resend already-processed results.
        """
        return list(self._state(app, request_id).processed_sources)

    def pending_sources(self, app: str, request_id: str) -> List[str]:
        """Sources received but not yet folded into an emission.

        When this box dies, exactly these partials are lost: emissions
        were handed upstream synchronously, and everything else never
        arrived.  The recovery protocol replays them.
        """
        return list(self._state(app, request_id).sources)

    def park_pending(
        self,
        app: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> List[ParkedPartial]:
        """Remove buffered partials for migration, *without* folding them.

        The drain phase of a migration calls this: the returned partials
        are no longer this box's responsibility and will be replayed --
        into the destination on cutover, or back into this box on
        rollback.  Unlike :meth:`relieve`, parked sources are **not**
        moved to the duplicate-suppression set and the expected count is
        untouched, so a replay under the original source tags is
        accepted exactly once wherever it lands.  ``app``/``request_id``
        filter what is parked (None = everything pending).
        """
        parked: List[ParkedPartial] = []
        for (state_app, rid), state in sorted(self._requests.items()):
            if app is not None and state_app != app:
                continue
            if request_id is not None and rid != request_id:
                continue
            if not state.partials:
                continue
            parked.extend(
                ParkedPartial(app=state_app, request_id=rid,
                              source=source, value=value)
                for source, value in zip(state.sources, state.partials)
            )
            self._pending[state_app] = \
                self._pending.get(state_app, 0) - len(state.partials)
            state.partials = []
            state.sources = []
            self._observe(state_app)
        if parked:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant("box.park", self.clock, layer="aggbox",
                               box=self.box_id, origin=self.trace_origin,
                               parked=len(parked))
        return parked

    def relieve(self, app: str) -> Optional[AggregateReady]:
        """Force one pressure-relief partial flush for ``app``.

        The most-loaded pending request merges its buffered partials
        into a *delta* aggregate (returned for upstream forwarding) and
        its expected count drops by the partials folded, so the final
        emission still fires when the remainder arrives.  Exactness is
        preserved: folded sources move to the duplicate-suppression set.
        Returns None when nothing is buffered.
        """
        state = self._most_loaded(app)
        if state is None:
            return None
        return self._partial_flush(state)

    # -- internals -----------------------------------------------------------

    def _shed(self, app: str, state: RequestState) -> None:
        """Apply the shed policy for an over-bound submit into ``state``.

        Raises to refuse the partial (``spill`` always; ``reject-new``
        for requests with nothing accepted yet) or frees queue space via
        a partial flush whose delta lands in the shed outbox.
        """
        policy = self._policy
        if policy.shed == SPILL:
            self.sheds += 1
            self._m_sheds.inc()
            raise BoxSpillError(self.box_id, app, state.request_id, SPILL)
        if policy.shed == REJECT_NEW and not state.partials \
                and not state.processed_sources:
            self.sheds += 1
            self._m_sheds.inc()
            raise BoxOverloadError(self.box_id, app, state.request_id,
                                   REJECT_NEW)
        # FLUSH policy -- or an in-progress request under reject-new,
        # which must not lose accepted partials: relieve pressure.
        delta = self.relieve(app)
        if delta is None:
            raise BoxOverloadError(self.box_id, app, state.request_id,
                                   policy.shed)
        self._shed_outbox.append(delta)

    def _most_loaded(self, app: str) -> Optional[RequestState]:
        """The app's pending request holding the most partials."""
        best: Optional[RequestState] = None
        for (state_app, _rid), state in sorted(self._requests.items()):
            if state_app != app or not state.partials:
                continue
            if best is None or len(state.partials) > len(best.partials):
                best = state
        return best

    def _partial_flush(self, state: RequestState) -> AggregateReady:
        """Emit buffered partials as a delta, freeing queue space.

        Unlike :meth:`flush` this also reduces the expected count by the
        partials folded, so the request still auto-completes (and the
        ``emitted`` flag is untouched -- the request stays pending).
        """
        binding = self._binding(state.app)
        with get_tracer().span("box.flush", lambda: self.clock,
                               layer="aggbox", box=self.box_id,
                               app=state.app, request=state.request_id,
                               origin=self.trace_origin,
                               partials=len(state.partials)):
            value = tree_aggregate(binding.function, state.partials)
            payload = binding.serialise(value)
        flushed = len(state.partials)
        state.processed_sources.extend(state.sources)
        if state.expected is not None:
            state.expected = max(0, state.expected - flushed)
        state.partials = []
        state.sources = []
        self._pending[state.app] = self._pending.get(state.app, 0) - flushed
        self.flushes += 1
        self._m_flushes.inc()
        self._observe(state.app)
        return AggregateReady(
            app=state.app,
            request_id=state.request_id,
            value=value,
            payload=payload,
            sources=list(state.processed_sources),
        )

    def _observe(self, app: str) -> None:
        if self._health is not None:
            worst = max(self._pending.values(), default=0)
            self._health.observe(worst, at=self.clock)

    def _binding(self, app: str) -> AppBinding:
        binding = self._apps.get(app)
        if binding is None:
            raise KeyError(f"no app {app!r} registered on box {self.box_id}")
        return binding

    def _state(self, app: str, request_id: str) -> RequestState:
        key = (app, request_id)
        state = self._requests.get(key)
        if state is None:
            state = RequestState(app=app, request_id=request_id)
            self._requests[key] = state
        return state

    def _maybe_emit(self, state: RequestState) -> Optional[AggregateReady]:
        if state.emitted or not state.complete:
            return None
        return self._emit(state)

    def _emit(self, state: RequestState) -> AggregateReady:
        binding = self._binding(state.app)
        with get_tracer().span("box.emit", lambda: self.clock,
                               layer="aggbox", box=self.box_id,
                               app=state.app, request=state.request_id,
                               origin=self.trace_origin,
                               partials=len(state.partials)):
            value = tree_aggregate(binding.function, state.partials)
            payload = binding.serialise(value)
        self._pending[state.app] = \
            self._pending.get(state.app, 0) - len(state.partials)
        state.processed_sources.extend(state.sources)
        state.partials = []
        state.sources = []
        state.emitted = True
        self._observe(state.app)
        return AggregateReady(
            app=state.app,
            request_id=state.request_id,
            value=value,
            payload=payload,
            sources=list(state.processed_sources),
        )
