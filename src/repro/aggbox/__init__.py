"""The agg-box runtime (§3.2 of the paper).

An agg box decomposes aggregation into fine-grained *aggregation tasks*
organised as a pipelined *local aggregation tree*, scheduled cooperatively
over a thread pool with weighted-fair sharing between applications.

- :mod:`repro.aggbox.functions` -- aggregation functions (top-k merge,
  combiner-style dictionary merge, sample, categorise) with both real
  merge semantics and calibrated CPU/output-size cost models;
- :mod:`repro.aggbox.localtree` -- functional tree aggregation plus the
  discrete-event performance model behind Fig. 15 / Fig. 21;
- :mod:`repro.aggbox.scheduler` -- the cooperative task scheduler with
  fixed and adaptive weighted fair queuing (Figs. 25/26);
- :mod:`repro.aggbox.box` -- the box runtime: application registration,
  per-request partial-result collection, streaming deserialisation;
- :mod:`repro.aggbox.overload` -- overload control: bounded pending
  queues with watermarks, the box health state machine, load shedding.
"""

from repro.aggbox.box import AggBoxRuntime, AppBinding, RequestState
from repro.aggbox.overload import (
    BoxHealth,
    BoxHeartbeat,
    BoxOverloadError,
    BoxSpillError,
    HealthTransition,
    OverloadPolicy,
)
from repro.aggbox.isolation import (
    AggregationFault,
    AppQuarantined,
    GuardedFunction,
    IsolationMonitor,
    IsolationPolicy,
)
from repro.aggbox.functions import (
    AggregationFunction,
    CategoriseFunction,
    CombinerFunction,
    MaxFunction,
    SampleFunction,
    SumFunction,
    TopKFunction,
)
from repro.aggbox.localtree import LocalTreeModel, TreeModelParams, tree_aggregate
from repro.aggbox.scheduler import (
    AppShare,
    SchedulerParams,
    TaskScheduler,
    WfqExecutor,
    WorkloadSpec,
)
from repro.aggbox.timed import RequestTiming, TimedAggBox

__all__ = [
    "AggregationFunction",
    "TopKFunction",
    "CombinerFunction",
    "SampleFunction",
    "CategoriseFunction",
    "SumFunction",
    "MaxFunction",
    "tree_aggregate",
    "LocalTreeModel",
    "TreeModelParams",
    "TaskScheduler",
    "SchedulerParams",
    "WorkloadSpec",
    "AppShare",
    "WfqExecutor",
    "TimedAggBox",
    "RequestTiming",
    "AggBoxRuntime",
    "AppBinding",
    "RequestState",
    "BoxHealth",
    "BoxHeartbeat",
    "BoxOverloadError",
    "BoxSpillError",
    "HealthTransition",
    "OverloadPolicy",
    "GuardedFunction",
    "IsolationMonitor",
    "IsolationPolicy",
    "AggregationFault",
    "AppQuarantined",
]
