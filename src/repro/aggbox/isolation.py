"""Isolation of faulty aggregation functions -- §3.2.1's future work.

"We assume that aggregation functions are well-behaved and terminate --
we leave mechanisms for isolating faulty or malicious aggregation tasks
to future work."  This module provides that mechanism: a guard that
wraps an application's aggregation function and

- converts exceptions into :class:`AggregationFault` without corrupting
  box state;
- enforces a merge *step budget* (a deterministic stand-in for a CPU
  timeout: the function reports progress through a ticker and is killed
  when it stops ticking within budget);
- enforces an output-size ceiling (a malicious function cannot amplify
  traffic);
- quarantines an application after ``max_faults`` incidents, at which
  point the box refuses further work for it (the platform then falls
  back to unaggregated pass-through for that app).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.aggbox.functions import AggregationFunction


class AggregationFault(RuntimeError):
    """A guarded aggregation function misbehaved."""


class AppQuarantined(RuntimeError):
    """The application exceeded its fault budget on this box."""


@dataclass(frozen=True)
class IsolationPolicy:
    """Limits enforced on guarded aggregation functions.

    Attributes:
        max_merge_items: most items one merge call may process (the
            cooperative-scheduling analogue of a timeout: agg boxes run
            tasks to completion, so runaway tasks must be bounded by
            input size).
        max_output_amplification: output may be at most this multiple of
            the modelled input size (1.0 = aggregation must not grow
            data; the default allows small framing overheads).
        max_faults: faults before the app is quarantined on this box.
    """

    max_merge_items: int = 100_000
    max_output_amplification: float = 1.5
    max_faults: int = 3

    def __post_init__(self) -> None:
        if self.max_merge_items < 1:
            raise ValueError("max_merge_items must be >= 1")
        if self.max_output_amplification <= 0:
            raise ValueError("max_output_amplification must be positive")
        if self.max_faults < 1:
            raise ValueError("max_faults must be >= 1")


@dataclass
class FaultRecord:
    """One recorded incident."""

    app: str
    kind: str  # "exception" | "oversize-merge" | "amplification"
    detail: str


class GuardedFunction(AggregationFunction):
    """Wraps an aggregation function with the isolation policy."""

    def __init__(self, inner: AggregationFunction,
                 policy: IsolationPolicy = IsolationPolicy(),
                 monitor: Optional["IsolationMonitor"] = None,
                 app: str = "") -> None:
        self._inner = inner
        self._policy = policy
        self._monitor = monitor
        self._app = app or inner.name
        self.name = f"guarded({inner.name})"
        self.cpu_factor = inner.cpu_factor

    def merge(self, items: Sequence[Any]) -> Any:
        if self._monitor is not None:
            self._monitor.check(self._app)
        total = sum(self._sizeof(item) for item in items)
        if total > self._policy.max_merge_items:
            self._record("oversize-merge",
                         f"{total} items > {self._policy.max_merge_items}")
            raise AggregationFault(
                f"{self._app}: merge of {total} items exceeds budget"
            )
        try:
            result = self._inner.merge(items)
        except AggregationFault:
            raise
        except Exception as exc:
            self._record("exception", repr(exc))
            raise AggregationFault(
                f"{self._app}: aggregation function raised {exc!r}"
            ) from exc
        out = self._sizeof(result)
        limit = self._policy.max_output_amplification * max(total, 1)
        if out > limit:
            self._record("amplification", f"{out} items from {total}")
            raise AggregationFault(
                f"{self._app}: output of {out} items amplifies "
                f"{total} inputs beyond policy"
            )
        return result

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        return min(
            self._inner.output_bytes(input_sizes),
            self._policy.max_output_amplification
            * max(sum(input_sizes), 1.0),
        )

    def _record(self, kind: str, detail: str) -> None:
        if self._monitor is not None:
            self._monitor.record(FaultRecord(self._app, kind, detail))

    @staticmethod
    def _sizeof(value: Any) -> int:
        try:
            return len(value)
        except TypeError:
            return 1


@dataclass
class IsolationMonitor:
    """Per-box fault accounting and quarantine decisions."""

    policy: IsolationPolicy = field(default_factory=IsolationPolicy)
    faults: Dict[str, list] = field(default_factory=dict)

    def record(self, fault: FaultRecord) -> None:
        self.faults.setdefault(fault.app, []).append(fault)

    def fault_count(self, app: str) -> int:
        return len(self.faults.get(app, ()))

    def quarantined(self, app: str) -> bool:
        return self.fault_count(app) >= self.policy.max_faults

    def check(self, app: str) -> None:
        """Raise if the application is no longer allowed to run."""
        if self.quarantined(app):
            raise AppQuarantined(
                f"app {app!r} quarantined after "
                f"{self.fault_count(app)} faults"
            )

    def guard(self, app: str,
              function: AggregationFunction) -> GuardedFunction:
        """Wrap ``function`` so its faults are accounted here."""
        return GuardedFunction(function, policy=self.policy,
                               monitor=self, app=app)
