"""Inverted index with TF-IDF scoring.

A real (if small) full-text index: tokenisation, postings lists with
term frequencies, document lengths, and cosine-flavoured TF-IDF ranking.
Each backend holds one of these over its shard.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.solr.corpus import Document

_TOKEN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    return _TOKEN.findall(text.lower())


class InvertedIndex:
    """Positional postings with TF-IDF ranking over one document shard."""

    def __init__(self) -> None:
        #: term -> doc id -> token positions (tf = len(positions)).
        self._postings: Dict[str, Dict[int, List[int]]] = {}
        self._doc_len: Dict[int, int] = {}
        self._docs: Dict[int, Document] = {}

    # -- construction -------------------------------------------------------

    def add(self, doc: Document) -> None:
        if doc.doc_id in self._docs:
            raise ValueError(f"duplicate doc id {doc.doc_id}")
        tokens = tokenize(doc.text)
        self._docs[doc.doc_id] = doc
        self._doc_len[doc.doc_id] = len(tokens)
        for position, token in enumerate(tokens):
            bucket = self._postings.setdefault(token, {})
            bucket.setdefault(doc.doc_id, []).append(position)

    def add_all(self, docs: Iterable[Document]) -> None:
        for doc in docs:
            self.add(doc)

    # -- stats ----------------------------------------------------------------

    @property
    def n_docs(self) -> int:
        return len(self._docs)

    @property
    def n_terms(self) -> int:
        return len(self._postings)

    def document(self, doc_id: int) -> Document:
        return self._docs[doc_id]

    def df(self, term: str) -> int:
        """Document frequency of a term within this shard."""
        return len(self._postings.get(term.lower(), {}))

    def docs_with_term(self, term: str) -> List[int]:
        """Doc ids containing ``term`` in this shard."""
        return sorted(self._postings.get(term.lower(), {}))

    def positions(self, term: str, doc_id: int) -> List[int]:
        """Token positions of ``term`` in ``doc_id`` (empty if absent)."""
        return list(self._postings.get(term.lower(), {}).get(doc_id, ()))

    def docs_with_phrase(self, words: List[str]) -> List[int]:
        """Doc ids containing the words consecutively, in order."""
        if not words:
            return []
        first = self._postings.get(words[0].lower())
        if not first:
            return []
        matches = []
        for doc_id, starts in first.items():
            offsets = [set(self.positions(w, doc_id)) for w in words[1:]]
            if any(not o for o in offsets):
                continue
            for start in starts:
                if all(start + i + 1 in offsets[i]
                       for i in range(len(words) - 1)):
                    matches.append(doc_id)
                    break
        return sorted(matches)

    # -- querying ---------------------------------------------------------------

    def search(self, query: str, k: int = 10,
               global_doc_count: Optional[int] = None,
               global_df: Optional[Dict[str, int]] = None
               ) -> List[Tuple[int, float]]:
        """Top-k (doc_id, score) for the query, best first.

        ``global_doc_count`` and ``global_df`` let a distributed
        deployment use corpus-wide IDF statistics (the frontend gathers
        them in a first phase, like Solr's distributed IDF), so sharded
        scores match a centralised index exactly.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        n_docs = global_doc_count or self.n_docs
        if n_docs == 0:
            return []
        scores: Dict[int, float] = {}
        for term in tokenize(query):
            postings = self._postings.get(term)
            if not postings:
                continue
            df = (global_df or {}).get(term, len(postings))
            if df <= 0:
                continue
            idf = math.log(1.0 + n_docs / df)
            for doc_id, positions in postings.items():
                weight = (1.0 + math.log(len(positions))) * idf
                scores[doc_id] = scores.get(doc_id, 0.0) + weight
        ranked = sorted(
            scores.items(),
            key=lambda item: (-item[1] / math.sqrt(self._doc_len[item[0]]),
                              item[0]),
        )
        return [
            (doc_id, score / math.sqrt(self._doc_len[doc_id]))
            for doc_id, score in ranked[:k]
        ]
