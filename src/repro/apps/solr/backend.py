"""A search backend: one index shard behind a query interface."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.solr.corpus import Document
from repro.apps.solr.index import InvertedIndex
from repro.wire.records import SearchResult


class SearchBackend:
    """One worker node of the distributed search engine."""

    def __init__(self, backend_id: str,
                 documents: Sequence[Document]) -> None:
        self.backend_id = backend_id
        self._index = InvertedIndex()
        self._index.add_all(documents)
        self.queries_served = 0

    @property
    def n_docs(self) -> int:
        return self._index.n_docs

    def document(self, doc_id: int) -> Document:
        return self._index.document(doc_id)

    def term_stats(self, text: str) -> Dict[str, int]:
        """Per-term shard document frequencies (distributed-IDF phase 1)."""
        from repro.apps.solr.index import tokenize

        return {term: self._index.df(term) for term in set(tokenize(text))}

    def query(self, text: str, k: int = 10,
              global_doc_count: Optional[int] = None,
              global_df: Optional[Dict[str, int]] = None,
              with_snippets: bool = True) -> List[SearchResult]:
        """Top-k partial results for this shard.

        Supports the full query syntax of :mod:`repro.apps.solr.query`:
        bare terms rank, ``+term`` requires, ``-term`` excludes,
        ``"a b"`` matches phrases.
        """
        from repro.apps.solr.query import parse_query, search_parsed

        self.queries_served += 1
        parsed = parse_query(text)
        results = []
        for doc_id, score in search_parsed(
            self._index, parsed, k=k, global_doc_count=global_doc_count,
            global_df=global_df,
        ):
            snippet = ""
            if with_snippets:
                doc = self._index.document(doc_id)
                snippet = doc.text[:120]
            results.append(SearchResult(doc_id=doc_id, score=score,
                                        snippet=snippet))
        return results

    def documents_for_categorise(self, text: str, k: int = 10,
                                 global_doc_count: Optional[int] = None,
                                 global_df: Optional[Dict[str, int]] = None):
        """Partial results for the categorise function: (text, score)."""
        return [
            (self._index.document(doc_id).text, score, "")
            for doc_id, score in self._index.search(
                text, k=k, global_doc_count=global_doc_count,
                global_df=global_df,
            )
        ]
