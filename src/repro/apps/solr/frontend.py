"""The search frontend: scatter queries, gather and merge results.

Plain deployment: the frontend receives every backend's partial top-k
and merges them itself.  NetAgg deployment: the frontend's shim reroutes
partial results through agg boxes, and the frontend sees one aggregated
response plus empty responses from the other backends -- its own merge
logic is unchanged (associativity makes empty inputs harmless), which is
what makes the shim approach transparent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.aggbox.functions import TopKFunction
from repro.apps.solr.backend import SearchBackend
from repro.wire.records import SearchResult


class SearchFrontend:
    """The master node of the distributed search engine."""

    def __init__(self, backends: Sequence[SearchBackend],
                 k: int = 10) -> None:
        if not backends:
            raise ValueError("frontend needs at least one backend")
        self._backends = list(backends)
        self._merge = TopKFunction(k=k)
        self.k = k
        self.queries_served = 0

    @property
    def backends(self) -> List[SearchBackend]:
        return list(self._backends)

    @property
    def global_doc_count(self) -> int:
        return sum(b.n_docs for b in self._backends)

    def gather_term_stats(self, query: str) -> Dict[str, int]:
        """Phase 1 of distributed IDF: corpus-wide document frequencies."""
        totals: Dict[str, int] = {}
        for backend in self._backends:
            for term, df in backend.term_stats(query).items():
                totals[term] = totals.get(term, 0) + df
        return totals

    def scatter(self, query: str) -> List[List[SearchResult]]:
        """Dispatch the query to every backend; collect partial results."""
        total = self.global_doc_count
        global_df = self.gather_term_stats(query)
        return [
            backend.query(query, k=self.k, global_doc_count=total,
                          global_df=global_df)
            for backend in self._backends
        ]

    def search(self, query: str) -> List[SearchResult]:
        """Plain (non-NetAgg) distributed search: scatter + local merge."""
        self.queries_served += 1
        partials = self.scatter(query)
        return self.merge_responses(partials)

    def merge_responses(
        self, responses: Sequence[Optional[List[SearchResult]]]
    ) -> List[SearchResult]:
        """Merge per-backend responses; ``None``/empty entries are the
        shim's emulated empty partial results and are simply absorbed."""
        present = [r for r in responses if r]
        return self._merge.merge(present)

    def search_via(
        self,
        query: str,
        aggregate: Callable[[str, List[List[SearchResult]]],
                            List[Optional[List[SearchResult]]]],
    ) -> List[SearchResult]:
        """Distributed search with an external aggregation path.

        ``aggregate`` stands in for the NetAgg data plane: it takes the
        query and all partial results and returns one response slot per
        backend (aggregated data in one slot, None elsewhere), exactly
        what the master shim delivers.  The frontend code path is the
        same merge as the plain deployment -- no application change.
        """
        self.queries_served += 1
        partials = self.scatter(query)
        responses = aggregate(query, partials)
        if len(responses) != len(self._backends):
            raise ValueError(
                "aggregation path must return one response per backend"
            )
        return self.merge_responses(responses)
