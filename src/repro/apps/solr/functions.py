"""Application-specific NetAgg code for mini-Solr (Table 1's plugin).

These wrappers are everything Solr needs to run on NetAgg: an
aggregation function (the QueryComponent-equivalent merge) and the
serialiser/deserialiser pair for its result records.  Their size is
what Table 1 counts.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.aggbox.functions import (
    AggregationFunction,
    CategoriseFunction,
    SampleFunction,
    TopKFunction,
)
from repro.wire.records import (
    decode_search_results,
    encode_search_results,
)
from repro.wire.serializer import (
    read_float,
    read_string,
    read_varint,
    write_float,
    write_string,
    write_varint,
)

#: (function, serialise, deserialise) ready for platform registration.
SolrWrapper = Tuple[AggregationFunction,
                    Callable[[Any], bytes], Callable[[bytes], Any]]


def make_topk_wrapper(k: int = 10) -> SolrWrapper:
    """Solr's standard ranked-result merge."""
    return TopKFunction(k=k), encode_search_results, decode_search_results


def make_sample_wrapper(alpha: float = 0.05) -> SolrWrapper:
    """The paper's cheap ``sample`` function over search results."""
    return SampleFunction(alpha=alpha), encode_search_results, \
        decode_search_results


def _encode_categorise(items: List[Tuple[str, float, str]]) -> bytes:
    out = bytearray(write_varint(len(items)))
    for text, score, category in items:
        out += write_string(text)
        out += write_float(score)
        out += write_string(category)
    return bytes(out)


def _decode_categorise(buffer: bytes) -> List[Tuple[str, float, str]]:
    count, offset = read_varint(buffer, 0)
    items = []
    for _ in range(count):
        text, offset = read_string(buffer, offset)
        score, offset = read_float(buffer, offset)
        category, offset = read_string(buffer, offset)
        items.append((text, score, category))
    return items


def make_categorise_wrapper(k: int = 5) -> SolrWrapper:
    """The paper's CPU-intensive ``categorise`` function."""
    return CategoriseFunction(k=k), _encode_categorise, _decode_categorise
