"""Synthetic Wikipedia-like corpus.

The paper loads a June Wikipedia snapshot into the backends and
classifies documents into base categories (§4.2.1).  We generate an
equivalent: Zipf-vocabulary documents salted with category marker words,
so both full-text queries and the ``categorise`` function have realistic
material to chew on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

BASE_CATEGORIES = ("science", "history", "geography", "arts", "sports")

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class Document:
    """One corpus document."""

    doc_id: int
    title: str
    body: str
    category: str

    @property
    def text(self) -> str:
        return f"{self.title} {self.body}"


def generate_corpus(
    n_docs: int,
    words_per_doc: int = 120,
    vocabulary: int = 2000,
    skew: float = 1.1,
    categories: Sequence[str] = BASE_CATEGORIES,
    seed: int = 1,
) -> List[Document]:
    """Generate a deterministic corpus.

    Each document gets a dominant category whose marker word is sprinkled
    through the body (so :class:`CategoriseFunction` can classify it by
    majority count, as the paper does by parsing for category strings).
    """
    if n_docs < 1 or words_per_doc < 10 or vocabulary < 10:
        raise ValueError("corpus parameters too small")
    rng = random.Random(seed)
    words = [
        "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(3, 10)))
        for _ in range(vocabulary)
    ]
    weights = [1.0 / (rank ** skew) for rank in range(1, vocabulary + 1)]
    docs = []
    for doc_id in range(n_docs):
        category = categories[doc_id % len(categories)]
        body_words = rng.choices(words, weights=weights, k=words_per_doc)
        # Salt with the dominant category marker plus one decoy.
        n_markers = max(2, words_per_doc // 20)
        for _ in range(n_markers):
            body_words[rng.randrange(len(body_words))] = category
        decoy = rng.choice([c for c in categories if c != category])
        body_words[rng.randrange(len(body_words))] = decoy
        title = " ".join(rng.choices(words, weights=weights, k=3))
        docs.append(Document(
            doc_id=doc_id,
            title=title,
            body=" ".join(body_words),
            category=category,
        ))
    return docs


def shard_corpus(docs: Sequence[Document],
                 n_shards: int) -> List[List[Document]]:
    """Round-robin sharding, as an index partitioner would do."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards: List[List[Document]] = [[] for _ in range(n_shards)]
    for doc in docs:
        shards[doc.doc_id % n_shards].append(doc)
    return shards


def random_queries(
    docs: Sequence[Document],
    n_queries: int,
    words_per_query: int = 3,
    seed: int = 7,
) -> List[str]:
    """Queries of random words drawn from the corpus (as the clients do:
    'each client continuously submits a query for three random words')."""
    if not docs:
        raise ValueError("empty corpus")
    rng = random.Random(seed)
    pool: List[str] = []
    for doc in docs[: min(len(docs), 200)]:
        pool.extend(doc.body.split()[:30])
    return [
        " ".join(rng.choices(pool, k=words_per_query))
        for _ in range(n_queries)
    ]
