"""Mini-Solr: a distributed full-text search engine.

Backends each hold one shard of an inverted index over a synthetic
Wikipedia-like corpus; a frontend scatters queries to all backends and
gathers/merges their top-k partial results -- the partition/aggregation
pattern of §2.1.  The aggregation step (top-k merge, or the paper's
``sample``/``categorise`` functions) is what NetAgg executes on-path.
"""

from repro.apps.solr.backend import SearchBackend
from repro.apps.solr.corpus import Document, generate_corpus, shard_corpus
from repro.apps.solr.frontend import SearchFrontend
from repro.apps.solr.functions import (
    make_categorise_wrapper,
    make_sample_wrapper,
    make_topk_wrapper,
)
from repro.apps.solr.index import InvertedIndex

__all__ = [
    "Document",
    "generate_corpus",
    "shard_corpus",
    "InvertedIndex",
    "SearchBackend",
    "SearchFrontend",
    "make_topk_wrapper",
    "make_sample_wrapper",
    "make_categorise_wrapper",
]
