"""Query language for the distributed search engine.

Syntax (a pragmatic subset of Lucene's):

- bare words        -- optional terms, ranked by TF-IDF (``cat dog``);
- ``+word``         -- required term (boolean AND);
- ``-word``         -- excluded term (boolean NOT);
- ``"two words"``   -- phrase: the words must appear consecutively.

Parsing is whitespace-driven with quote handling; scoring reuses the
index's TF-IDF over the optional+required terms, restricted to the
documents that satisfy the boolean/phrase constraints.  Because the
constraints filter *within each shard* and the ranking uses global IDF,
distributed execution still matches a centralised index exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.apps.solr.index import InvertedIndex, tokenize


class QuerySyntaxError(ValueError):
    """Raised for malformed query strings."""


@dataclass(frozen=True)
class ParsedQuery:
    """Structured form of a query string."""

    optional: Tuple[str, ...] = ()
    required: Tuple[str, ...] = ()
    excluded: Tuple[str, ...] = ()
    phrases: Tuple[Tuple[str, ...], ...] = ()

    @property
    def scoring_terms(self) -> Tuple[str, ...]:
        """Terms contributing to the TF-IDF score."""
        phrase_words = tuple(w for p in self.phrases for w in p)
        return self.optional + self.required + phrase_words

    @property
    def is_pure_ranking(self) -> bool:
        """No boolean/phrase constraints (the fast common path)."""
        return not (self.required or self.excluded or self.phrases)


_QUOTED = re.compile(r'"([^"]*)"')


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string (see module docstring for the syntax)."""
    if text.count('"') % 2:
        raise QuerySyntaxError(f"unbalanced quotes in {text!r}")
    phrases: List[Tuple[str, ...]] = []

    def _capture(match: "re.Match[str]") -> str:
        words = tuple(tokenize(match.group(1)))
        if len(words) >= 2:
            phrases.append(words)
            return " "
        # Single-word "phrase" degrades to a required term.
        return f" +{words[0]} " if words else " "

    remainder = _QUOTED.sub(_capture, text)

    optional: List[str] = []
    required: List[str] = []
    excluded: List[str] = []
    for token in remainder.split():
        if token.startswith("+"):
            words = tokenize(token[1:])
            if not words:
                raise QuerySyntaxError(f"dangling '+' in {text!r}")
            required.extend(words)
        elif token.startswith("-"):
            words = tokenize(token[1:])
            if not words:
                raise QuerySyntaxError(f"dangling '-' in {text!r}")
            excluded.extend(words)
        else:
            optional.extend(tokenize(token))
    query = ParsedQuery(
        optional=tuple(optional),
        required=tuple(required),
        excluded=tuple(excluded),
        phrases=tuple(phrases),
    )
    if not query.scoring_terms and not query.excluded:
        raise QuerySyntaxError(f"empty query: {text!r}")
    return query


def allowed_documents(index: InvertedIndex,
                      query: ParsedQuery) -> Optional[Set[int]]:
    """Doc ids of this shard satisfying the constraints.

    Returns None when the query has no constraints (everything allowed).
    """
    if query.is_pure_ranking:
        return None
    allowed: Optional[Set[int]] = None

    def intersect(candidates: Set[int]) -> Set[int]:
        nonlocal allowed
        allowed = candidates if allowed is None else (allowed & candidates)
        return allowed

    for term in query.required:
        intersect(set(index.docs_with_term(term)))
    for phrase in query.phrases:
        intersect(set(index.docs_with_phrase(list(phrase))))
    if allowed is None:
        # Only exclusions: start from every doc containing a scoring
        # term (or, with no scoring terms at all, nothing matches).
        allowed = set()
        for term in query.scoring_terms:
            allowed |= set(index.docs_with_term(term))
    for term in query.excluded:
        allowed -= set(index.docs_with_term(term))
    return allowed


def search_parsed(
    index: InvertedIndex,
    query: ParsedQuery,
    k: int = 10,
    global_doc_count: Optional[int] = None,
    global_df: Optional[Dict[str, int]] = None,
) -> List[Tuple[int, float]]:
    """Execute a parsed query over one shard: constraints + ranking."""
    allowed = allowed_documents(index, query)
    scored = index.search(
        " ".join(query.scoring_terms), k=max(k, 1_000_000),
        global_doc_count=global_doc_count, global_df=global_df,
    )
    if allowed is not None:
        scored = [(doc, score) for doc, score in scored if doc in allowed]
    return scored[:k]
