"""The paper's two case-study applications, rebuilt from scratch.

- :mod:`repro.apps.hadoop` -- a mini map/reduce framework with combiner
  support and the paper's five benchmark jobs (WordCount, AdPredictor,
  PageRank, UserVisits, TeraSort);
- :mod:`repro.apps.solr` -- a mini distributed full-text search engine:
  sharded inverted index backends, a scatter/gather frontend, and the
  paper's ``sample`` and ``categorise`` aggregation functions.

Both run *for real* (they compute actual results) and are deployed on
NetAgg through application-specific aggregation wrappers and
serialisers, exactly as Table 1 of the paper describes.
"""
