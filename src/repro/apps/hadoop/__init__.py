"""Mini-Hadoop: a map/reduce framework with combiners.

The engine executes real jobs (map -> combine -> shuffle -> reduce) and
measures byte volumes at every stage using the binary wire format, so
aggregation output ratios fed to the testbed emulator are *measured*,
not assumed.  The five benchmark jobs of §4.2.2 are provided.
"""

from repro.apps.hadoop.benchmarks import (
    BENCHMARKS,
    adpredictor_job,
    pagerank_job,
    terasort_job,
    uservisits_job,
    wordcount_job,
)
from repro.apps.hadoop.data import (
    generate_adpredictor_logs,
    generate_graph,
    generate_text,
    generate_uservisits,
    generate_terasort_records,
)
from repro.apps.hadoop.engine import MapReduceEngine, PhaseStats
from repro.apps.hadoop.job import JobSpec
from repro.apps.hadoop.adpredictor import CtrModel, train_ctr_model
from repro.apps.hadoop.pagerank import PageRankResult, pagerank

__all__ = [
    "JobSpec",
    "MapReduceEngine",
    "PhaseStats",
    "pagerank",
    "PageRankResult",
    "CtrModel",
    "train_ctr_model",
    "BENCHMARKS",
    "wordcount_job",
    "adpredictor_job",
    "pagerank_job",
    "uservisits_job",
    "terasort_job",
    "generate_text",
    "generate_adpredictor_logs",
    "generate_graph",
    "generate_uservisits",
    "generate_terasort_records",
]
