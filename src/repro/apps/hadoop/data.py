"""Synthetic input generators for the benchmark jobs.

Each generator is seeded and deterministic.  Text vocabulary follows a
Zipf distribution whose *repetition* controls the measured WordCount
output ratio -- the knob Fig. 23 turns ("different output ratios,
obtained by varying the repetition of words in the input").
"""

from __future__ import annotations

import random
from typing import List, Tuple

_WORD_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _zipf_weights(n: int, skew: float) -> List[float]:
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def generate_text(
    n_lines: int,
    words_per_line: int = 10,
    vocabulary: int = 500,
    skew: float = 1.1,
    seed: int = 1,
) -> List[str]:
    """Lines of Zipf-distributed words.

    Smaller ``vocabulary`` (more repetition) lowers WordCount's measured
    output ratio; a huge vocabulary approaches ratio 1.
    """
    if n_lines < 1 or words_per_line < 1 or vocabulary < 1:
        raise ValueError("counts must be >= 1")
    rng = random.Random(seed)
    words = [
        "".join(rng.choice(_WORD_ALPHABET) for _ in range(rng.randint(3, 9)))
        for _ in range(vocabulary)
    ]
    weights = _zipf_weights(vocabulary, skew)
    return [
        " ".join(rng.choices(words, weights=weights, k=words_per_line))
        for _ in range(n_lines)
    ]


def generate_adpredictor_logs(
    n_impressions: int,
    n_features: int = 50,
    ctr: float = 0.05,
    seed: int = 1,
) -> List[Tuple[Tuple[str, ...], bool]]:
    """Sponsored-search impression logs: (feature tuple, clicked).

    Features mimic the Bing click-through model's discretised inputs
    (ad id, position, match type ...); the job learns per-feature
    click/impression counts.
    """
    if n_impressions < 1 or n_features < 1:
        raise ValueError("counts must be >= 1")
    if not 0.0 <= ctr <= 1.0:
        raise ValueError("ctr must be in [0, 1]")
    rng = random.Random(seed)
    features = [f"feat:{i}" for i in range(n_features)]
    weights = _zipf_weights(n_features, 1.2)
    logs = []
    for _ in range(n_impressions):
        chosen = tuple(rng.choices(features, weights=weights, k=3))
        clicked = rng.random() < ctr
        logs.append((chosen, clicked))
    return logs


def generate_graph(
    n_nodes: int,
    out_degree: int = 4,
    seed: int = 1,
) -> List[Tuple[int, List[int]]]:
    """Adjacency lists for PageRank (preferential-attachment flavoured)."""
    if n_nodes < 2 or out_degree < 1:
        raise ValueError("need >= 2 nodes and out_degree >= 1")
    rng = random.Random(seed)
    adjacency = []
    for node in range(n_nodes):
        targets = set()
        while len(targets) < min(out_degree, n_nodes - 1):
            # Prefer low-id nodes (hubs), as in scale-free webs.
            candidate = min(rng.randrange(n_nodes), rng.randrange(n_nodes))
            if candidate != node:
                targets.add(candidate)
        adjacency.append((node, sorted(targets)))
    return adjacency


def generate_uservisits(
    n_visits: int,
    n_ips: int = 200,
    seed: int = 1,
) -> List[Tuple[str, float]]:
    """Web-log rows: (source IP, ad revenue) -- the UV benchmark input."""
    if n_visits < 1 or n_ips < 1:
        raise ValueError("counts must be >= 1")
    rng = random.Random(seed)
    ips = [
        f"{rng.randrange(256)}.{rng.randrange(256)}."
        f"{rng.randrange(256)}.{rng.randrange(256)}"
        for _ in range(n_ips)
    ]
    weights = _zipf_weights(n_ips, 1.1)
    return [
        (rng.choices(ips, weights=weights, k=1)[0],
         round(rng.uniform(0.01, 10.0), 2))
        for _ in range(n_visits)
    ]


def generate_terasort_records(
    n_records: int,
    key_bytes: int = 10,
    seed: int = 1,
) -> List[str]:
    """Random fixed-width keys (TeraSort's 10-byte keys)."""
    if n_records < 1 or key_bytes < 1:
        raise ValueError("counts must be >= 1")
    rng = random.Random(seed)
    return [
        "".join(rng.choice(_WORD_ALPHABET) for _ in range(key_bytes))
        for _ in range(n_records)
    ]
