"""Job specifications for the mini map/reduce framework.

A job mirrors Hadoop's programming model: a mapper emitting key/value
pairs, an optional combiner (the associative/commutative aggregation
NetAgg executes on-path), and a reducer.  Values are integers on the
wire (the binary KeyValue record); jobs needing richer values encode
them (AdPredictor packs clicks/impressions into one integer, TeraSort
carries payload keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

#: A mapper takes one input record and yields (key, value) pairs.
Mapper = Callable[[object], Iterable[Tuple[str, int]]]
#: A reducer/combiner folds the values of one key.
Reducer = Callable[[str, List[int]], int]


@dataclass(frozen=True)
class JobSpec:
    """One map/reduce job.

    Attributes:
        name: benchmark name (WC, AP, PR, UV, TS).
        mapper: record -> iterable of (key, value).
        reducer: per-key reduction at the reducer.
        combiner: optional per-key reduction usable on partial data; must
            be associative and commutative.  ``None`` means the job
            cannot be aggregated on-path (TeraSort).
        cpu_factor: relative reduce-side CPU cost (AdPredictor is
            compute-intensive, §4.2.2).
        description: one line for reports.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Reducer] = None
    cpu_factor: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")

    @property
    def aggregatable(self) -> bool:
        return self.combiner is not None


@dataclass
class Counters:
    """Hadoop-style job counters, filled in by the engine."""

    map_input_records: int = 0
    map_output_records: int = 0
    map_output_bytes: float = 0.0
    combine_output_records: int = 0
    combine_output_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    reduce_output_records: int = 0
    reduce_output_bytes: float = 0.0
    spilled_records: int = 0

    def output_ratio(self) -> float:
        """Measured aggregation output ratio alpha = output/intermediate."""
        if self.map_output_bytes <= 0:
            return 1.0
        return self.reduce_output_bytes / self.map_output_bytes
