"""Iterative PageRank on the map/reduce engine.

The PR benchmark of Fig. 22 runs a single iteration; this driver runs
the algorithm to convergence -- each iteration is a full map/reduce job
(aggregatable via the sum combiner, so every iteration benefits from
on-path aggregation).  Used by tests to validate the implementation
against networkx's reference PageRank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.hadoop.benchmarks import pagerank_job
from repro.apps.hadoop.engine import MapReduceEngine, PhaseStats

_SCALE = 1_000_000_000_000


@dataclass
class PageRankResult:
    """Converged ranks plus per-iteration accounting."""

    ranks: Dict[int, float]
    iterations: int
    converged: bool
    #: Total intermediate bytes shuffled across all iterations -- the
    #: volume NetAgg would aggregate on-path every iteration.
    total_shuffle_bytes: float
    per_iteration: List[PhaseStats] = field(default_factory=list)


def pagerank(
    graph: Sequence[Tuple[int, List[int]]],
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    n_splits: int = 4,
    engine: Optional[MapReduceEngine] = None,
) -> PageRankResult:
    """Run PageRank to convergence over ``graph`` adjacency lists.

    Semantics follow the standard formulation (and networkx): ranks form
    a probability distribution over nodes; dangling mass is
    redistributed uniformly.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    engine = engine or MapReduceEngine()
    nodes = [node for node, _ in graph]
    n = len(nodes)
    if n == 0:
        raise ValueError("empty graph")
    out_degree = {node: len(targets) for node, targets in graph}

    ranks = {node: 1.0 / n for node in nodes}
    splits = _split(graph, n_splits)
    stats_log: List[PhaseStats] = []
    total_shuffle = 0.0

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        job = pagerank_job(ranks=ranks, damping=damping, scale=_SCALE)
        raw, stats = engine.run(job, splits)
        stats_log.append(stats)
        total_shuffle += stats.shuffle_bytes

        # The benchmark job's reducer emits (1-d)*S + d*sum(shares) for
        # every key that received contributions; strip that form back to
        # the raw contribution sums, then apply the distribution-proper
        # update (teleport + dangling mass) in closed form.
        summed = {
            int(key[1:]): (value / _SCALE - (1.0 - damping)) / damping
            for key, value in raw.items()
        }
        dangling = sum(
            ranks[node] for node in nodes if out_degree[node] == 0
        )
        new_ranks = {
            node: (1.0 - damping) / n
            + damping * (summed.get(node, 0.0) + dangling / n)
            for node in nodes
        }
        delta = sum(abs(new_ranks[node] - ranks[node]) for node in nodes)
        ranks = new_ranks
        if delta < tolerance:
            converged = True
            break

    return PageRankResult(
        ranks=ranks,
        iterations=iterations,
        converged=converged,
        total_shuffle_bytes=total_shuffle,
        per_iteration=stats_log,
    )


def _split(graph: Sequence[Tuple[int, List[int]]],
           n_splits: int) -> List[List[Tuple[int, List[int]]]]:
    if n_splits < 1:
        raise ValueError("n_splits must be >= 1")
    return [list(graph[i::n_splits]) for i in range(n_splits)]
