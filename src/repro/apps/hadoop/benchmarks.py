"""The five benchmark jobs of §4.2.2.

- **WordCount (WC)** -- unique-word counting; classic sum combiner.
- **AdPredictor (AP)** -- click-through prediction from search logs:
  per-feature click/impression counts (the associative statistic behind
  the Bayesian update), compute-intensive.
- **PageRank (PR)** -- one rank-propagation iteration; contributions to
  a page sum associatively.
- **UserVisits (UV)** -- ad revenue per source IP from web logs; sums
  revenue in cents.
- **TeraSort (TS)** -- identity map/reduce over fixed-width keys; *no
  combiner* (sorting reduces nothing -- the paper's no-benefit case).

Values are integers on the wire; AP packs (clicks, impressions) into a
single integer (clicks * 2^32 + impressions) so the pair still sums
associatively.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.apps.hadoop.job import JobSpec

_AP_SHIFT = 32
_AP_MASK = (1 << _AP_SHIFT) - 1


def pack_clicks(clicks: int, impressions: int) -> int:
    """Pack a (clicks, impressions) pair into one summable integer."""
    if clicks < 0 or impressions < 0:
        raise ValueError("counts must be >= 0")
    if impressions > _AP_MASK:
        raise ValueError("impression count overflows the packing")
    return (clicks << _AP_SHIFT) | impressions


def unpack_clicks(packed: int) -> Tuple[int, int]:
    return packed >> _AP_SHIFT, packed & _AP_MASK


def _sum_reducer(_key: str, values: List[int]) -> int:
    return sum(values)


def wordcount_job() -> JobSpec:
    def mapper(line: str) -> Iterable[Tuple[str, int]]:
        for word in line.split():
            yield word, 1

    return JobSpec(
        name="WC",
        mapper=mapper,
        reducer=_sum_reducer,
        combiner=_sum_reducer,
        description="count unique words in text",
    )


def adpredictor_job() -> JobSpec:
    def mapper(record: Tuple[Tuple[str, ...], bool]
               ) -> Iterable[Tuple[str, int]]:
        features, clicked = record
        for feature in features:
            yield feature, pack_clicks(1 if clicked else 0, 1)

    return JobSpec(
        name="AP",
        mapper=mapper,
        reducer=_sum_reducer,
        combiner=_sum_reducer,
        cpu_factor=12.0,  # the paper: AP is compute-intensive (only 1.9x)
        description="click-through prediction from search logs",
    )


def pagerank_job(ranks: Dict[int, float] = None,
                 damping: float = 0.85,
                 scale: int = 1_000_000) -> JobSpec:
    """One PageRank iteration.

    ``ranks`` holds the previous iteration's ranks (default: uniform 1.0
    per node).  Ranks travel as micro-units (rank * scale) so values stay
    integers on the wire.
    """
    ranks = ranks or {}

    def mapper(record: Tuple[int, List[int]]) -> Iterable[Tuple[str, int]]:
        node, targets = record
        rank = ranks.get(node, 1.0)
        if targets:
            share = int(rank * scale / len(targets))
            for target in targets:
                yield f"n{target}", share

    def reducer(_key: str, values: List[int]) -> int:
        base = int((1.0 - damping) * scale)
        return base + int(damping * sum(values))

    return JobSpec(
        name="PR",
        mapper=mapper,
        reducer=reducer,
        combiner=_sum_reducer,  # contributions sum; damping at the end
        description="one PageRank iteration over a web graph",
    )


def uservisits_job() -> JobSpec:
    def mapper(record: Tuple[str, float]) -> Iterable[Tuple[str, int]]:
        ip, revenue = record
        prefix = ".".join(ip.split(".")[:2])  # aggregate per /16 prefix
        yield prefix, int(round(revenue * 100))  # cents

    return JobSpec(
        name="UV",
        mapper=mapper,
        reducer=_sum_reducer,
        combiner=_sum_reducer,
        description="ad revenue per source-IP prefix from web logs",
    )


def terasort_job() -> JobSpec:
    def mapper(key: str) -> Iterable[Tuple[str, int]]:
        yield key, 1

    def reducer(_key: str, values: List[int]) -> int:
        # Identity reduce: sorting moves data, it does not shrink it.
        return sum(values)

    return JobSpec(
        name="TS",
        mapper=mapper,
        reducer=reducer,
        combiner=None,  # not aggregatable: the no-benefit case
        description="sorting benchmark with an identity reduce",
    )


#: Name -> factory for all five benchmarks.
BENCHMARKS = {
    "WC": wordcount_job,
    "AP": adpredictor_job,
    "PR": pagerank_job,
    "UV": uservisits_job,
    "TS": terasort_job,
}
