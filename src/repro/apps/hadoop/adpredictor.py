"""AdPredictor: click-through-rate prediction from the AP job's output.

The AP benchmark (Fig. 22) aggregates per-feature click/impression
counts -- the sufficient statistics of the Bing click-through model the
paper cites.  This module turns those aggregates into an actual
predictor: per-feature Beta-smoothed click propensities combined in
log-odds space (the additive structure that makes the statistic, and
hence the training shuffle, aggregatable on-path).

Because training state is just summed counts, a model trained through
any aggregation tree equals a model trained centrally -- asserted by
the tests, mirroring the repository-wide "on-path == central" invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.apps.hadoop.benchmarks import adpredictor_job, unpack_clicks
from repro.apps.hadoop.engine import MapReduceEngine


@dataclass
class CtrModel:
    """Per-feature click statistics plus a smoothed prior."""

    #: feature -> (clicks, impressions)
    counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Beta prior (alpha=successes, beta=failures): mild, uninformative.
    prior_clicks: float = 1.0
    prior_impressions: float = 20.0

    def __post_init__(self) -> None:
        if self.prior_clicks <= 0 or \
                self.prior_impressions <= self.prior_clicks:
            raise ValueError("prior must satisfy 0 < clicks < impressions")

    @property
    def base_rate(self) -> float:
        """Overall smoothed click-through rate."""
        clicks = sum(c for c, _ in self.counts.values())
        impressions = sum(i for _, i in self.counts.values())
        return ((clicks + self.prior_clicks)
                / (impressions + self.prior_impressions))

    def feature_rate(self, feature: str) -> float:
        """Smoothed CTR of one feature (prior alone if unseen)."""
        clicks, impressions = self.counts.get(feature, (0, 0))
        return ((clicks + self.prior_clicks)
                / (impressions + self.prior_impressions))

    def predict(self, features: Sequence[str]) -> float:
        """CTR estimate for an impression with the given features.

        Combines per-feature evidence additively in log-odds space
        around the base rate -- the factorised form that keeps training
        a pure (associative, commutative) aggregation.
        """
        if not features:
            return self.base_rate
        base = _logit(self.base_rate)
        score = base + sum(
            _logit(self.feature_rate(f)) - base for f in features
        )
        return _sigmoid(score)

    def top_features(self, k: int = 5) -> List[Tuple[str, float]]:
        """The k features with the highest smoothed CTR."""
        ranked = sorted(
            ((f, self.feature_rate(f)) for f in self.counts),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:k]


def train_ctr_model(
    logs: Sequence[Tuple[Tuple[str, ...], bool]],
    n_splits: int = 4,
    engine: MapReduceEngine = None,
    on_path_levels: int = 0,
) -> CtrModel:
    """Train a :class:`CtrModel` by running the real AP job.

    ``on_path_levels`` routes the training shuffle through NetAgg-style
    combine stages; the resulting model is identical either way.
    """
    if not logs:
        raise ValueError("no training data")
    engine = engine or MapReduceEngine()
    splits = [logs[i::n_splits] for i in range(n_splits)]
    splits = [s for s in splits if s]
    raw, _ = engine.run(adpredictor_job(), splits,
                        on_path_levels=on_path_levels)
    counts = {
        feature: unpack_clicks(packed) for feature, packed in raw.items()
    }
    return CtrModel(counts=counts)


def _logit(p: float) -> float:
    p = min(max(p, 1e-9), 1.0 - 1e-9)
    return math.log(p / (1.0 - p))


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    z = math.exp(x)
    return z / (1.0 + z)
