"""The map/reduce execution engine.

Runs a :class:`repro.apps.hadoop.job.JobSpec` over input splits through
the classic phases -- map, combine, shuffle (partition by key hash),
reduce -- computing real results while measuring byte volumes at each
stage with the binary wire codec.  Those measurements (per-job output
ratios, shuffle sizes) parameterise the testbed emulation of Figs 22-24.

Aggregation paths: with ``on_path_levels > 0`` the engine inserts that
many intermediate combine stages between mappers and the reducer,
emulating NetAgg's aggregation tree; byte counts at each level are
reported so the traffic reduction per hop is observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.hadoop.job import Counters, JobSpec
from repro.netsim.routing import stable_hash
from repro.wire.records import KeyValue, encode_kv_stream


@dataclass
class PhaseStats:
    """Byte volumes observed at each stage of one run."""

    map_output_bytes: float
    #: Bytes leaving each on-path combine level (index 0 = closest to
    #: the mappers); empty when no on-path aggregation was used.
    level_bytes: List[float]
    shuffle_bytes: float
    output_bytes: float
    #: Reducer outputs in emission order (globally sorted under the
    #: range partitioner -- TeraSort's contract).
    output_pairs: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def output_ratio(self) -> float:
        if self.map_output_bytes <= 0:
            return 1.0
        return self.output_bytes / self.map_output_bytes


def _encode_size(pairs: Sequence[Tuple[str, int]]) -> float:
    """Wire size of a key/value batch (measured, not modelled)."""
    return float(len(encode_kv_stream(
        [KeyValue(k, v) for k, v in pairs]
    )))


def _combine(pairs: Iterable[Tuple[str, int]], reducer) -> List[Tuple[str, int]]:
    grouped: Dict[str, List[int]] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return [(key, reducer(key, values)) for key, values in
            sorted(grouped.items())]


class MapReduceEngine:
    """Single-process execution of map/reduce jobs with real data.

    ``partitioner`` selects how intermediate keys map to reducers:

    - ``"hash"`` (default) -- Hadoop's default hash partitioner;
    - ``"range"`` -- TeraSort-style: cut points are sampled from the
      mapper outputs so reducer *i* receives a contiguous, sorted key
      range and the concatenated reducer outputs are globally sorted.
    """

    def __init__(self, n_reducers: int = 1,
                 partitioner: str = "hash") -> None:
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if partitioner not in ("hash", "range"):
            raise ValueError(f"unknown partitioner {partitioner!r}")
        self.n_reducers = n_reducers
        self.partitioner = partitioner

    def run(
        self,
        job: JobSpec,
        splits: Sequence[Sequence[object]],
        use_combiner: bool = True,
        on_path_levels: int = 0,
        counters: Optional[Counters] = None,
    ) -> Tuple[Dict[str, int], PhaseStats]:
        """Execute ``job`` over ``splits``; returns (result, stats).

        ``on_path_levels`` inserts NetAgg-style combine stages: mapper
        outputs are merged pairwise per level before the final shuffle.
        ``use_combiner=False`` disables even the per-mapper combine
        (plain Hadoop without combiners).
        """
        if on_path_levels < 0:
            raise ValueError("on_path_levels must be >= 0")
        if on_path_levels and not job.aggregatable:
            raise ValueError(
                f"job {job.name!r} has no combiner; cannot aggregate on-path"
            )
        counters = counters if counters is not None else Counters()

        # -- map phase -------------------------------------------------------
        map_outputs: List[List[Tuple[str, int]]] = []
        for split in splits:
            pairs: List[Tuple[str, int]] = []
            for record in split:
                counters.map_input_records += 1
                pairs.extend(job.mapper(record))
            counters.map_output_records += len(pairs)
            if use_combiner and job.combiner is not None:
                pairs = _combine(pairs, job.combiner)
                counters.combine_output_records += len(pairs)
            map_outputs.append(pairs)
        map_bytes = sum(_encode_size(p) for p in map_outputs)
        counters.map_output_bytes = map_bytes

        # -- on-path aggregation levels --------------------------------------
        level_bytes: List[float] = []
        current = map_outputs
        for _level in range(on_path_levels):
            if len(current) == 1:
                break
            merged: List[List[Tuple[str, int]]] = []
            for i in range(0, len(current), 2):
                group = [p for part in current[i:i + 2] for p in part]
                merged.append(_combine(group, job.combiner))
            current = merged
            level_bytes.append(sum(_encode_size(p) for p in current))

        # -- shuffle ---------------------------------------------------------
        shuffle_bytes = sum(_encode_size(p) for p in current)
        counters.shuffle_bytes = shuffle_bytes
        partitions: List[List[Tuple[str, int]]] = [
            [] for _ in range(self.n_reducers)
        ]
        route = self._make_partitioner(current)
        for part in current:
            for key, value in part:
                partitions[route(key)].append((key, value))

        # -- reduce ----------------------------------------------------------
        result: Dict[str, int] = {}
        output_pairs: List[Tuple[str, int]] = []
        for partition in partitions:
            reduced = _combine(partition, job.reducer)
            # _combine sorts by key; with a range partitioner the
            # concatenation of reducer outputs is globally sorted.
            output_pairs.extend(reduced)
            for key, value in reduced:
                result[key] = value
        if self.partitioner == "hash":
            output_pairs = sorted(output_pairs)
        output_bytes = _encode_size(output_pairs)
        counters.reduce_output_records = len(output_pairs)
        counters.reduce_output_bytes = output_bytes

        stats = PhaseStats(
            map_output_bytes=map_bytes,
            level_bytes=level_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_bytes,
            output_pairs=output_pairs,
        )
        return result, stats

    def _make_partitioner(
        self, parts: Sequence[Sequence[Tuple[str, int]]]
    ):
        """Key -> reducer index router for the configured partitioner."""
        if self.partitioner == "hash" or self.n_reducers == 1:
            n = self.n_reducers
            return lambda key: stable_hash(key) % n
        # Range partitioner: sample keys to find balanced cut points,
        # exactly like TeraSort's input sampler.
        import bisect

        sample: List[str] = sorted(
            key for part in parts for key, _ in part
        )
        if not sample:
            return lambda key: 0
        cuts = [
            sample[(i + 1) * len(sample) // self.n_reducers - 1]
            for i in range(self.n_reducers - 1)
        ]
        return lambda key: bisect.bisect_left(cuts, key)
