"""Distributed gradient aggregation -- the paper's third domain.

The introduction motivates NetAgg with "deep learning frameworks"
[Dean et al., Large Scale Distributed Deep Networks] alongside search
and map/reduce: data-parallel training sums per-worker gradients every
step -- an associative, commutative, fixed-size aggregation, the ideal
on-path workload (α = 1/n_workers).

This module trains a real model (linear regression via full-batch
gradient descent) with gradients aggregated through any merge path --
centrally, via :func:`repro.aggbox.localtree.tree_aggregate`, or
through a live :class:`repro.core.platform.NetAggPlatform`.  The merge
is mathematically associative/commutative; different tree shapes only
reorder float additions, so trained weights agree to rounding error
(asserted to ~1e-9 by the tests) and the model's quality is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.aggbox.functions import AggregationFunction
from repro.wire.serializer import read_float, read_varint, write_float, \
    write_varint


class VectorSumFunction(AggregationFunction):
    """Element-wise sum of equal-length vectors (gradient aggregation)."""

    name = "vector-sum"

    def merge(self, items: Sequence[List[float]]) -> List[float]:
        vectors = [v for v in items if v]
        if not vectors:
            return []
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ValueError(
                    f"gradient length mismatch: {len(vector)} != {length}"
                )
        return [sum(v[i] for v in vectors) for i in range(length)]

    def output_bytes(self, input_sizes: Sequence[float]) -> float:
        # The aggregate is one vector, the size of any single input.
        return max(input_sizes) if input_sizes else 0.0


def encode_vector(vector: List[float]) -> bytes:
    out = bytearray(write_varint(len(vector)))
    for value in vector:
        out += write_float(value)
    return bytes(out)


def decode_vector(buffer: bytes) -> List[float]:
    count, offset = read_varint(buffer, 0)
    values = []
    for _ in range(count):
        value, offset = read_float(buffer, offset)
        values.append(value)
    return values


@dataclass
class TrainResult:
    """Learned weights plus training diagnostics."""

    weights: List[float]
    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("inf")


def make_regression_data(
    n_samples: int, weights: Sequence[float], noise: float = 0.0,
    seed: int = 1,
) -> List[Tuple[List[float], float]]:
    """Synthetic linear-regression rows: (features, target)."""
    import random

    rng = random.Random(seed)
    rows = []
    for _ in range(n_samples):
        x = [rng.uniform(-1.0, 1.0) for _ in weights]
        y = sum(w * xi for w, xi in zip(weights, x))
        if noise:
            y += rng.gauss(0.0, noise)
        rows.append((x, y))
    return rows


def local_gradient(weights: Sequence[float],
                   rows: Sequence[Tuple[List[float], float]]
                   ) -> List[float]:
    """Summed (not averaged) squared-error gradient over one shard."""
    grad = [0.0] * len(weights)
    for x, y in rows:
        error = sum(w * xi for w, xi in zip(weights, x)) - y
        for i, xi in enumerate(x):
            grad[i] += 2.0 * error * xi
    return grad


def mse(weights: Sequence[float],
        rows: Sequence[Tuple[List[float], float]]) -> float:
    total = 0.0
    for x, y in rows:
        error = sum(w * xi for w, xi in zip(weights, x)) - y
        total += error * error
    return total / len(rows)


#: An aggregator takes per-worker gradients and returns their sum.
GradientAggregator = Callable[[int, List[List[float]]], List[float]]


def train(
    shards: Sequence[Sequence[Tuple[List[float], float]]],
    n_features: int,
    aggregate: Optional[GradientAggregator] = None,
    learning_rate: float = 0.05,
    iterations: int = 50,
) -> TrainResult:
    """Full-batch gradient descent with pluggable gradient aggregation.

    ``aggregate(step, gradients) -> summed gradient`` is the data path
    under test: pass the NetAgg platform's request execution to train
    *through the network*.  Defaults to a local tree merge.
    """
    if not shards or not all(len(s) for s in shards):
        raise ValueError("every shard needs data")
    if iterations < 1 or learning_rate <= 0:
        raise ValueError("bad hyper-parameters")
    if aggregate is None:
        from repro.aggbox.localtree import tree_aggregate

        function = VectorSumFunction()

        def aggregate(_step: int, gradients: List[List[float]]
                      ) -> List[float]:
            return tree_aggregate(function, gradients)

    n_total = sum(len(s) for s in shards)
    weights = [0.0] * n_features
    losses: List[float] = []
    everything = [row for shard in shards for row in shard]
    for step in range(iterations):
        gradients = [local_gradient(weights, shard) for shard in shards]
        summed = aggregate(step, gradients)
        weights = [
            w - learning_rate * g / n_total
            for w, g in zip(weights, summed)
        ]
        losses.append(mse(weights, everything))
    return TrainResult(weights=weights, losses=losses)


def netagg_aggregator(platform, master: str,
                      worker_hosts: Sequence[str],
                      app: str = "mlgrad") -> GradientAggregator:
    """Gradient aggregation through a live NetAgg platform.

    Registers :class:`VectorSumFunction` if the app is not yet known;
    each training step becomes one aggregation request.
    """
    if app not in platform.apps():
        platform.register_app(app, VectorSumFunction(),
                              encode_vector, decode_vector)

    def aggregate(step: int, gradients: List[List[float]]) -> List[float]:
        if len(gradients) != len(worker_hosts):
            raise ValueError("one gradient per worker host required")
        outcome = platform.execute_request(
            app, f"grad-step-{step}", master,
            list(zip(worker_hosts, gradients)),
        )
        return outcome.value

    return aggregate
