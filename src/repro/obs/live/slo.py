"""Multi-window SLO burn-rate alerting (Google SRE style).

An :class:`SloObjective` states a contract over a stream of good/bad
events -- "at least ``target`` of this tenant's requests are good" --
and its error budget is ``1 - target``.  The **burn rate** over a
window is the observed bad fraction divided by the budget: burn 1.0
spends the budget exactly at the sustainable pace, burn 10 spends it
ten times too fast.

:class:`SloMonitor` evaluates each objective over *two* sliding
windows, the multi-window pattern from the SRE workbook:

- the **fast** window (short) must burn at >= ``fast_burn`` (default
  5x budget) -- catches sharp regressions quickly;
- the **slow** window (long) must burn at >= ``slow_burn`` (default
  1x budget) -- suppresses blips that never threaten the budget.

An alert fires on the rising edge of *both* conditions holding and
re-arms only after both clear, so a sustained burn produces one alert
per episode, not one per request.  Everything runs on the caller's
virtual clock; evaluation is deterministic and allocation-bounded
(window deltas over ring-buffered cumulative counters).

Events are recorded through a :class:`~repro.obs.live.series
.TimeSeriesStore` (cumulative ``slo.good:<key>`` / ``slo.bad:<key>``
counter series), so the same store answers goodput-rate queries for
``/metrics`` and the ``watch`` dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.obs.live.series import TimeSeriesStore
from repro.obs.metrics import METRICS

#: Series-name prefixes the monitor records events under.
GOOD_PREFIX = "slo.good:"
BAD_PREFIX = "slo.bad:"


@dataclass(frozen=True)
class SloObjective:
    """One objective: a good-event fraction target over two windows."""

    key: str                    #: event-stream key (e.g. tenant name)
    target: float = 0.9         #: required good fraction (0 < t < 1)
    fast_window: float = 1.0    #: short window (virtual seconds)
    slow_window: float = 10.0   #: long window (virtual seconds)
    fast_burn: float = 5.0      #: firing threshold on the fast window
    slow_burn: float = 1.0      #: firing threshold on the slow window
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), "
                             f"got {self.target}")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError("windows must be positive")
        if self.fast_window > self.slow_window:
            raise ValueError("fast_window must not exceed slow_window")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad fraction."""
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRateAlert:
    """One fired burn-rate alert (the rising edge of an episode)."""

    key: str
    at: float
    fast_burn: float           #: observed burn over the fast window
    slow_burn: float           #: observed burn over the slow window
    budget: float
    fast_window: float
    slow_window: float
    good: int = 0              #: good events in the slow window
    bad: int = 0               #: bad events in the slow window

    def to_dict(self) -> Dict[str, float]:
        return {
            "key": self.key, "at": self.at,
            "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
            "budget": self.budget, "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "good": self.good, "bad": self.bad,
        }

    def tags(self) -> Dict[str, object]:
        """Flat tags for tracer instants / flight-recorder triggers."""
        return {"key": self.key, "fast_burn": round(self.fast_burn, 4),
                "slow_burn": round(self.slow_burn, 4),
                "budget": self.budget}


class SloMonitor:
    """Evaluates burn-rate objectives over a live time-series store."""

    def __init__(self, store: Optional[TimeSeriesStore] = None,
                 template: Optional[SloObjective] = None) -> None:
        self.store = store if store is not None else TimeSeriesStore()
        #: Objective auto-created (with its ``key`` substituted) for
        #: streams recorded without an explicit objective.
        self.template = template if template is not None \
            else SloObjective(key="")
        self.objectives: Dict[str, SloObjective] = {}
        self.alerts: List[BurnRateAlert] = []
        self._burning: Dict[str, float] = {}  #: key -> alert time
        self._m_alerts = METRICS.counter("obs.slo.alerts")

    def add_objective(self, objective: SloObjective) -> None:
        self.objectives[objective.key] = objective

    def objective(self, key: str) -> SloObjective:
        obj = self.objectives.get(key)
        if obj is None:
            obj = replace(self.template, key=key)
            self.objectives[key] = obj
        return obj

    # -- recording ---------------------------------------------------------

    def record(self, key: str, at: float, good: bool) -> None:
        """Fold one good/bad event at virtual time ``at``."""
        self.objective(key)
        prefix = GOOD_PREFIX if good else BAD_PREFIX
        self.store.count(prefix + key, at)

    # -- evaluation --------------------------------------------------------

    def counts(self, key: str, at: float,
               window: float) -> Tuple[float, float]:
        """(good, bad) event counts over ``(at - window, at]``."""
        return (self.store.delta(GOOD_PREFIX + key, at, window),
                self.store.delta(BAD_PREFIX + key, at, window))

    def burn_rate(self, key: str, at: float, window: float) -> float:
        """Observed bad fraction over the window, per unit budget.

        0.0 with no in-window events (no evidence is not a burn).
        """
        good, bad = self.counts(key, at, window)
        total = good + bad
        if total <= 0:
            return 0.0
        return (bad / total) / self.objective(key).budget

    def is_burning(self, key: str) -> bool:
        return key in self._burning

    def active(self) -> List[str]:
        """Keys currently inside a burn episode, sorted."""
        return sorted(self._burning)

    def evaluate(self, at: float) -> List[BurnRateAlert]:
        """Evaluate every objective at ``at``; returns *new* alerts.

        Edge-triggered: a key alerts once when both windows first
        exceed their thresholds and re-arms only after both drop back
        below -- the episode semantics that make alert counts
        meaningful.
        """
        fired: List[BurnRateAlert] = []
        for key in sorted(self.objectives):
            obj = self.objectives[key]
            fast = self.burn_rate(key, at, obj.fast_window)
            slow = self.burn_rate(key, at, obj.slow_window)
            burning = fast >= obj.fast_burn and slow >= obj.slow_burn
            if burning and key not in self._burning:
                good, bad = self.counts(key, at, obj.slow_window)
                alert = BurnRateAlert(
                    key=key, at=at, fast_burn=fast, slow_burn=slow,
                    budget=obj.budget, fast_window=obj.fast_window,
                    slow_window=obj.slow_window,
                    good=int(good), bad=int(bad),
                )
                self._burning[key] = at
                self.alerts.append(alert)
                fired.append(alert)
                self._m_alerts.inc()
            elif not burning and key in self._burning \
                    and fast < obj.fast_burn and slow < obj.slow_burn:
                del self._burning[key]
        return fired
