"""``repro.obs.live`` -- the streaming telemetry plane.

Where :mod:`repro.obs.analyze` digests a finished trace, this package
watches a *running* system.  It layers four pieces on the existing
``MetricsRegistry`` / ``Tracer`` seams:

- :mod:`~repro.obs.live.series`: per-series ring buffers over virtual
  time with tumbling/sliding windows, counter rates, and the shared
  :func:`~repro.obs.live.series.ewma_step` smoothing primitive -- the
  one sanctioned home for windowing math (``tools/check_obs.py`` lints
  reimplementations elsewhere);
- :mod:`~repro.obs.live.slo`: multi-window burn-rate alerting over
  good/bad event streams (fast 5x-budget + slow 1x-budget windows);
- :mod:`~repro.obs.live.recorder`: the always-on, bounded
  :class:`FlightRecorder` that dumps a validator-clean Perfetto trace
  of the moments *before* an anomaly;
- :mod:`~repro.obs.live.exposition`: Prometheus text-format rendering
  for ``GET /metrics``.

:class:`LiveTelemetry` bundles them into the object the serving layer
owns: every handled request flows through :meth:`LiveTelemetry
.observe_request`, which updates the windowed series, folds the
request into its tenant's SLO stream, evaluates burn rates, and -- on
an alert's rising edge -- tags and dumps the flight recorder.
Breaker-open and partition events reach the same recorder through
:meth:`LiveTelemetry.trigger`.  The optimizer's ``Auditor`` consumes
:meth:`LiveTelemetry.drain_alerts` as a first-class audit signal
(observe -> alert -> act; see ARCHITECTURE.md, "Live telemetry").
"""

from __future__ import annotations

import pathlib
import re
from typing import Dict, List, Optional

from repro.obs.live.exposition import (
    render_prometheus,
    render_registry,
    sample_line,
    validate_exposition,
)
from repro.obs.live.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.live.series import (
    COUNTER,
    DEFAULT_MAXLEN,
    GAUGE,
    TimeSeriesStore,
    WindowStats,
    WindowedSeries,
    ewma_step,
)
from repro.obs.live.slo import (
    BAD_PREFIX,
    GOOD_PREFIX,
    BurnRateAlert,
    SloMonitor,
    SloObjective,
)

#: Series-name prefixes the serving layer records under.
LATENCY_PREFIX = "serve.latency:"
REQUEST_PREFIX = "serve.requests:"

#: Statuses that are the *caller's* fault -- excluded from SLO streams
#: (a tenant over its own rate limit is not a service regression).
CLIENT_FAULT_STATUSES = frozenset({400, 404, 405, 413, 429})

#: Statuses counting as good SLO events (degraded 206 answers count:
#: partial delivery inside the completeness contract is the promised
#: behaviour, not a violation -- lateness still makes them bad).
GOOD_STATUSES = frozenset({200, 206})


class LiveTelemetry:
    """The per-service live telemetry plane (see module docstring)."""

    def __init__(self,
                 template: Optional[SloObjective] = None,
                 maxlen: int = DEFAULT_MAXLEN,
                 recorder_capacity: int = DEFAULT_CAPACITY,
                 window: float = 5.0,
                 dump_dir: Optional[str] = None,
                 dump_min_interval: float = 1.0) -> None:
        self.store = TimeSeriesStore(maxlen=maxlen)
        self.monitor = SloMonitor(store=self.store, template=template)
        self.recorder = FlightRecorder(capacity=recorder_capacity,
                                       min_interval=dump_min_interval)
        #: Window (virtual seconds) for dashboard/exposition stats.
        self.window = window
        self.dump_dir = dump_dir
        self.now = 0.0  #: latest virtual time observed
        self._alert_cursor = 0

    # -- recording ---------------------------------------------------------

    def observe_request(self, tenant: str, at: float, status: int,
                        latency: float,
                        slo: Optional[float] = None
                        ) -> List[BurnRateAlert]:
        """Fold one handled request into the plane; returns new alerts.

        ``slo`` is the tenant's latency objective (seconds); a request
        is a *good* SLO event when it succeeded (200/206) within that
        objective.  Client-fault statuses (4xx) do not count against
        the SLO at all.
        """
        self.now = max(self.now, at)
        self.store.observe(LATENCY_PREFIX + tenant, at, latency)
        self.store.count(REQUEST_PREFIX + tenant, at)
        if status not in CLIENT_FAULT_STATUSES:
            good = status in GOOD_STATUSES and \
                (slo is None or latency <= slo)
            self.monitor.record(tenant, at, good)
        fired = self.monitor.evaluate(at)
        for alert in fired:
            self._on_alert(alert)
        return fired

    def trigger(self, kind: str, at: float, **tags: object
                ) -> Optional[dict]:
        """An anomaly outside the SLO path (breaker open, partition):
        mark it in the ring and dump the flight recorder."""
        self.now = max(self.now, at)
        self.recorder.instant(kind, at, layer="serve", **tags)
        return self._dump(kind, at, **tags)

    def _on_alert(self, alert: BurnRateAlert) -> None:
        tags = alert.tags()
        self.recorder.instant("slo.burn_alert", alert.at,
                              layer="serve", **tags)
        self._dump(f"slo_burn:{alert.key}", alert.at, **tags)

    def _dump(self, kind: str, at: float,
              **tags: object) -> Optional[dict]:
        path = None
        if self.dump_dir is not None:
            safe = re.sub(r"[^A-Za-z0-9_.-]", "_", kind)
            path = (pathlib.Path(self.dump_dir)
                    / f"flightrec-{safe}-{at:.6f}.json")
        return self.recorder.dump(kind, at, path=path, **tags)

    # -- consumption -------------------------------------------------------

    def drain_alerts(self) -> List[BurnRateAlert]:
        """Alerts fired since the last drain (the Auditor's feed)."""
        fired = self.monitor.alerts[self._alert_cursor:]
        self._alert_cursor = len(self.monitor.alerts)
        return list(fired)

    def tenants(self) -> List[str]:
        """Tenant keys with any recorded traffic, sorted."""
        n = len(LATENCY_PREFIX)
        return [name[n:] for name in self.store.names(LATENCY_PREFIX)]

    def windowed(self, tenant: str,
                 at: Optional[float] = None) -> Dict[str, float]:
        """Live windowed stats for one tenant (dashboard / stats row)."""
        at = self.now if at is None else at
        obj = self.monitor.objective(tenant)
        stats = self.store.window(LATENCY_PREFIX + tenant, at,
                                  self.window)
        return {
            "window_s": self.window,
            "count": stats.count,
            "p50": stats.p50,
            "p99": stats.p99,
            "mean": stats.mean,
            "rate_rps": self.store.rate(REQUEST_PREFIX + tenant, at,
                                        self.window),
            "goodput_rps": self.store.rate(GOOD_PREFIX + tenant, at,
                                           self.window),
            "burn_fast": self.monitor.burn_rate(tenant, at,
                                                obj.fast_window),
            "burn_slow": self.monitor.burn_rate(tenant, at,
                                                obj.slow_window),
            "burning": 1.0 if self.monitor.is_burning(tenant) else 0.0,
        }

    def exposition_lines(self, at: Optional[float] = None) -> List[str]:
        """Windowed per-tenant samples in Prometheus text format."""
        at = self.now if at is None else at
        tenants = self.tenants()
        rows = [(t, self.windowed(t, at)) for t in tenants]
        lines: List[str] = []

        def family(name: str, field: str) -> None:
            lines.append(f"# TYPE {name} gauge")
            for tenant, row in rows:
                lines.append(sample_line(name, row[field],
                                         {"key": tenant}))

        if rows:
            family("repro_window_p50_seconds", "p50")
            family("repro_window_p99_seconds", "p99")
            family("repro_window_request_rate", "rate_rps")
            family("repro_window_goodput_rate", "goodput_rps")
            lines.append("# TYPE repro_slo_burn_rate gauge")
            for tenant, row in rows:
                for win in ("fast", "slow"):
                    lines.append(sample_line(
                        "repro_slo_burn_rate", row[f"burn_{win}"],
                        {"key": tenant, "window": win}))
            family("repro_slo_burning", "burning")
        return lines


__all__ = [
    "BAD_PREFIX",
    "BurnRateAlert",
    "CLIENT_FAULT_STATUSES",
    "COUNTER",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAXLEN",
    "FlightRecorder",
    "GAUGE",
    "GOOD_PREFIX",
    "GOOD_STATUSES",
    "LATENCY_PREFIX",
    "LiveTelemetry",
    "REQUEST_PREFIX",
    "SloMonitor",
    "SloObjective",
    "TimeSeriesStore",
    "WindowStats",
    "WindowedSeries",
    "ewma_step",
    "render_prometheus",
    "render_registry",
    "sample_line",
    "validate_exposition",
]
