"""The anomaly-triggered flight recorder.

A :class:`FlightRecorder` is a :class:`~repro.obs.tracer.Tracer` whose
record lists are bounded rings: it can stay installed as the active
tracer indefinitely -- the black box on the aircraft -- holding only
the most recent ``capacity`` spans, instants and counter samples.
Instrumented hot paths keep their exact NULL_TRACER discipline (one
``tracer.enabled`` branch when no tracer is installed; the recorder is
only active while the serving layer is inside a request), so always-on
recording costs ring appends, never growth.

When something anomalous happens -- an SLO burn-rate alert fires, a
circuit breaker opens, a partition is detected -- :meth:`dump` freezes
the ring as a complete, validator-clean Perfetto ``trace_event``
payload via :mod:`repro.obs.export`, tagged with the triggering event,
so the operator gets the seconds *leading up to* the anomaly without
having traced anything in advance.

Dumps are debounced per trigger kind (``min_interval`` on the virtual
clock) and the kept payloads are themselves a bounded ring, so a
pathological alert storm cannot turn the recorder into a leak.
Determinism: the ring content is a pure function of the recorded
virtual-clock events, so identical seeds and fault schedules dump
byte-identical traces (pinned by ``tests/test_live.py``).
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Deque, Dict, Optional, Tuple, Union

from repro.obs.export import trace_payload
from repro.obs.metrics import METRICS
from repro.obs.tracer import Tracer

#: Default ring capacity (records per kind).
DEFAULT_CAPACITY = 2048

#: Dump payloads kept in memory (oldest evicted).
KEPT_DUMPS = 8


class FlightRecorder(Tracer):
    """A tracer whose memory is a bounded ring (see module docstring)."""

    __slots__ = ("capacity", "min_interval", "dumps", "_last_dump")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 min_interval: float = 1.0) -> None:
        super().__init__()
        if capacity < 16:
            raise ValueError("capacity must be >= 16")
        self.capacity = capacity
        self.min_interval = min_interval
        # Rebind the record containers as rings; every Tracer method
        # appends through these, so the override is complete.
        self.spans = deque(maxlen=capacity)
        self.instants = deque(maxlen=capacity)
        self.samples = deque(maxlen=capacity)
        #: (trigger, at, payload) of recent dumps, oldest evicted.
        self.dumps: Deque[Tuple[str, float, dict]] = \
            deque(maxlen=KEPT_DUMPS)
        self._last_dump: Dict[str, float] = {}

    def record_count(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.samples)

    def dump(self, trigger: str, at: float,
             path: Optional[Union[str, pathlib.Path]] = None,
             metrics: Optional[Dict[str, float]] = None,
             **tags: object) -> Optional[dict]:
        """Freeze the ring as a Perfetto payload tagged with ``trigger``.

        Returns the payload dict (and writes it to ``path`` when
        given), or None when the trigger kind is inside its debounce
        interval.  The payload passes
        :func:`repro.obs.export.validate_trace_events` by construction
        and carries a top-level ``trigger`` object (viewers ignore
        unknown keys).
        """
        last = self._last_dump.get(trigger)
        if last is not None and at - last < self.min_interval:
            METRICS.counter("obs.flightrec.suppressed").inc()
            return None
        self._last_dump[trigger] = at
        payload = trace_payload(self, metrics=metrics)
        payload["trigger"] = {
            "kind": trigger,
            "at": at,
            **{key: value if isinstance(value,
                                        (str, int, float, bool))
               or value is None else repr(value)
               for key, value in tags.items()},
        }
        self.dumps.append((trigger, at, payload))
        METRICS.counter("obs.flightrec.dumps").inc()
        if path is not None:
            pathlib.Path(path).write_text(
                json.dumps(payload, indent=1) + "\n", encoding="utf-8")
        return payload

    def last_dump(self) -> Optional[dict]:
        """The most recent dump payload (None before the first)."""
        if not self.dumps:
            return None
        return self.dumps[-1][2]
