"""Prometheus text exposition (format 0.0.4) of the live telemetry.

:func:`render_prometheus` turns the process-wide
:data:`repro.obs.METRICS` registry -- plus, when given, a
:class:`~repro.obs.live.LiveTelemetry` plane's windowed series, burn
rates and alert counts -- into the plain-text format every Prometheus
scraper understands:

- counters expose as ``repro_<name>_total``;
- gauges as ``repro_<name>``;
- histograms as summaries: ``_count`` / ``_sum`` plus
  ``{quantile="0.5"|"0.99"}`` samples from the log-bucket estimator;
- windowed telemetry as labelled gauges
  (``repro_window_p99_seconds{key="tenant-1"}``,
  ``repro_slo_burn_rate{key=...,window="fast"}``, ...).

Rendering reads only bounded state (the registry's metric objects and
the store's rings), so the exposition's cost is independent of how
long the process has been serving -- the hardening property
``GET /metrics`` inherits.

:func:`validate_exposition` is the line-level lint the CI serve-smoke
job runs against a live scrape (malformed names, bad label syntax,
non-numeric values, samples without a ``# TYPE``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    METRICS,
)

#: Exposition metric-name prefix.
PREFIX = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$')
_VALUE_RE = re.compile(
    r"^[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)$")


def mangle(name: str) -> str:
    """A registry metric name as a legal exposition name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return PREFIX + cleaned


def escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def sample_line(name: str, value: float,
                labels: Optional[Dict[str, str]] = None) -> str:
    if labels:
        body = ",".join(f'{key}="{escape_label(str(val))}"'
                        for key, val in sorted(labels.items()))
        return f"{name}{{{body}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def render_registry(registry: Optional[MetricsRegistry] = None,
                    ) -> List[str]:
    """Exposition lines for every metric in the registry."""
    registry = registry if registry is not None else METRICS
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        if isinstance(metric, Counter):
            exposed = mangle(name) + "_total"
            lines.append(f"# TYPE {exposed} counter")
            lines.append(sample_line(exposed, metric.value))
        elif isinstance(metric, Gauge):
            exposed = mangle(name)
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(sample_line(exposed, metric.value))
        elif isinstance(metric, Histogram):
            exposed = mangle(name)
            lines.append(f"# TYPE {exposed} summary")
            if metric.count:
                for q, p in (("0.5", 50.0), ("0.99", 99.0)):
                    lines.append(sample_line(
                        exposed, metric.percentile(p), {"quantile": q}))
            lines.append(sample_line(exposed + "_count", metric.count))
            lines.append(sample_line(exposed + "_sum", metric.total))
    return lines


def render_prometheus(registry: Optional[MetricsRegistry] = None,
                      telemetry=None,
                      at: Optional[float] = None) -> str:
    """The full exposition document (ends with a newline).

    ``telemetry`` is a :class:`repro.obs.live.LiveTelemetry` (duck:
    anything with ``exposition_lines(at)``); ``at`` is the virtual
    time windowed samples are evaluated at.
    """
    lines = render_registry(registry)
    if telemetry is not None:
        lines.extend(telemetry.exposition_lines(at))
    return "\n".join(lines) + "\n"


def _split_labels(body: str) -> Optional[List[str]]:
    """Split a label body on top-level commas (None on bad syntax)."""
    parts: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes or escaped:
        return None
    if current:
        parts.append("".join(current))
    return parts


def validate_exposition(text: str) -> List[str]:
    """Line-level problems in an exposition document (empty = valid)."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 2 and fields[1] in ("TYPE", "HELP"):
                if len(fields) < 3 or not _NAME_RE.match(fields[2]):
                    problems.append(
                        f"line {lineno}: malformed {fields[1]} comment")
                elif fields[1] == "TYPE":
                    if len(fields) < 4 or fields[3] not in (
                            "counter", "gauge", "summary", "histogram",
                            "untyped"):
                        problems.append(
                            f"line {lineno}: unknown metric type")
                    else:
                        typed[fields[2]] = fields[3]
            continue
        name, labels, value = _parse_sample(line)
        if name is None:
            problems.append(f"line {lineno}: unparseable sample "
                            f"{line!r}")
            continue
        if not _NAME_RE.match(name):
            problems.append(f"line {lineno}: bad metric name {name!r}")
        if labels is not None:
            parts = _split_labels(labels)
            if parts is None:
                problems.append(
                    f"line {lineno}: bad label syntax {labels!r}")
            else:
                for part in parts:
                    if not _LABEL_RE.match(part.strip()):
                        problems.append(
                            f"line {lineno}: bad label {part!r}")
        if not _VALUE_RE.match(value):
            problems.append(f"line {lineno}: bad value {value!r}")
        family = re.sub(r"_(total|count|sum|bucket)$", "", name)
        if name not in typed and family not in typed:
            problems.append(
                f"line {lineno}: sample {name!r} has no # TYPE")
    return problems


def _parse_sample(
    line: str,
) -> Tuple[Optional[str], Optional[str], str]:
    """(name, label_body_or_None, value) of one sample line."""
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            return None, None, ""
        name = line[:brace]
        labels = line[brace + 1:close]
        rest = line[close + 1:].strip()
    else:
        fields = line.split()
        if len(fields) < 2:
            return None, None, ""
        name, rest = fields[0], " ".join(fields[1:])
        labels = None
    value = rest.split()[0] if rest.split() else ""
    if not name or not value:
        return None, None, ""
    return name, labels, value
