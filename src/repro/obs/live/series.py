"""Windowed time-series over virtual time: the live half of obs.

The post-hoc pipeline (``Tracer`` -> export -> ``repro.obs.analyze``)
answers questions *after* a run; this module answers them *during* one.
A :class:`TimeSeriesStore` holds named :class:`WindowedSeries` -- ring
buffers of ``(at, value)`` points on whatever virtual clock the caller
runs -- and folds them into tumbling or sliding :class:`WindowStats`
on demand:

- **gauge/event series** (``observe``): each point is one measurement
  (a request latency, a queue depth); window queries return
  count/sum/min/max/mean and exact percentiles over the in-window
  points (the ring bound caps the work and the memory);
- **counter series** (``count`` / ``record_counter``): each point is a
  cumulative total; window queries return the *delta* and the *rate*
  over the window, which is how counters become live throughput
  numbers without per-event bookkeeping.

Memory is bounded by construction: every series retains at most
``2 * maxlen`` points (amortised-O(1) batch eviction of the oldest).
Under sustained load a window query therefore covers the most recent
retained points that fall in the window -- a documented approximation,
not a leak.

This module is also the one sanctioned home for windowing/EWMA
arithmetic: ``tools/check_obs.py`` lints ad-hoc reimplementations
outside ``repro.obs.live`` (:func:`ewma_step` is the shared smoothing
primitive; :class:`repro.core.partition.GrayDetector` consumes it).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.units import percentile

#: Series kinds (a name keeps the kind it was first created with).
GAUGE = "gauge"
COUNTER = "counter"

#: Default per-series ring capacity.
DEFAULT_MAXLEN = 1024


def ewma_step(previous: Optional[float], sample: float,
              alpha: float) -> float:
    """One exponentially-weighted moving-average update.

    ``previous=None`` seeds the average with the sample.  The single
    shared implementation of the smoothing arithmetic that used to be
    re-derived inline wherever a baseline was needed.
    """
    if previous is None:
        return sample
    return previous + alpha * (sample - previous)


@dataclass(frozen=True)
class WindowStats:
    """Aggregates of one window of one series."""

    start: float
    end: float
    count: int
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def span(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, float]:
        return {
            "start": self.start, "end": self.end, "count": self.count,
            "sum": self.total, "mean": self.mean, "min": self.minimum,
            "max": self.maximum, "p50": self.p50, "p99": self.p99,
        }


_EMPTY = WindowStats(start=0.0, end=0.0, count=0)


class WindowedSeries:
    """One named ring buffer of ``(at, value)`` points.

    Points must arrive in non-decreasing ``at`` order (all layers run
    single-threaded on monotonic virtual clocks); the ring then stays
    sorted by construction and window queries are two binary searches.
    The ring is a compacted list pair -- appends are O(1) amortised,
    eviction drops the oldest half-batch once the list doubles past
    ``maxlen``, and random access stays O(1) for the bisects.
    """

    __slots__ = ("name", "kind", "maxlen", "_at", "_values")

    def __init__(self, name: str, kind: str = GAUGE,
                 maxlen: int = DEFAULT_MAXLEN) -> None:
        if kind not in (GAUGE, COUNTER):
            raise ValueError(f"unknown series kind {kind!r}")
        if maxlen < 2:
            raise ValueError("maxlen must be >= 2")
        self.name = name
        self.kind = kind
        self.maxlen = maxlen
        self._at: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._at)

    def observe(self, at: float, value: float) -> None:
        """Append one point (``at`` must not move backwards)."""
        if self._at and at < self._at[-1]:
            raise ValueError(
                f"series {self.name!r}: point at {at} precedes the "
                f"latest point at {self._at[-1]}")
        self._at.append(float(at))
        self._values.append(float(value))
        if len(self._at) > 2 * self.maxlen:
            del self._at[:-self.maxlen]
            del self._values[:-self.maxlen]

    def last(self) -> Optional[Tuple[float, float]]:
        if not self._at:
            return None
        return self._at[-1], self._values[-1]

    def points(self, start: float,
               end: float) -> List[Tuple[float, float]]:
        """In-window points, ``start < at <= end`` (half-open on the
        left so tumbling windows partition the timeline); only retained
        (non-evicted) points are visible."""
        lo = bisect_right(self._at, start)
        hi = bisect_right(self._at, end)
        return list(zip(self._at[lo:hi], self._values[lo:hi]))

    # -- gauge-style queries -----------------------------------------------

    def window(self, at: float, window: float) -> WindowStats:
        """Sliding-window aggregates over ``(at - window, at]``."""
        start = at - window
        inside = [v for _, v in self.points(start, at)]
        if not inside:
            return WindowStats(start=start, end=at, count=0)
        return WindowStats(
            start=start, end=at, count=len(inside), total=sum(inside),
            minimum=min(inside), maximum=max(inside),
            p50=percentile(inside, 50.0), p99=percentile(inside, 99.0),
        )

    def tumbling(self, at: float, window: float) -> WindowStats:
        """Aggregates over the last *completed* tumbling window.

        Tumbling windows are the fixed half-open partitions
        ``(k*window, (k+1)*window]``; at time ``at`` the last completed
        one is the partition ending at ``floor(at/window)*window``.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        end = math.floor(at / window) * window
        return self.window(end, window)

    # -- counter-style queries ---------------------------------------------

    def value_at(self, at: float) -> float:
        """Latest cumulative value at or before ``at`` (0 before the
        first retained point -- the documented ring approximation)."""
        index = bisect_right(self._at, at) - 1
        if index < 0:
            return 0.0
        return self._values[index]

    def delta(self, at: float, window: float) -> float:
        """Cumulative-value increase over ``(at - window, at]``."""
        return self.value_at(at) - self.value_at(at - window)

    def rate(self, at: float, window: float) -> float:
        """Per-second rate over the window (delta / window)."""
        if window <= 0:
            raise ValueError("window must be positive")
        return self.delta(at, window) / window


class TimeSeriesStore:
    """Name -> :class:`WindowedSeries` map with get-or-create access."""

    def __init__(self, maxlen: int = DEFAULT_MAXLEN) -> None:
        self.maxlen = maxlen
        self._series: Dict[str, WindowedSeries] = {}

    def series(self, name: str, kind: str = GAUGE) -> WindowedSeries:
        series = self._series.get(name)
        if series is None:
            series = WindowedSeries(name, kind=kind, maxlen=self.maxlen)
            self._series[name] = series
        elif series.kind != kind:
            raise TypeError(
                f"series {name!r} is a {series.kind}, not a {kind}")
        return series

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._series if n.startswith(prefix))

    def get(self, name: str) -> Optional[WindowedSeries]:
        return self._series.get(name)

    # -- recording ---------------------------------------------------------

    def observe(self, name: str, at: float, value: float) -> None:
        """Append one gauge/event measurement."""
        self.series(name, GAUGE).observe(at, value)

    def count(self, name: str, at: float, n: float = 1.0) -> None:
        """Bump a store-owned cumulative counter by ``n`` at ``at``."""
        series = self.series(name, COUNTER)
        last = series.last()
        total = (last[1] if last else 0.0) + n
        # Same-timestamp bumps fold into one point (the ring stays one
        # point per distinct instant under bursts).
        if last and last[0] == at:
            series._values[-1] = total
        else:
            series.observe(at, total)

    def record_counter(self, name: str, at: float, value: float) -> None:
        """Sample an *external* cumulative counter (e.g. one from
        :data:`repro.obs.METRICS`) so windowed rates can be derived."""
        series = self.series(name, COUNTER)
        last = series.last()
        if last and last[0] == at:
            series._values[-1] = float(value)
        else:
            series.observe(at, value)

    # -- queries -----------------------------------------------------------

    def window(self, name: str, at: float, window: float) -> WindowStats:
        series = self._series.get(name)
        if series is None:
            return _EMPTY
        return series.window(at, window)

    def rate(self, name: str, at: float, window: float) -> float:
        series = self._series.get(name)
        if series is None:
            return 0.0
        return series.rate(at, window)

    def delta(self, name: str, at: float, window: float) -> float:
        series = self._series.get(name)
        if series is None:
            return 0.0
        return series.delta(at, window)
