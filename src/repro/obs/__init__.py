"""``repro.obs`` -- the unified observability layer.

One zero-dependency subsystem replaces the three ad-hoc telemetry
mechanisms that grew across PRs 1-3 (``SimCounters`` in the flow
simulator, ``ShimEvent`` tallies in the platform, box health/queue
stats in the aggbox layer):

- :class:`Tracer` records structured spans and instant events on the
  layers' *virtual* clocks.  The default tracer is a no-op
  (:data:`NULL_TRACER`); instrumented hot paths pay a single
  ``tracer.enabled`` branch when tracing is off.  Enable it around a
  region with :func:`tracing`::

      with tracing(Tracer()) as tracer:
          run_experiment()
      write_trace(tracer, "trace.json")

- :class:`MetricsRegistry` holds named counters, gauges and histograms
  behind one ``snapshot()``.  The process-wide registry is
  :data:`METRICS`; the simulator, platform and aggbox layers all write
  into it (``netsim.*``, ``platform.*``, ``aggbox.*`` namespaces).

- :mod:`repro.obs.export` renders a tracer into Chrome/Perfetto
  ``trace_event`` JSON (``python -m repro trace fig06 --out
  trace.json``) and validates that schema.

Span taxonomy (see ARCHITECTURE.md, "Observability"): layer tags are
``netsim`` / ``platform`` / ``aggbox``; each layer maps to its own
Perfetto thread row, so one timeline correlates simulator rate epochs,
shim send->retry->breaker->NACK lifecycles and per-partial box work.
"""

from __future__ import annotations

from repro.obs.export import (
    to_trace_events,
    trace_payload,
    validate_trace_events,
    validate_trace_file,
    write_trace,
)
from repro.obs.live import (
    BurnRateAlert,
    FlightRecorder,
    LiveTelemetry,
    SloMonitor,
    SloObjective,
    TimeSeriesStore,
    WindowStats,
    WindowedSeries,
    ewma_step,
    render_prometheus,
    validate_exposition,
)
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    LINK_UTIL_PREFIX,
    NULL_TRACER,
    Instant,
    NullTracer,
    Sample,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "BurnRateAlert",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Instant",
    "LINK_UTIL_PREFIX",
    "LiveTelemetry",
    "METRICS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Sample",
    "SloMonitor",
    "SloObjective",
    "Span",
    "TimeSeriesStore",
    "Tracer",
    "WindowStats",
    "WindowedSeries",
    "ewma_step",
    "get_tracer",
    "render_prometheus",
    "set_tracer",
    "to_trace_events",
    "trace_payload",
    "tracing",
    "validate_exposition",
    "validate_trace_events",
    "validate_trace_file",
    "write_trace",
]
