"""Per-tenant serving attribution for the diagnosis layer.

Folds the serving layer's trace records -- ``serve.request`` spans
(service time, with the queueing ``wait`` and ``arrival`` as tags) and
``serve.response`` instants (final status, total latency) -- into the
per-tenant section ``python -m repro analyze`` prints:

    {"requests": N,
     "tenants": {"tenant-1": {"requests": ..., "ok": ..., "partial":
                 ..., "mean_completeness": ..., "hedges": ...,
                 "rejected": ..., "mean_wait": ..., "mean_service":
                 ..., "p99_latency": ..., "statuses": {"200": ...}},
                 ...}}

``partial`` counts 206 responses (partition-tolerant partial
aggregates), ``mean_completeness`` averages their covered worker
fraction, and ``hedges`` sums the hedged deliveries the platform
performed for the tenant's requests -- the per-tenant partition
attribution.

Latency here is end-to-end from arrival (wait + service), matching the
numbers the loadgen report prints, so a trace diagnosed after the fact
agrees with the live ledger.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.analyze.trace_data import TraceData
from repro.units import percentile

#: Span the service opens around one executed request.
SERVE_SPAN = "serve.request"
#: Instant the service emits for every response (any status).
SERVE_RESPONSE = "serve.response"


def serve_report(trace: TraceData) -> Dict[str, object]:
    """The diagnosis's ``serve`` section; empty dict when no serving ran."""
    spans = [s for s in trace.spans
             if s.layer == "serve" and s.name == SERVE_SPAN]
    responses = [i for i in trace.instants
                 if i.layer == "serve" and i.name == SERVE_RESPONSE]
    if not spans and not responses:
        return {}

    waits: Dict[str, List[float]] = {}
    services: Dict[str, List[float]] = {}
    for span in spans:
        tenant = str(span.tags.get("tenant", ""))
        waits.setdefault(tenant, []).append(
            float(span.tags.get("wait", 0.0)))
        services.setdefault(tenant, []).append(span.duration)

    statuses: Dict[str, Dict[str, int]] = {}
    latencies: Dict[str, List[float]] = {}
    hedges: Dict[str, int] = {}
    fractions: Dict[str, List[float]] = {}
    for instant in responses:
        tenant = str(instant.tags.get("tenant", ""))
        status = str(int(instant.tags.get("status", 0)))
        per_tenant = statuses.setdefault(tenant, {})
        per_tenant[status] = per_tenant.get(status, 0) + 1
        hedges[tenant] = hedges.get(tenant, 0) \
            + int(instant.tags.get("hedges", 0))
        if status in ("200", "206"):
            latencies.setdefault(tenant, []).append(
                float(instant.tags.get("latency", 0.0)))
        if status == "206":
            fractions.setdefault(tenant, []).append(
                float(instant.tags.get("completeness", 1.0)))

    tenants: Dict[str, object] = {}
    for tenant in sorted(set(waits) | set(statuses)):
        counts = statuses.get(tenant, {})
        ok = counts.get("200", 0)
        partial = counts.get("206", 0)
        lat = latencies.get(tenant, [])
        frac = fractions.get(tenant, [])
        tenants[tenant] = {
            "requests": sum(counts.values()) or len(
                services.get(tenant, [])),
            "ok": ok,
            "partial": partial,
            "mean_completeness": _mean(frac) if frac else 1.0,
            "hedges": hedges.get(tenant, 0),
            "rejected": sum(n for code, n in counts.items()
                            if code in ("429", "503")),
            "mean_wait": _mean(waits.get(tenant, [])),
            "mean_service": _mean(services.get(tenant, [])),
            "p99_latency": percentile(lat, 99.0) if lat else 0.0,
            "statuses": dict(sorted(counts.items())),
        }
    return {
        "requests": sum(t["requests"] for t in tenants.values()),
        "tenants": tenants,
    }


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
