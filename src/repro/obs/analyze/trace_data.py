"""Neutral trace model: one shape for live tracers and exported files.

Analysis must not care where a trace came from: ``python -m repro
analyze --run fig06`` works on a live :class:`~repro.obs.Tracer` while
``--trace trace.json`` reloads a Perfetto JSON file written by
:func:`repro.obs.export.write_trace`.  Both loaders normalise into the
same frozen record types, carrying the exact virtual-clock seconds the
exporter stores in its top-level ``t0``/``t1``/``seq`` keys (the
``ts``/``dur`` microsecond fields lose float precision), so the two
paths are bit-for-bit identical -- pinned by
``tests/test_analyze.py::TestRoundTrip``.

A single trace may hold several sequential simulator runs (a strategy
sweep traces ``none`` and ``netagg`` back to back, both starting at
virtual t=0).  Times therefore cannot segment a trace; the tracer-wide
monotonic ``seq`` can, because the layers run single-threaded: every
record emitted during a run sits between that run's ``flowsim.run``
span and the next one's.  :meth:`TraceData.runs` performs that cut.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.obs.export import _clean_args
from repro.obs.tracer import Tracer

#: Span name the simulator opens around one :meth:`FlowSim.run`.
RUN_SPAN = "flowsim.run"
#: Span name the platform opens around one ``execute_request``.
REQUEST_SPAN = "platform.request"


@dataclass(frozen=True)
class SpanRec:
    """One closed interval (open spans are padded to the horizon)."""

    seq: int
    parent: Optional[int]
    name: str
    layer: str
    start: float
    end: float
    tags: Mapping[str, object]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class InstantRec:
    seq: int
    name: str
    layer: str
    at: float
    tags: Mapping[str, object]


@dataclass(frozen=True)
class SampleRec:
    seq: int
    name: str
    layer: str
    at: float
    value: float


@dataclass
class RunView:
    """All records emitted during one ``flowsim.run`` span."""

    span: SpanRec
    spans: List[SpanRec] = field(default_factory=list)
    instants: List[InstantRec] = field(default_factory=list)
    samples: List[SampleRec] = field(default_factory=list)

    @property
    def strategy(self) -> str:
        return str(self.span.tags.get("strategy", ""))

    @property
    def end_time(self) -> float:
        return self.span.end


@dataclass
class TraceData:
    """A loaded trace: spans/instants/samples in ``seq`` order."""

    spans: List[SpanRec] = field(default_factory=list)
    instants: List[InstantRec] = field(default_factory=list)
    samples: List[SampleRec] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceData":
        """Snapshot a live tracer.

        Open spans are closed at the latest timestamp seen anywhere --
        the same padding :func:`repro.obs.export.to_trace_events`
        applies -- and tags pass through the exporter's arg cleaning,
        so analysing a tracer and analysing its exported file give
        identical results.
        """
        horizon = 0.0
        for span in tracer.spans:
            horizon = max(horizon, span.start,
                          span.end if span.end is not None else span.start)
        for instant in tracer.instants:
            horizon = max(horizon, instant.at)
        for sample in tracer.samples:
            horizon = max(horizon, sample.at)
        data = cls()
        for span in tracer.spans:
            data.spans.append(SpanRec(
                seq=span.seq, parent=span.parent_id, name=span.name,
                layer=span.layer, start=span.start,
                end=span.end if span.end is not None else horizon,
                tags=_clean_args(span.tags),
            ))
        for instant in tracer.instants:
            data.instants.append(InstantRec(
                seq=instant.seq, name=instant.name, layer=instant.layer,
                at=instant.at, tags=_clean_args(instant.tags),
            ))
        for sample in tracer.samples:
            data.samples.append(SampleRec(
                seq=sample.seq, name=sample.name, layer=sample.layer,
                at=sample.at, value=sample.value,
            ))
        data._sort()
        return data

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "TraceData":
        """Load from a parsed trace JSON object (``traceEvents`` + co)."""
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("not a trace_event payload: no traceEvents list")
        data = cls(metrics=dict(payload.get("metrics", {})))
        for event in events:
            if not isinstance(event, dict):
                continue
            ph = event.get("ph")
            if ph == "M":
                continue
            layer = str(event.get("cat", ""))
            if layer == "repro":  # exporter's stand-in for the empty tag
                layer = ""
            name = str(event.get("name", ""))
            at = _exact_time(event, "t0", event.get("ts", 0.0))
            args = event.get("args") or {}
            if ph == "X":
                span_id = int(args.get("span_id", 0))
                parent = args.get("parent_id")
                tags = {k: v for k, v in args.items()
                        if k not in ("span_id", "parent_id")}
                end = _exact_time(
                    event, "t1", event.get("ts", 0.0) + event.get("dur", 0.0))
                data.spans.append(SpanRec(
                    seq=span_id,
                    parent=int(parent) if parent is not None else None,
                    name=name, layer=layer, start=at, end=end, tags=tags,
                ))
            elif ph in ("i", "I"):
                data.instants.append(InstantRec(
                    seq=int(event.get("seq", 0)), name=name, layer=layer,
                    at=at, tags=dict(args),
                ))
            elif ph == "C":
                data.samples.append(SampleRec(
                    seq=int(event.get("seq", 0)), name=name, layer=layer,
                    at=at, value=float(args.get("value", 0.0)),
                ))
        data._sort()
        return data

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path]) -> "TraceData":
        payload = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: not a trace_event JSON object")
        return cls.from_payload(payload)

    def _sort(self) -> None:
        self.spans.sort(key=lambda r: r.seq)
        self.instants.sort(key=lambda r: r.seq)
        self.samples.sort(key=lambda r: r.seq)

    # -- views -------------------------------------------------------------

    def runs(self) -> List[RunView]:
        """Segment into per-``flowsim.run`` views (see module docstring).

        A record belongs to the run whose span's ``seq`` is the largest
        one below the record's own ``seq`` -- i.e. the run that was in
        progress when the record was emitted.  Records before the first
        run span (or in a trace with none) are not part of any run.
        """
        anchors = [s for s in self.spans if s.name == RUN_SPAN]
        views = [RunView(span=a) for a in anchors]
        if not views:
            return []
        bounds = [a.seq for a in anchors] + [float("inf")]

        def owner(seq: int) -> Optional[RunView]:
            for i, view in enumerate(views):
                if bounds[i] < seq < bounds[i + 1]:
                    return view
            return None

        for span in self.spans:
            view = owner(span.seq)
            if view is not None:
                view.spans.append(span)
        for instant in self.instants:
            view = owner(instant.seq)
            if view is not None:
                view.instants.append(instant)
        for sample in self.samples:
            view = owner(sample.seq)
            if view is not None:
                view.samples.append(sample)
        return views

    def request_spans(self) -> List[SpanRec]:
        """The platform's per-request envelope spans, in ``seq`` order."""
        return [s for s in self.spans if s.name == REQUEST_SPAN]


def _exact_time(event: Mapping[str, object], key: str,
                fallback_us: object) -> float:
    """Prefer the exporter's exact-seconds key; fall back to µs fields
    (scaled back) for traces written by older exporters."""
    value = event.get(key)
    if isinstance(value, (int, float)):
        return float(value)
    return float(fallback_us) / 1e6
