"""``repro.obs.analyze`` -- trace analysis and diagnosis.

Turns a trace (a live :class:`repro.obs.Tracer` or an exported
Perfetto JSON file) into a *diagnosis*: per-request critical paths
attributed across ``edge-link`` / ``core-link`` / ``box-compute`` /
``shim-retry``, and per-run ranked link-bottleneck tables built from
the simulator's utilization counter tracks.  This module is the one
sanctioned consumer of raw trace payloads -- ``tools/check_obs.py``
flags ad-hoc trace parsing anywhere else.

Entry points:

- :func:`diagnose` -- :class:`TraceData` in, JSON-ready diagnosis
  dict out (the shape ``ExperimentResult.diagnosis`` carries);
- :func:`diagnose_tracer` / :func:`diagnose_file` -- convenience
  loaders for the two trace sources;
- ``python -m repro analyze`` -- the CLI around them.

Diagnosis schema (version 1)::

    {"schema": 1,
     "runs": [{"strategy": ..., "end_time": ...,
               "timeline": {ranked links, tier_busy, dominant_tier},
               "critical_path": {seconds, fractions, dominant, top}}],
     "platform": {seconds, fractions, dominant, top},
     "optimizer": {ticks, audits, actions, migrations, drains,
                   undrains, parked, targets, log},
     "serve": {requests, tenants: {waits, service, p99, statuses}}}

The ``optimizer`` section (present only when a control loop ran under
the trace) attributes every self-healing action -- see
:func:`repro.obs.analyze.optimizer.optimizer_report`.  The ``serve``
section (present only when the serving layer handled requests under
the trace) attributes per-tenant latency -- see
:func:`repro.obs.analyze.serve.serve_report`.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Union

from repro.obs.analyze.critpath import (
    CAT_BOX,
    CAT_CORE,
    CAT_EDGE,
    CAT_RETRY,
    CATEGORIES,
    RequestPath,
    aggregate_paths,
    link_credit,
    platform_paths,
    simulator_paths,
)
from repro.obs.analyze.timeline import (
    BUSY_UTILIZATION,
    TIERS,
    LinkSeries,
    LinkStats,
    TimelineReport,
    link_tier,
    run_timeline,
    series_for_run,
)
from repro.obs.analyze.optimizer import optimizer_report
from repro.obs.analyze.serve import serve_report
from repro.obs.analyze.trace_data import (
    InstantRec,
    RunView,
    SampleRec,
    SpanRec,
    TraceData,
)
from repro.obs.tracer import Tracer

#: Diagnosis dict schema version.
DIAGNOSIS_SCHEMA = 1

#: Links kept in each run's embedded bottleneck table.
_TABLE_TOP = 10


def diagnose(trace: TraceData) -> Dict[str, object]:
    """Full diagnosis of a loaded trace (see module docstring)."""
    runs = []
    for run in trace.runs():
        series = series_for_run(run)
        paths = simulator_paths(run, series)
        timeline = run_timeline(run, top=_TABLE_TOP,
                                credit=link_credit(paths))
        runs.append({
            "strategy": run.strategy,
            "end_time": run.end_time,
            "timeline": {
                "dominant_tier": timeline.dominant_tier,
                "tier_busy": timeline.tier_busy,
                "tier_credit": timeline.tier_credit,
                "links": [s.to_dict() for s in timeline.links],
            },
            "critical_path": aggregate_paths(paths),
        })
    diagnosis: Dict[str, object] = {"schema": DIAGNOSIS_SCHEMA, "runs": runs}
    platform = aggregate_paths(platform_paths(trace))
    if platform:
        diagnosis["platform"] = platform
    optimizer = optimizer_report(trace)
    if optimizer:
        diagnosis["optimizer"] = optimizer
    serve = serve_report(trace)
    if serve:
        diagnosis["serve"] = serve
    return diagnosis


def diagnose_tracer(tracer: Tracer) -> Dict[str, object]:
    return diagnose(TraceData.from_tracer(tracer))


def diagnose_file(path: Union[str, pathlib.Path]) -> Dict[str, object]:
    return diagnose(TraceData.from_file(path))


__all__ = [
    "BUSY_UTILIZATION",
    "CAT_BOX",
    "CAT_CORE",
    "CAT_EDGE",
    "CAT_RETRY",
    "CATEGORIES",
    "DIAGNOSIS_SCHEMA",
    "InstantRec",
    "LinkSeries",
    "LinkStats",
    "RequestPath",
    "RunView",
    "SampleRec",
    "SpanRec",
    "TIERS",
    "TimelineReport",
    "TraceData",
    "aggregate_paths",
    "diagnose",
    "diagnose_file",
    "diagnose_tracer",
    "link_credit",
    "link_tier",
    "optimizer_report",
    "platform_paths",
    "run_timeline",
    "series_for_run",
    "serve_report",
    "simulator_paths",
]
