"""Per-request critical paths with layer attribution.

Two span vocabularies feed the extractor:

**Simulator jobs.**  Each aggregation job is a tree of ``flow`` spans
(layer ``netsim.flow``) whose ``children`` tags carry the dependency
DAG the solver enforced: a segment is admitted only once its children
drained.  The critical path of a job is the blocking chain walked from
the job's root (the last-finishing flow nobody depends on) downwards,
always into the child that drained last (ties break lexicographically
on flow id, so extraction is deterministic).  Each chain segment's
transfer window ``[admitted, drained]`` is attributed to the tier of
its *binding link* -- the link on the flow's path with the highest
time-integrated utilization over the window, i.e. the constraint that
set the flow's max-min rate.  Tiers map to categories: edge ->
``edge-link``, core -> ``core-link``, box wires/virtual proc links ->
``box-compute``.

**Platform requests.**  Each ``platform.request`` envelope span groups
the shim-level work for one ``execute_request`` by its ``request``
tag (probe spans and shim instants use per-tree ``<id>@t<k>`` and
per-source ``<id>/<source>`` aliases; box spans carry the origin id
directly).  Attribution inside the envelope:

- ``box-compute``: ``box.emit``/``box.flush`` span time for the
  request;
- ``shim-retry``: probe spans that contained a retry/deadline
  instant (the whole probe burned timeout+backoff clock), plus
  churn waits and degradation costs;
- ``edge-link``: clean probe sends and delivery time net of the box
  work nested inside it (the platform models host<->box hops only, so
  nothing lands in ``core-link`` here).

Fractions are computed as ``category_seconds / attributed_seconds``,
so they sum to 1 whenever any time was attributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.analyze.timeline import (
    TIER_BOX,
    TIER_CORE,
    LinkSeries,
    link_tier,
)
from repro.obs.analyze.trace_data import RunView, SpanRec, TraceData

#: Attribution categories, in tie-break precedence order.
CAT_EDGE = "edge-link"
CAT_CORE = "core-link"
CAT_BOX = "box-compute"
CAT_RETRY = "shim-retry"
CATEGORIES = (CAT_EDGE, CAT_CORE, CAT_BOX, CAT_RETRY)

_TIER_TO_CATEGORY = {
    "edge": CAT_EDGE,
    "core": CAT_CORE,
    "box": CAT_BOX,
}

#: Shim instants that mark a probe as retry-dominated.
_RETRY_INSTANTS = ("shim.retry", "shim.deadline", "shim.breaker-open")


@dataclass
class RequestPath:
    """One request's critical path and its layer attribution."""

    request: str
    seconds: Dict[str, float]
    chain: List[Dict[str, object]] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    @property
    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {cat: 0.0 for cat in CATEGORIES}
        return {cat: self.seconds[cat] / total for cat in CATEGORIES}

    @property
    def dominant(self) -> str:
        return max(CATEGORIES, key=lambda c: self.seconds[c])

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request,
            "total": self.total,
            "seconds": dict(self.seconds),
            "fractions": self.fractions,
            "dominant": self.dominant,
            "chain": list(self.chain),
        }


def _zero_seconds() -> Dict[str, float]:
    return {cat: 0.0 for cat in CATEGORIES}


def _binding(path_links: List[str], start: float, end: float,
             series: Mapping[str, LinkSeries]) -> Tuple[Optional[str], str]:
    """The flow's binding link and its category (module docstring)."""
    best: Optional[str] = None
    best_integral = -1.0
    for link in path_links:
        track = series.get(link)
        if track is None:
            continue
        integral = track.integrate(start, end)
        if integral > best_integral:  # strict: ties keep the earlier hop
            best, best_integral = link, integral
    if best is not None:
        return best, _TIER_TO_CATEGORY[link_tier(best)]
    # No sampled link (empty path, or only virtual hops): classify
    # statically by the "deepest" tier the path touches.
    tiers = {link_tier(link) for link in path_links}
    if TIER_BOX in tiers:
        return None, CAT_BOX
    if TIER_CORE in tiers:
        return None, CAT_CORE
    return None, CAT_EDGE


def simulator_paths(run: RunView,
                    series: Mapping[str, LinkSeries]) -> List[RequestPath]:
    """Critical paths of every aggregation job in one simulator run."""
    jobs: Dict[str, Dict[str, SpanRec]] = {}
    for span in run.spans:
        if span.name != "flow":
            continue
        job = str(span.tags.get("job", ""))
        if not job:
            continue
        jobs.setdefault(job, {})[str(span.tags.get("flow", ""))] = span

    paths: List[RequestPath] = []
    for job in sorted(jobs):
        flows = jobs[job]
        child_ids = set()
        for span in flows.values():
            child_ids.update(_children(span))
        roots = [fid for fid in flows if fid not in child_ids]
        if not roots:
            continue  # cycle or truncated trace; nothing to anchor on
        root = max(roots, key=lambda fid: (flows[fid].end, fid))
        seconds = _zero_seconds()
        chain: List[Dict[str, object]] = []
        cursor: Optional[str] = root
        while cursor is not None:
            span = flows[cursor]
            links = [l for l in str(span.tags.get("path", "")).split("|") if l]
            link, category = _binding(links, span.start, span.end, series)
            seconds[category] += span.duration
            chain.append({
                "flow": cursor,
                "kind": str(span.tags.get("kind", "")),
                "category": category,
                "link": link or "",
                "duration": span.duration,
            })
            kids = [fid for fid in _children(span) if fid in flows]
            cursor = max(kids, key=lambda fid: (flows[fid].end, fid)) \
                if kids else None
        paths.append(RequestPath(request=job, seconds=seconds, chain=chain))
    return paths


def _children(span: SpanRec) -> List[str]:
    return [c for c in str(span.tags.get("children", "")).split("|") if c]


def platform_paths(trace: TraceData) -> List[RequestPath]:
    """Critical-path attribution for every platform request in a trace."""
    paths: List[RequestPath] = []
    for envelope in trace.request_spans():
        rid = str(envelope.tags.get("request", ""))
        if not rid:
            continue

        def match(tag: object) -> bool:
            key = str(tag)
            return key == rid or key.startswith((rid + "@", rid + "/"))

        lo, hi = envelope.seq, _next_request_seq(trace, envelope)
        inside = [s for s in trace.spans if lo < s.seq < hi]
        instants = [i for i in trace.instants if lo < i.seq < hi]

        seconds = _zero_seconds()
        chain: List[Dict[str, object]] = []
        box_windows: List[SpanRec] = []
        for span in inside:
            if span.name in ("box.emit", "box.flush") \
                    and str(span.tags.get("origin", "")) == rid:
                seconds[CAT_BOX] += span.duration
                box_windows.append(span)
        retry_marks = [i.at for i in instants
                       if i.name in _RETRY_INSTANTS
                       and match(i.tags.get("request"))]
        for span in inside:
            if span.name == "platform.probe" \
                    and match(span.tags.get("request")):
                dirty = any(span.start <= at <= span.end
                            for at in retry_marks)
                category = CAT_RETRY if dirty else CAT_EDGE
                seconds[category] += span.duration
                if dirty and span.duration > 0:
                    chain.append({
                        "probe": str(span.tags.get("target", "")),
                        "category": category,
                        "duration": span.duration,
                    })
            elif span.name == "platform.deliver" \
                    and match(span.tags.get("request")):
                nested = sum(
                    b.duration for b in box_windows
                    if span.start <= b.start and b.end <= span.end
                    and span.seq < b.seq)
                seconds[CAT_EDGE] += max(0.0, span.duration - nested)
        for instant in instants:
            if not match(instant.tags.get("request")):
                continue
            if instant.name == "shim.churn":
                until = float(instant.tags.get("until", instant.at))
                seconds[CAT_RETRY] += max(0.0, until - instant.at)
            elif instant.name == "shim.degraded":
                seconds[CAT_RETRY] += float(instant.tags.get("cost", 0.0))
        paths.append(RequestPath(request=rid, seconds=seconds, chain=chain))
    return paths


def _next_request_seq(trace: TraceData, envelope: SpanRec) -> float:
    """Upper seq bound of a request envelope: the next envelope's seq.

    Requests execute sequentially on the platform's virtual clock, so
    everything recorded between consecutive ``platform.request`` spans
    belongs to the earlier one.
    """
    for span in trace.request_spans():
        if span.seq > envelope.seq:
            return span.seq
    return float("inf")


def link_credit(paths: List[RequestPath]) -> Dict[str, float]:
    """Critical-path seconds credited to each binding link.

    ``credit[link]`` is the total request time for which ``link`` was
    the constraint that set a critical-path segment's rate -- "this
    link cost the workload X seconds of FCT".  The bottleneck table
    ranks by it: unlike raw busy fractions (which long-lived background
    flows dominate), credit measures what actually slowed requests.
    """
    credit: Dict[str, float] = {}
    for path in paths:
        for hop in path.chain:
            link = str(hop.get("link", ""))
            if link:
                credit[link] = credit.get(link, 0.0) \
                    + float(hop.get("duration", 0.0))
    return credit


def aggregate_paths(paths: List[RequestPath],
                    top: int = 5) -> Dict[str, object]:
    """Fold per-request paths into one summary (JSON-ready)."""
    if not paths:
        return {}
    seconds = _zero_seconds()
    for path in paths:
        for cat in CATEGORIES:
            seconds[cat] += path.seconds[cat]
    total = sum(seconds.values())
    fractions = {cat: (seconds[cat] / total if total > 0 else 0.0)
                 for cat in CATEGORIES}
    ranked = sorted(paths, key=lambda p: (-p.total, p.request))
    return {
        "requests": len(paths),
        "attributed_seconds": total,
        "seconds": seconds,
        "fractions": fractions,
        "dominant": max(CATEGORIES, key=lambda c: seconds[c]),
        "top": [
            {"request": p.request, "total": p.total,
             "fractions": p.fractions, "dominant": p.dominant}
            for p in ranked[:top]
        ],
    }
