"""Per-link utilization timelines and the ranked bottleneck table.

The simulator emits one counter sample per (changed) link utilization
per rate epoch (``link.util:<link_id>`` tracks, see
:data:`repro.obs.LINK_UTIL_PREFIX`).  Samples are piecewise-constant:
the value at ``t`` holds until the next sample on the same track, and
the last one holds to the run's end.  Folding those tracks gives, per
physical link:

- ``busy_frac`` -- fraction of the run the link spent at or above
  :data:`BUSY_UTILIZATION` (i.e. saturated, the max-min binding
  constraint);
- ``mean_util`` / ``p99_util`` -- time-weighted mean and 99th
  percentile utilization;
- ``bytes`` -- total bytes carried (from the run's final
  ``link.traffic`` instants);
- ``cp_seconds`` -- critical-path seconds credited to the link by
  :func:`repro.obs.analyze.critpath.link_credit` (how much request
  FCT the link was the binding constraint for).

The table ranks by ``cp_seconds`` first (then busy fraction, then
mean): raw saturation time rewards long-lived background flows that
keep a core link warm without slowing any request, whereas credited
seconds measure what actually bottlenecked the workload.  That ranking
recovers the paper's bottleneck-shift story: without aggregation an
incast job's FCT is bound at the master's *edge* downlink; with
on-path aggregation the boxes absorb the fan-in and the residual
request time is spent crossing the shared *core*.

Link tiers come from the topology's id convention
(``host:12->tor:0``, ``tor:0->aggr:0:0``, ``aggr:0:0->core:1``,
``box:tor:0:0->tor:0``, virtual ``proc:box:...``): any endpoint
``box:``/``proc:`` makes the link *box* tier, else any ``host:``
endpoint makes it *edge*, else it is *core*.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.analyze.trace_data import RunView
from repro.obs.tracer import LINK_UTIL_PREFIX

#: Utilization at/above which a link counts as busy (saturated).
BUSY_UTILIZATION = 0.95

#: Link tiers, edge of the network inwards.
TIER_EDGE = "edge"
TIER_CORE = "core"
TIER_BOX = "box"
TIERS = (TIER_EDGE, TIER_CORE, TIER_BOX)


def link_tier(link_id: str) -> str:
    """Classify a link id into edge / core / box (module docstring)."""
    ends = link_id.split("->", 1)
    if any(e.startswith(("box:", "proc:")) for e in ends):
        return TIER_BOX
    if any(e.startswith("host:") for e in ends):
        return TIER_EDGE
    return TIER_CORE


class LinkSeries:
    """One link's piecewise-constant utilization over a run."""

    __slots__ = ("link_id", "_times", "_values", "_end")

    def __init__(self, link_id: str,
                 points: Iterable[Tuple[float, float]], end: float) -> None:
        self.link_id = link_id
        self._times: List[float] = []
        self._values: List[float] = []
        for at, value in points:
            self._times.append(at)
            self._values.append(value)
        self._end = end

    def pieces(self, t0: float, t1: float) -> Iterator[Tuple[float, float]]:
        """Yield ``(duration, value)`` segments covering ``[t0, t1]``.

        Before the first sample the value is 0 (the link had not been
        used yet); after the last it holds the last value.
        """
        t1 = min(t1, self._end) if self._end > t0 else t1
        if t1 <= t0:
            return
        cursor = t0
        idx = bisect.bisect_right(self._times, t0) - 1
        while cursor < t1:
            value = self._values[idx] if idx >= 0 else 0.0
            nxt = self._times[idx + 1] if idx + 1 < len(self._times) else t1
            upto = min(nxt, t1)
            if upto > cursor:
                yield (upto - cursor, value)
            cursor = upto
            idx += 1

    def integrate(self, t0: float, t1: float) -> float:
        """Time-integral of utilization over ``[t0, t1]`` (seconds of
        fully-busy-link-equivalent)."""
        return sum(dt * v for dt, v in self.pieces(t0, t1))


def series_for_run(run: RunView) -> Dict[str, LinkSeries]:
    """Fold a run's ``link.util:*`` samples into per-link series."""
    points: Dict[str, List[Tuple[float, float]]] = {}
    for sample in run.samples:
        if sample.name.startswith(LINK_UTIL_PREFIX):
            link_id = sample.name[len(LINK_UTIL_PREFIX):]
            points.setdefault(link_id, []).append((sample.at, sample.value))
    end = run.end_time
    return {
        link_id: LinkSeries(link_id, pts, end)
        for link_id, pts in points.items()
    }


@dataclass(frozen=True)
class LinkStats:
    """One row of the bottleneck table."""

    link: str
    tier: str
    busy_frac: float
    mean_util: float
    p99_util: float
    bytes: float
    cp_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "link": self.link,
            "tier": self.tier,
            "busy_frac": self.busy_frac,
            "mean_util": self.mean_util,
            "p99_util": self.p99_util,
            "bytes": self.bytes,
            "cp_seconds": self.cp_seconds,
        }


@dataclass
class TimelineReport:
    """Ranked bottleneck view of one simulator run."""

    strategy: str
    end_time: float
    links: List[LinkStats]          #: ranked, worst bottleneck first
    tier_busy: Dict[str, float]     #: max busy_frac per tier
    tier_credit: Dict[str, float]   #: total cp_seconds per tier
    dominant_tier: str              #: most-credited tier (module doc)

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "end_time": self.end_time,
            "dominant_tier": self.dominant_tier,
            "tier_busy": dict(self.tier_busy),
            "tier_credit": dict(self.tier_credit),
            "links": [s.to_dict() for s in self.links],
        }


def _weighted_p99(pieces: List[Tuple[float, float]]) -> float:
    """Time-weighted 99th-percentile value of (duration, value) pieces."""
    total = sum(dt for dt, _ in pieces)
    if total <= 0:
        return 0.0
    cut = 0.99 * total
    acc = 0.0
    for dt, value in sorted(pieces, key=lambda p: p[1]):
        acc += dt
        if acc >= cut:
            return value
    return pieces[-1][1]


def run_timeline(run: RunView, top: int = 0,
                 credit: Optional[Dict[str, float]] = None) -> TimelineReport:
    """Build the ranked bottleneck table for one run.

    ``credit`` maps link ids to critical-path seconds (from
    :func:`repro.obs.analyze.critpath.link_credit`); links are ranked
    by it, then busy fraction, then mean utilization, then id
    (deterministic).  The dominant tier is the one with the most total
    credit, falling back to the top-ranked link's tier when the trace
    held no aggregation jobs.  ``top`` truncates the table (0 = all).
    """
    credit = credit or {}
    series = series_for_run(run)
    carried: Dict[str, float] = {}
    for instant in run.instants:
        if instant.name == "link.traffic":
            carried[str(instant.tags.get("link", ""))] = \
                float(instant.tags.get("bytes", 0.0))
    end = run.end_time
    stats: List[LinkStats] = []
    for link_id, track in series.items():
        pieces = list(track.pieces(0.0, end))
        total = sum(dt for dt, _ in pieces)
        if total <= 0:
            continue
        busy = sum(dt for dt, v in pieces if v >= BUSY_UTILIZATION)
        stats.append(LinkStats(
            link=link_id,
            tier=link_tier(link_id),
            busy_frac=busy / total,
            mean_util=sum(dt * v for dt, v in pieces) / total,
            p99_util=_weighted_p99(pieces),
            bytes=carried.get(link_id, 0.0),
            cp_seconds=credit.get(link_id, 0.0),
        ))
    stats.sort(key=lambda s: (-s.cp_seconds, -s.busy_frac,
                              -s.mean_util, s.link))
    tier_busy = {tier: 0.0 for tier in TIERS}
    tier_credit = {tier: 0.0 for tier in TIERS}
    for s in stats:
        tier_busy[s.tier] = max(tier_busy[s.tier], s.busy_frac)
        tier_credit[s.tier] += s.cp_seconds
    if any(credit.values()):
        dominant = max(TIERS, key=lambda t: tier_credit[t])
    else:
        dominant = stats[0].tier if stats else ""
    if top:
        stats = stats[:top]
    return TimelineReport(
        strategy=run.strategy,
        end_time=end,
        links=stats,
        tier_busy=tier_busy,
        tier_credit=tier_credit,
        dominant_tier=dominant,
    )
