"""Optimizer attribution: every control-loop action, from the trace.

The self-healing control plane (:mod:`repro.core.optimizer`) emits
``optimizer.*`` spans and instants as it works -- audits, per-action
instants tagged with kind/target/reason, and per-migration
drain/park/cutover/rollback records carrying an ``outcome`` tag.
:func:`optimizer_report` folds a whole trace's worth into the
``optimizer`` section of the diagnosis dict, so ``python -m repro
analyze`` can answer "what did the optimizer do, to whom, and why" for
any traced run without consulting the experiment that drove it.

Optimizer records are collected trace-wide rather than per
``flowsim.run`` window: the control loop ticks during *planning*, which
happens before (and between) simulator runs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.analyze.trace_data import TraceData

#: Actions kept in the report's chronological log.
_LOG_TOP = 50


def optimizer_report(trace: TraceData) -> Dict[str, object]:
    """The ``optimizer`` diagnosis section; ``{}`` when nothing ran.

    Shape::

        {"ticks": ..., "audits": ..., "actions": {kind: count},
         "migrations": {"applied": n, "rolled-back": n,
                        "failed-over": n},
         "drains": n, "undrains": n, "parked": n,
         "targets": {box_id: action count},
         "log": [{at, kind, target, reason, strategy}, ...]}
    """
    audits = sum(1 for s in trace.spans if s.name == "optimizer.audit")
    ticks = sum(1 for s in trace.spans if s.name == "optimizer.apply")
    if not audits and not ticks:
        return {}
    actions: Dict[str, int] = {}
    targets: Dict[str, int] = {}
    log: List[Dict[str, object]] = []
    migrations: Dict[str, int] = {}
    drains = undrains = parked = 0
    for rec in trace.instants:
        if rec.name == "optimizer.action":
            kind = str(rec.tags.get("kind", ""))
            actions[kind] = actions.get(kind, 0) + 1
            target = str(rec.tags.get("target", ""))
            if target:
                targets[target] = targets.get(target, 0) + 1
            log.append({
                "at": rec.at,
                "kind": kind,
                "target": target,
                "reason": str(rec.tags.get("reason", "")),
                "strategy": str(rec.tags.get("strategy", "")),
            })
        elif rec.name in ("optimizer.cutover", "optimizer.rollback"):
            outcome = str(rec.tags.get("outcome", ""))
            if outcome:
                migrations[outcome] = migrations.get(outcome, 0) + 1
        elif rec.name == "optimizer.drain":
            drains += 1
        elif rec.name == "optimizer.undrain":
            undrains += 1
        elif rec.name == "optimizer.park":
            parked += int(rec.tags.get("parked", 0))
    return {
        "ticks": ticks,
        "audits": audits,
        "actions": actions,
        "migrations": migrations,
        "drains": drains,
        "undrains": undrains,
        "parked": parked,
        "targets": dict(sorted(targets.items(),
                               key=lambda kv: (-kv[1], kv[0]))),
        "log": log[:_LOG_TOP],
    }
