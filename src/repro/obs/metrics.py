"""The metrics registry: named counters, gauges and histograms.

One process-wide :data:`METRICS` registry absorbs the ad-hoc telemetry
that used to live in three places -- ``SimCounters`` (flow simulator
work counters), the platform's shim-event tallies, and per-box
health/queue stats -- behind a single flat :meth:`MetricsRegistry
.snapshot`.  Namespacing is by dotted prefix:

- ``netsim.*``   -- runs, flows, rate epochs, incremental-solver work;
- ``platform.*`` -- shim lifecycle events (``platform.shim.retry``,
  ``platform.shim.nack``, ...);
- ``aggbox.*``   -- partials folded, sheds, flushes, health
  transitions, queue-depth distribution.

Metric objects are stable: ``counter(name)`` get-or-creates, and
``reset()`` zeroes values *in place*, so hot paths may cache the
returned object across resets.  Everything is plain Python -- no
locks, no dependencies -- matching the single-threaded virtual-clock
execution model of the reproduction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union


class LogBins:
    """A fixed log-spaced bucket scheme shared by all histograms.

    ``bins_per_decade`` buckets per power of ten between ``10**lo_exp``
    and ``10**hi_exp``, plus an underflow bucket (index 0, catching
    zero and negatives) and a clamp into the last bucket for overflow.
    The scheme is *fixed*: a histogram's memory is bounded by the bin
    count regardless of how many values it absorbs, and the relative
    quantile error is bounded by the bucket width (~12% at 20 bins per
    decade).
    """

    __slots__ = ("lo_exp", "hi_exp", "bins_per_decade", "n_bins",
                 "_lo_bound")

    def __init__(self, lo_exp: int = -9, hi_exp: int = 9,
                 bins_per_decade: int = 20) -> None:
        if hi_exp <= lo_exp:
            raise ValueError("hi_exp must exceed lo_exp")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.lo_exp = lo_exp
        self.hi_exp = hi_exp
        self.bins_per_decade = bins_per_decade
        #: Bucket 0 is underflow; buckets 1..n cover the decades.
        self.n_bins = (hi_exp - lo_exp) * bins_per_decade + 1
        self._lo_bound = 10.0 ** lo_exp

    def index(self, value: float) -> int:
        """Bucket index of ``value`` (0 = underflow, clamped on top)."""
        if value <= self._lo_bound:
            return 0
        i = 1 + int((math.log10(value) - self.lo_exp)
                    * self.bins_per_decade)
        return min(max(i, 1), self.n_bins - 1)

    def lower(self, index: int) -> float:
        """Inclusive-ish lower edge of bucket ``index`` (0 for underflow)."""
        if index <= 0:
            return 0.0
        return 10.0 ** (self.lo_exp
                        + (index - 1) / self.bins_per_decade)

    def upper(self, index: int) -> float:
        """Upper edge of bucket ``index``."""
        if index <= 0:
            return self._lo_bound
        return 10.0 ** (self.lo_exp + index / self.bins_per_decade)


#: The process-wide bucket scheme (covers 1e-9 .. 1e9 at ~12% error).
LOG_BINS = LogBins()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming distribution summary with bounded quantile buckets.

    Observations are folded into running aggregates (count/sum/min/max)
    plus fixed log-spaced bucket counts (:data:`LOG_BINS`), so a
    histogram on a hot path stays O(1) in memory yet answers
    :meth:`percentile` queries live -- p50/p99 no longer require
    holding every observation.  The bucket list is allocated lazily on
    the first observation, keeping registered-but-empty histograms as
    cheap as before.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets: Optional[List[int]] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.buckets is None:
            self.buckets = [0] * LOG_BINS.n_bins
        self.buckets[LOG_BINS.index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile estimate from the log buckets.

        Nearest-rank selection into the bucket containing the target
        rank, linearly interpolated within the bucket and clamped to
        the observed ``[min, max]`` range -- so ``percentile(0)`` is
        the minimum, ``percentile(100)`` the maximum, and a
        single-observation histogram returns that observation exactly.
        Relative error inside a bucket is bounded by the bucket width
        (~12%).  Returns 0.0 while empty.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.count or self.buckets is None:
            return 0.0
        if p == 0.0:
            return self.minimum
        rank = max(1, math.ceil(self.count * p / 100.0))
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            if not bucket:
                continue
            if cumulative + bucket >= rank:
                lower = LOG_BINS.lower(index)
                upper = LOG_BINS.upper(index)
                frac = (rank - cumulative) / bucket
                value = lower + frac * (upper - lower)
                return min(max(value, self.minimum), self.maximum)
            cumulative += bucket
        return self.maximum

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        if self.buckets is not None:
            for index in range(len(self.buckets)):
                self.buckets[index] = 0


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    Names are dotted paths (``netsim.events``); a name keeps the type
    it was first created with (mixing types under one name raises).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """Flat ``{name: value}`` view (JSON-ready).

        Counters and gauges map to one entry each; a histogram expands
        into ``<name>.count`` / ``.sum`` / ``.min`` / ``.max`` /
        ``.mean`` plus log-bucket ``.p50`` / ``.p99`` estimates
        (min/max/percentiles omitted while empty; the pre-existing
        keys keep their exact values, so old snapshot consumers are
        unaffected).
        """
        out: Dict[str, float] = {}
        for name in self.names(prefix):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                out[f"{name}.mean"] = metric.mean
                if metric.count:
                    out[f"{name}.min"] = metric.minimum
                    out[f"{name}.max"] = metric.maximum
                    out[f"{name}.p50"] = metric.percentile(50.0)
                    out[f"{name}.p99"] = metric.percentile(99.0)
            else:
                out[name] = metric.value
        return out

    def reset(self, prefix: str = "") -> None:
        """Zero every metric under ``prefix`` in place (objects keep
        their identity, so cached references stay valid)."""
        for name in self.names(prefix):
            self._metrics[name].reset()

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name`` (None when absent)."""
        return self._metrics.get(name)


#: The process-wide registry all layers write into.
METRICS = MetricsRegistry()
