"""The metrics registry: named counters, gauges and histograms.

One process-wide :data:`METRICS` registry absorbs the ad-hoc telemetry
that used to live in three places -- ``SimCounters`` (flow simulator
work counters), the platform's shim-event tallies, and per-box
health/queue stats -- behind a single flat :meth:`MetricsRegistry
.snapshot`.  Namespacing is by dotted prefix:

- ``netsim.*``   -- runs, flows, rate epochs, incremental-solver work;
- ``platform.*`` -- shim lifecycle events (``platform.shim.retry``,
  ``platform.shim.nack``, ...);
- ``aggbox.*``   -- partials folded, sheds, flushes, health
  transitions, queue-depth distribution.

Metric objects are stable: ``counter(name)`` get-or-creates, and
``reset()`` zeroes values *in place*, so hot paths may cache the
returned object across resets.  Everything is plain Python -- no
locks, no dependencies -- matching the single-threaded virtual-clock
execution model of the reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Streaming distribution summary (count/sum/min/max/mean).

    Observations are folded into running aggregates rather than
    stored, so a histogram on a hot path stays O(1) in memory.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    Names are dotted paths (``netsim.events``); a name keeps the type
    it was first created with (mixing types under one name raises).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """Flat ``{name: value}`` view (JSON-ready).

        Counters and gauges map to one entry each; a histogram expands
        into ``<name>.count`` / ``.sum`` / ``.min`` / ``.max`` /
        ``.mean`` (min/max omitted while empty).
        """
        out: Dict[str, float] = {}
        for name in self.names(prefix):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                out[f"{name}.mean"] = metric.mean
                if metric.count:
                    out[f"{name}.min"] = metric.minimum
                    out[f"{name}.max"] = metric.maximum
            else:
                out[name] = metric.value
        return out

    def reset(self, prefix: str = "") -> None:
        """Zero every metric under ``prefix`` in place (objects keep
        their identity, so cached references stay valid)."""
        for name in self.names(prefix):
            self._metrics[name].reset()

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name`` (None when absent)."""
        return self._metrics.get(name)


#: The process-wide registry all layers write into.
METRICS = MetricsRegistry()
