"""Structured tracing over the layers' virtual clocks.

A :class:`Tracer` collects three record kinds:

- :class:`Span` -- a named interval ``[start, end]`` with a layer tag,
  free-form tags, and a parent id.  Parentage comes from a strict LIFO
  stack: a span begun while another is open is its child, and spans
  must end in reverse begin order (enforced -- the chaos/property
  suites assert traces are well-formed by construction).
- :class:`Instant` -- a point event (a retry, a NACK, a health
  transition, a capacity change).
- :class:`Sample` -- a ``(name, at, value)`` counter sample, rendered
  as a Perfetto counter track (per-epoch active flows, per-link
  utilization).

Every record carries a ``seq`` drawn from one tracer-wide monotonic
counter, so the interleaving of spans, instants and samples survives
export (the layers run single-threaded, making the sequence a total
order).  :mod:`repro.obs.analyze` uses it to segment a trace that holds
several sequential simulator runs.

Timestamps are whatever virtual clock the instrumented layer runs on
(simulated seconds for the flow simulator, the platform's virtual
clock for shims and boxes).  The tracer never reads wall time.

The module-global active tracer defaults to :data:`NULL_TRACER`, whose
methods are no-ops and whose ``enabled`` flag is False -- instrumented
hot paths guard span emission with one ``if tracer.enabled:`` branch,
so a disabled tracer costs a single attribute test per epoch.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One named interval on a layer's virtual clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    start: float
    end: Optional[float] = None  #: None while the span is open
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def seq(self) -> int:
        """Global record sequence number (spans use their id)."""
        return self.span_id

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} ({self.span_id}) is open")
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One point event."""

    name: str
    at: float
    layer: str
    tags: Dict[str, object] = field(default_factory=dict)
    seq: int = 0  #: global record sequence number


@dataclass(frozen=True)
class Sample:
    """One counter-track sample."""

    name: str
    at: float
    value: float
    layer: str = ""
    seq: int = 0  #: global record sequence number


#: Sample-name prefix of the simulator's per-link utilization counter
#: tracks: ``link.util:<link_id>``.  Shared between the emitting layer
#: (:mod:`repro.netsim.simulator`) and :mod:`repro.obs.analyze`.
LINK_UTIL_PREFIX = "link.util:"


class Tracer:
    """Collects spans, instants and samples (see module docstring)."""

    __slots__ = ("enabled", "spans", "instants", "samples", "_stack",
                 "_next_id")

    def __init__(self) -> None:
        self.enabled = True
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.samples: List[Sample] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, at: float, layer: str = "",
              **tags: object) -> int:
        """Open a span; the innermost open span becomes its parent."""
        span = Span(
            span_id=self._take_seq(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            layer=layer,
            start=at,
            tags=tags,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span.span_id

    def complete(self, name: str, start: float, end: float,
                 layer: str = "", parent_id: Optional[int] = None,
                 **tags: object) -> int:
        """Record an already-finished span, bypassing the LIFO stack.

        For intervals known only in hindsight -- e.g. a simulated flow's
        ``[admitted, drained]`` window, recorded when the flow drains.
        Such spans overlap freely, so they never participate in stack
        parentage; ``parent_id`` links them explicitly (usually to the
        enclosing run span).
        """
        if end < start:
            raise ValueError(
                f"span {name!r} ends at {end} before its start {start}"
            )
        span = Span(
            span_id=self._take_seq(),
            parent_id=parent_id,
            name=name,
            layer=layer,
            start=start,
            end=end,
            tags=tags,
        )
        self.spans.append(span)
        return span.span_id

    def end(self, span_id: int, at: float) -> None:
        """Close a span; must be the innermost open one (strict LIFO)."""
        if not self._stack:
            raise RuntimeError(f"end({span_id}) with no open span")
        top = self._stack[-1]
        if top.span_id != span_id:
            raise RuntimeError(
                f"unbalanced span end: {span_id} closed while "
                f"{top.name!r} ({top.span_id}) is innermost"
            )
        if at < top.start:
            raise ValueError(
                f"span {top.name!r} ends at {at} before its start "
                f"{top.start}"
            )
        top.end = at
        self._stack.pop()

    @contextmanager
    def span(self, name: str, clock: Callable[[], float], layer: str = "",
             **tags: object) -> Iterator[Span]:
        """Span over a ``with`` block; ``clock`` reads the virtual time
        at entry and exit (it is called twice)."""
        span_id = self.begin(name, clock(), layer=layer, **tags)
        opened = self._stack[-1]
        try:
            yield opened
        finally:
            self.end(span_id, clock())

    def instant(self, name: str, at: float, layer: str = "",
                **tags: object) -> None:
        self.instants.append(Instant(name=name, at=at, layer=layer,
                                     tags=tags, seq=self._take_seq()))

    def sample(self, name: str, at: float, value: float,
               layer: str = "") -> None:
        self.samples.append(Sample(name=name, at=at, value=value,
                                   layer=layer, seq=self._take_seq()))

    def _take_seq(self) -> int:
        seq = self._next_id
        self._next_id += 1
        return seq

    # -- inspection --------------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (innermost last)."""
        return list(self._stack)

    def finished(self) -> bool:
        return not self._stack

    def layers(self) -> List[str]:
        """Distinct layer tags seen, sorted."""
        seen = {s.layer for s in self.spans}
        seen.update(i.layer for i in self.instants)
        seen.update(s.layer for s in self.samples)
        seen.discard("")
        return sorted(seen)

    def clear(self) -> None:
        if self._stack:
            raise RuntimeError(
                f"clear() with {len(self._stack)} span(s) still open"
            )
        self.spans.clear()
        self.instants.clear()
        self.samples.clear()
        self._next_id = 1


class _NullContext:
    """Reusable no-op context manager (one allocation, ever)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CTX = _NullContext()


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    Instrumentation holds a reference to the active tracer and checks
    ``tracer.enabled`` before building span/event payloads, so a
    disabled trace costs one branch on the hot path; methods here stay
    no-ops so un-guarded call sites are still safe.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def begin(self, name: str, at: float, layer: str = "",
              **tags: object) -> int:
        return 0

    def end(self, span_id: int, at: float) -> None:
        return None

    def complete(self, name: str, start: float, end: float,
                 layer: str = "", parent_id: Optional[int] = None,
                 **tags: object) -> int:
        return 0

    def span(self, name: str, clock: Callable[[], float], layer: str = "",
             **tags: object):
        return _NULL_CTX

    def instant(self, name: str, at: float, layer: str = "",
                **tags: object) -> None:
        return None

    def sample(self, name: str, at: float, value: float,
               layer: str = "") -> None:
        return None


#: The process-wide disabled tracer (the default active tracer).
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The active tracer (:data:`NULL_TRACER` unless one is installed)."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the active tracer (None = disable).

    Returns the previously active tracer so callers can restore it;
    prefer the :func:`tracing` context manager, which does that for
    you.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate ``tracer`` (a fresh :class:`Tracer` by default) for the
    block, restoring the previous tracer afterwards."""
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
