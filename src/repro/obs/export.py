"""Exporters: Chrome/Perfetto ``trace_event`` JSON and validation.

The trace format is the JSON Object Format of the Trace Event spec
(the one ``chrome://tracing`` and https://ui.perfetto.dev load
directly): a top-level object with a ``traceEvents`` list.  Spans
become complete (``"ph": "X"``) events, instants become ``"i"``
events, counter samples become ``"C"`` events, and each layer tag maps
to its own synthetic thread (with ``"M"`` metadata naming it) so the
three layers render as parallel timeline rows.

Virtual-clock seconds are scaled to the format's microseconds, so a
span of 3 ms of simulated time reads as 3 ms in the viewer.

:func:`validate_trace_events` is the schema check CI runs against the
traced quick-scale experiment before uploading the artifact.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.obs.tracer import Tracer

#: Layer tag -> synthetic thread id.  Unknown layers get ids past the
#: known ones, in first-seen order.
LAYER_TIDS: Dict[str, int] = {"netsim": 1, "platform": 2, "aggbox": 3}

_SECONDS_TO_US = 1e6

#: Event phases the validator accepts (all this exporter emits).
_KNOWN_PHASES = {"X", "i", "I", "C", "M"}


def _tid(layer: str, tids: Dict[str, int]) -> int:
    tid = tids.get(layer)
    if tid is None:
        tid = max(tids.values(), default=0) + 1
        tids[layer] = tid
    return tid


def _clean_args(tags: Dict[str, object]) -> Dict[str, object]:
    """JSON-safe span/event args (repr anything exotic)."""
    out: Dict[str, object] = {}
    for key, value in tags.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def to_trace_events(tracer: Tracer) -> List[dict]:
    """Render a tracer's records as a ``traceEvents`` list.

    Spans still open when the trace is exported are closed at the
    latest timestamp seen anywhere in the trace (an exporter must not
    mutate the tracer, so the padding happens on the copy).
    """
    tids = dict(LAYER_TIDS)
    events: List[dict] = []
    horizon = 0.0
    for span in tracer.spans:
        horizon = max(horizon, span.start,
                      span.end if span.end is not None else span.start)
    for instant in tracer.instants:
        horizon = max(horizon, instant.at)
    for sample in tracer.samples:
        horizon = max(horizon, sample.at)

    for span in tracer.spans:
        end = span.end if span.end is not None else horizon
        events.append({
            "name": span.name,
            "cat": span.layer or "repro",
            "ph": "X",
            "ts": span.start * _SECONDS_TO_US,
            "dur": max(0.0, (end - span.start) * _SECONDS_TO_US),
            "pid": 1,
            "tid": _tid(span.layer or "repro", tids),
            # Exact virtual-clock seconds: ``ts``/``dur`` are scaled to
            # microseconds for the viewers, which costs a few bits of
            # precision; reloading a trace through repro.obs.analyze
            # must reproduce live-tracer analysis bit for bit.
            "t0": span.start,
            "t1": end,
            "args": _clean_args({"span_id": span.span_id,
                                 "parent_id": span.parent_id,
                                 **span.tags}),
        })
    for instant in tracer.instants:
        events.append({
            "name": instant.name,
            "cat": instant.layer or "repro",
            "ph": "i",
            "ts": instant.at * _SECONDS_TO_US,
            "s": "t",
            "pid": 1,
            "tid": _tid(instant.layer or "repro", tids),
            # ``seq`` keeps the tracer-wide record order across export
            # (span ids double as sequence numbers) so the analyzer can
            # segment a reloaded trace exactly like a live one; viewers
            # ignore the unknown top-level keys.
            "seq": instant.seq,
            "t0": instant.at,
            "args": _clean_args(instant.tags),
        })
    for sample in tracer.samples:
        events.append({
            "name": sample.name,
            "cat": sample.layer or "repro",
            "ph": "C",
            "ts": sample.at * _SECONDS_TO_US,
            "pid": 1,
            "tid": _tid(sample.layer or "repro", tids),
            "seq": sample.seq,
            "t0": sample.at,
            "args": {"value": sample.value},
        })
    # Thread-name metadata renders each layer as a labelled row.
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": layer},
        }
        for layer, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return meta + events


def trace_payload(tracer: Tracer,
                  metrics: Optional[Dict[str, float]] = None) -> dict:
    """The full JSON object: trace events plus a metrics snapshot."""
    payload: dict = {
        "traceEvents": to_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics:
        payload["metrics"] = dict(metrics)
    return payload


def write_trace(tracer: Tracer, path: Union[str, pathlib.Path],
                metrics: Optional[Dict[str, float]] = None) -> pathlib.Path:
    """Write the Perfetto-loadable JSON file; returns the path."""
    out = pathlib.Path(path)
    out.write_text(
        json.dumps(trace_payload(tracer, metrics=metrics), indent=1) + "\n",
        encoding="utf-8",
    )
    return out


def validate_trace_events(events: List[dict]) -> List[str]:
    """Check a ``traceEvents`` list against the trace_event schema.

    Returns a list of problems (empty = valid).  Checks the fields the
    viewers actually require: phase, name, numeric non-negative
    timestamps, numeric non-negative durations for complete events,
    integer pid/tid, and an instant scope.
    """
    problems: List[str] = []
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph in ("i", "I") and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope must be t/p/g")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def validate_trace_file(path: Union[str, pathlib.Path],
                        require_layers: Optional[List[str]] = None) -> dict:
    """Load and validate a trace JSON file; raises ValueError on
    problems.  ``require_layers`` additionally demands at least one
    span (``"X"`` event) per named layer (``cat``).  Returns the
    parsed payload."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: not a trace_event JSON object")
    problems = validate_trace_events(payload["traceEvents"])
    if require_layers:
        present = {e.get("cat") for e in payload["traceEvents"]
                   if isinstance(e, dict) and e.get("ph") == "X"}
        for layer in require_layers:
            if layer not in present:
                problems.append(f"no spans from layer {layer!r} "
                                f"(have {sorted(filter(None, present))})")
    if problems:
        raise ValueError(
            f"{path}: invalid trace ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems[:20])
        )
    return payload
