"""Benchmark harness: time every experiment, record the trajectory,
and gate CI on regressions against the committed baseline.

Runs each experiment in the registry (the same set ``benchmarks/``
covers) at one scale and writes ``BENCH_netsim.json``::

    python -m repro bench                    # BENCH scale
    python -m repro bench --scale quick      # CI smoke run
    python -m repro bench --only fig06 fig09
    python -m repro bench --profile          # cProfile the slowest one
    python -m repro bench --compare BENCH_netsim.json --max-regress 0.15

Per experiment the harness records wall time, simulator events and
events/sec, incremental-solver call counts, and the process's peak RSS
high-water mark (``resource.getrusage``; the value is cumulative over
the process, so per-experiment numbers are upper bounds).  The file
also re-times ``fig06`` at ``DEFAULT`` scale against the recorded
pre-optimisation baseline, so solver regressions show up as a falling
``fig06_speedup`` in review.

**Regression gate.**  ``--compare <baseline.json>`` re-times the
baseline's experiments at the baseline's scale/seed and diffs
(:func:`compare_payloads`).  Wall times are machine-dependent, so the
seconds gate normalises by the *median* per-experiment ratio -- a
uniformly 2x-slower CI machine shifts every ratio equally and trips
nothing, while one experiment regressing 2x stands out against the
median.  (Corollary: a single-experiment compare cannot trip the
seconds gate -- the median is its own ratio -- which is why the
deterministic counter gates exist.)  Simulator event and solver-call
counts are machine-independent, so those gate directly: growing more
than ``max_regress`` over baseline fails.  Each compare appends one
JSONL line to the trajectory file (``BENCH_trajectory.jsonl``), the
longitudinal perf record reviewers diff.
"""

from __future__ import annotations

import cProfile
import io
import json
import pathlib
import pstats
import resource
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence

from repro.experiments import (
    DEFAULT,
    MODULES,
    SimScale,
    load,
    resolve,
    unknown_experiment_message,
)
from repro.experiments.common import BENCH, PAPER, QUICK
from repro.obs import METRICS

SCALES: Dict[str, SimScale] = {
    "quick": QUICK, "bench": BENCH, "default": DEFAULT, "paper": PAPER,
}

#: Wall time of ``fig06`` at ``DEFAULT`` scale before the incremental
#: solver landed (commit 1b25238, from-scratch max-min at every event).
#: The acceptance bar for the solver rework is >= 3x over this.
BASELINE = {"fig06_default_seconds": 9.157, "commit": "1b25238"}

#: Smallest elapsed time treated as real (one microsecond); quicker
#: runs are clock-resolution artefacts, not measurements.
_TIMER_FLOOR = 1e-6


def _peak_rss_kb() -> int:
    """Process peak RSS, normalised to KB.

    ``getrusage`` reports ``ru_maxrss`` in *kilobytes* on Linux but in
    *bytes* on macOS (and BSDs), so the raw value was off by 1024x when
    benchmarking on a Mac.  Normalise by platform so ``peak_rss_kb``
    means the same thing everywhere.
    """
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        peak //= 1024
    return peak


def bench_targets(names: Optional[Sequence[str]] = None) -> List[str]:
    """Experiments to time: ``benchmarks/bench_*.py`` coverage, which
    mirrors the registry; falls back to the registry when the
    ``benchmarks/`` tree is not present (installed package)."""
    if names:
        resolved = []
        for name in names:
            try:
                resolved.append(resolve(name))
            except KeyError:
                raise SystemExit(
                    unknown_experiment_message(name)) from None
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
        return resolved
    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    found = sorted(
        path.stem[len("bench_"):]
        for path in bench_dir.glob("bench_*.py")
    ) if bench_dir.is_dir() else []
    covered = [name for name in MODULES if name in set(found)]
    return covered or list(MODULES)


def time_experiment(name: str, scale: SimScale, seed: int = 1,
                    ) -> Dict[str, object]:
    """Run one experiment and return its timing record."""
    record: Dict[str, object] = {"experiment": name, "scale": scale.name}
    try:
        exp = load(name)
        METRICS.reset("netsim.")
        started = time.perf_counter()
        result = exp.run(scale=scale, seed=seed)
        elapsed = time.perf_counter() - started
        counters = METRICS.snapshot("netsim.")
        events = counters.get("netsim.events", 0)
        record.update(
            ok=True,
            seconds=round(elapsed, 4),
            rows=len(result.rows),
            events=events,
            # Sub-resolution timings floor at the timer tick rather
            # than reporting a bogus 0.0 rate (which would read as
            # "infinitely slow" and poison rate comparisons).
            events_per_sec=round(events / max(elapsed, _TIMER_FLOOR), 1),
            epochs=counters.get("netsim.epochs", 0),
            solver_calls=counters.get("netsim.solver.solves", 0),
            solver_cache_hits=counters.get("netsim.solver.cache_hits", 0),
            flows_resolved=counters.get("netsim.solver.flows_resolved", 0),
            flows_reused=counters.get("netsim.solver.flows_reused", 0),
            peak_rss_kb=_peak_rss_kb(),
        )
    except Exception as exc:  # noqa: BLE001 - harness must survive
        record.update(
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            trace=traceback.format_exc(limit=5),
        )
    return record


def _time_fig06_default(seed: int = 1, repeat: int = 1) -> float:
    """The acceptance metric: fig06 wall time at DEFAULT scale.

    Best-of-``repeat``: the first run pays cold-start costs (imports,
    allocator warm-up) that are not the solver's.
    """
    exp = load("fig06_fct_cdf")
    best = float("inf")
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        exp.run(scale=DEFAULT, seed=seed)
        best = min(best, time.perf_counter() - started)
    return best


def _profile_experiment(name: str, scale: SimScale, out: str,
                        seed: int = 1) -> str:
    exp = load(name)
    profiler = cProfile.Profile()
    profiler.enable()
    exp.run(scale=scale, seed=seed)
    profiler.disable()
    profiler.dump_stats(out)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(15)
    return buf.getvalue()


#: Counter fields compared deterministically by the regression gate.
GATED_COUNTERS = ("events", "epochs", "solver_calls", "flows_resolved")

#: Default per-experiment regression tolerance (15%).
DEFAULT_MAX_REGRESS = 0.15

#: Baseline wall times below this are pure timer noise (a 5 ms
#: experiment jitters far past any sane tolerance); such experiments
#: skip the seconds gate and rely on the deterministic counter gates.
SECONDS_GATE_FLOOR = 0.05

#: Extra timing runs granted to an experiment whose *wall time* (not
#: counters) tripped the gate; the minimum over runs is kept, the
#: standard defence against one-off scheduler noise.  Five attempts,
#: not two: on 1-core CI containers per-row jitter regularly exceeds
#: the 15% margin (identical code flags itself against a minutes-old
#: baseline), and a genuine slowdown reproduces across *every*
#: attempt, so extra attempts only shed false positives.
_RETIME_ATTEMPTS = 5


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare_payloads(current: Dict[str, object],
                     baseline: Dict[str, object],
                     max_regress: float = DEFAULT_MAX_REGRESS,
                     ) -> Dict[str, object]:
    """Diff two bench payloads; pure, so the gate is unit-testable.

    Returns ``{"regressions": [...], "rows": [...], "median_ratio": m}``
    where each row carries the per-experiment ratios and each
    regression is a human-readable failure string.  Gates (see module
    docstring): normalised wall time, the deterministic counters in
    :data:`GATED_COUNTERS`, newly failing or missing experiments, and
    a scale mismatch (numbers at different scales are not comparable).
    """
    regressions: List[str] = []
    if current.get("scale") != baseline.get("scale"):
        regressions.append(
            f"scale mismatch: current {current.get('scale')!r} vs "
            f"baseline {baseline.get('scale')!r}")
    base_records = {r["experiment"]: r
                    for r in baseline.get("results", []) if r.get("ok")}
    cur_records = {r["experiment"]: r
                   for r in current.get("results", [])}

    pairs = []
    for name, base in sorted(base_records.items()):
        cur = cur_records.get(name)
        if cur is None:
            continue  # subset runs (--only) compare what they ran
        if not cur.get("ok"):
            regressions.append(f"{name}: now failing "
                               f"({cur.get('error', 'unknown error')})")
            continue
        pairs.append((name, base, cur))
    if not pairs and not regressions:
        regressions.append("no experiments in common with the baseline")

    # Zero-duration rows (sub-tick runs) carry no timing signal: a 0.0
    # on either side would register as an infinite or zero ratio and
    # drag the machine-speed median; such rows gate on counters only.
    ratios = [cur["seconds"] / base["seconds"]
              for _, base, cur in pairs
              if base["seconds"] > 0 and cur["seconds"] > 0]
    median_ratio = _median(ratios) if ratios else 1.0
    # The normalisation exists to forgive a uniformly *slower* machine
    # (everything 2x -> median 2x -> ratios back to 1x).  A median
    # below 1.0 means the machine is now faster than the baseline era;
    # dividing by it would inflate every row and manufacture
    # regressions out of rows that merely failed to speed up as much
    # as the median (best-of-N converges quickest on short rows, so
    # long rows sit above the median systematically).  Clamp: machine
    # speed is only ever a mitigating factor.
    divisor = max(1.0, median_ratio)

    rows = []
    for name, base, cur in pairs:
        row: Dict[str, object] = {"experiment": name}
        if base["seconds"] >= SECONDS_GATE_FLOOR:
            normalised = (cur["seconds"] / base["seconds"]) / divisor
            row["seconds_ratio"] = round(normalised, 3)
            if normalised > 1.0 + max_regress:
                regressions.append(
                    f"{name}: wall time {cur['seconds']:.3f}s is "
                    f"{normalised:.2f}x the baseline "
                    f"{base['seconds']:.3f}s after machine-speed "
                    f"normalisation (limit {1 + max_regress:.2f}x)")
        for field in GATED_COUNTERS:
            base_value = base.get(field, 0)
            cur_value = cur.get(field, 0)
            if not base_value:
                continue
            ratio = cur_value / base_value
            row[f"{field}_ratio"] = round(ratio, 3)
            if ratio > 1.0 + max_regress:
                regressions.append(
                    f"{name}: {field} grew {ratio:.2f}x over baseline "
                    f"({base_value:,} -> {cur_value:,}, "
                    f"limit {1 + max_regress:.2f}x)")
        rows.append(row)
    return {
        "regressions": regressions,
        "rows": rows,
        "median_ratio": round(median_ratio, 4),
        "compared": len(pairs),
    }


def append_trajectory(path: str, entry: Dict[str, object]) -> None:
    """Append one JSONL record to the longitudinal trajectory file."""
    line = json.dumps(entry, sort_keys=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def run_compare(baseline_path: str,
                max_regress: float = DEFAULT_MAX_REGRESS,
                trajectory: str = "BENCH_trajectory.jsonl",
                names: Optional[Sequence[str]] = None,
                seed: Optional[int] = None) -> int:
    """``bench --compare``: re-time against a committed baseline.

    Runs the baseline's experiments (or the ``names`` subset) at the
    baseline's scale and seed, diffs via :func:`compare_payloads`,
    appends a trajectory line, and returns non-zero on any regression.
    The committed baseline file is never rewritten here -- refresh it
    with a plain ``python -m repro bench`` when a change legitimately
    moves the numbers.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text(
        encoding="utf-8"))
    scale_name = baseline.get("scale", "bench")
    if scale_name not in SCALES:
        raise SystemExit(f"{baseline_path}: unknown scale {scale_name!r}")
    use_seed = baseline.get("seed", 1) if seed is None else seed
    targets = bench_targets(names) if names else [
        r["experiment"] for r in baseline.get("results", [])
        if r.get("ok")
    ]
    scale = SCALES[scale_name]
    results = []
    for name in targets:
        print(f"compare {name} (scale={scale.name}) ...", file=sys.stderr)
        results.append(time_experiment(name, scale, seed=use_seed))
    current = {
        "schema": 1,
        "scale": scale.name,
        "seed": use_seed,
        "results": results,
    }
    report = compare_payloads(current, baseline, max_regress=max_regress)
    # Wall-time trips get _RETIME_ATTEMPTS confirmation runs (keeping
    # the minimum, the standard defence against scheduler noise); the
    # counter gates are deterministic and never re-run.  A genuine
    # slowdown reproduces across every attempt and still fails.
    for _ in range(_RETIME_ATTEMPTS):
        flaky = sorted({line.split(":", 1)[0]
                        for line in report["regressions"]
                        if "wall time" in line})
        if not flaky:
            break
        for name in flaky:
            print(f"re-time {name} (confirming wall-time regression) ...",
                  file=sys.stderr)
            rerun = time_experiment(name, scale, seed=use_seed)
            if not rerun.get("ok"):
                continue
            for record in results:
                if record["experiment"] == name:
                    record["seconds"] = min(record["seconds"],
                                            rerun["seconds"])
        report = compare_payloads(current, baseline,
                                  max_regress=max_regress)
    # The headline acceptance metric rides along on every compare, so
    # the trajectory records the solver's speed over time, not only
    # pass/fail against the committed baseline.
    fig06_seconds = _time_fig06_default(seed=use_seed)
    entry = {
        "kind": "compare",
        "at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "baseline": baseline_path,
        "scale": scale.name,
        "seed": use_seed,
        "compared": report["compared"],
        "median_ratio": report["median_ratio"],
        "max_regress": max_regress,
        "fig06_default_seconds": round(fig06_seconds, 3),
        "fig06_speedup": round(
            BASELINE["fig06_default_seconds"] / max(fig06_seconds,
                                                    _TIMER_FLOOR), 2),
        "regressions": report["regressions"],
    }
    append_trajectory(trajectory, entry)
    print(f"compared {report['compared']} experiment(s) against "
          f"{baseline_path} (median machine ratio "
          f"{report['median_ratio']}x); trajectory -> {trajectory}",
          file=sys.stderr)
    if report["regressions"]:
        print("REGRESSIONS:", file=sys.stderr)
        for line in report["regressions"]:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("no regressions", file=sys.stderr)
    return 0


def run_bench(scale_name: str = "bench", out: str = "BENCH_netsim.json",
              names: Optional[Sequence[str]] = None, seed: int = 1,
              profile: bool = False, repeat: int = 1) -> int:
    """Time the catalogue, write ``out``, return a process exit code.

    Non-zero when any experiment errors (CI fails on regressions).
    ``repeat`` times each experiment N times and keeps the fastest
    wall time (counters are deterministic and identical across
    repeats) -- use ``--repeat 3`` when refreshing the committed
    baseline so one scheduler hiccup does not bake an unrepeatably
    fast or slow number into the gate.
    """
    scale = SCALES[scale_name]
    targets = bench_targets(names)
    results = []
    for name in targets:
        print(f"bench {name} (scale={scale.name}) ...", file=sys.stderr)
        record = time_experiment(name, scale, seed=seed)
        for _ in range(max(repeat, 1) - 1):
            if not record["ok"]:
                break
            rerun = time_experiment(name, scale, seed=seed)
            if rerun.get("ok") and rerun["seconds"] < record["seconds"]:
                record = rerun
        if record["ok"]:
            print(f"  {record['seconds']:.3f}s  "
                  f"{record['events_per_sec']:,} events/s  "
                  f"rss {record['peak_rss_kb']:,} KB", file=sys.stderr)
        else:
            print(f"  FAILED: {record['error']}", file=sys.stderr)
        results.append(record)

    fig06_seconds = _time_fig06_default(seed=seed, repeat=repeat)
    payload = {
        "schema": 1,
        "scale": scale.name,
        "seed": seed,
        "baseline": dict(BASELINE),
        "fig06_default_seconds": round(fig06_seconds, 3),
        "fig06_speedup": round(
            BASELINE["fig06_default_seconds"] / fig06_seconds, 2),
        "results": results,
    }
    pathlib.Path(out).write_text(json.dumps(payload, indent=2) + "\n",
                                 encoding="utf-8")
    failures = [r["experiment"] for r in results if not r["ok"]]
    ok_count = len(results) - len(failures)
    print(f"wrote {out}: {ok_count}/{len(results)} ok, "
          f"fig06 default {fig06_seconds:.3f}s "
          f"({payload['fig06_speedup']}x vs baseline)", file=sys.stderr)

    if profile:
        timed = [r for r in results if r["ok"]]
        if timed:
            slowest = max(timed, key=lambda r: r["seconds"])
            prof_out = str(pathlib.Path(out).with_suffix(".prof"))
            print(f"profiling {slowest['experiment']} -> {prof_out}",
                  file=sys.stderr)
            print(_profile_experiment(slowest["experiment"], scale,
                                      prof_out, seed=seed))
    if failures:
        print(f"failed experiments: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0
