"""Benchmark harness: time every experiment and record the trajectory.

Runs each experiment in the registry (the same set ``benchmarks/``
covers) at one scale and writes ``BENCH_netsim.json``::

    python -m repro bench                    # BENCH scale
    python -m repro bench --scale quick      # CI smoke run
    python -m repro bench --only fig06 fig09
    python -m repro bench --profile          # cProfile the slowest one

Per experiment the harness records wall time, simulator events and
events/sec, incremental-solver call counts, and the process's peak RSS
high-water mark (``resource.getrusage``; the value is cumulative over
the process, so per-experiment numbers are upper bounds).  The file
also re-times ``fig06`` at ``DEFAULT`` scale against the recorded
pre-optimisation baseline, so solver regressions show up as a falling
``fig06_speedup`` in review.
"""

from __future__ import annotations

import cProfile
import io
import json
import pathlib
import pstats
import resource
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence

from repro.experiments import (
    DEFAULT,
    MODULES,
    SimScale,
    load,
    resolve,
    unknown_experiment_message,
)
from repro.experiments.common import BENCH, PAPER, QUICK
from repro.obs import METRICS

SCALES: Dict[str, SimScale] = {
    "quick": QUICK, "bench": BENCH, "default": DEFAULT, "paper": PAPER,
}

#: Wall time of ``fig06`` at ``DEFAULT`` scale before the incremental
#: solver landed (commit 1b25238, from-scratch max-min at every event).
#: The acceptance bar for the solver rework is >= 3x over this.
BASELINE = {"fig06_default_seconds": 9.157, "commit": "1b25238"}


def _peak_rss_kb() -> int:
    """Process peak RSS, normalised to KB.

    ``getrusage`` reports ``ru_maxrss`` in *kilobytes* on Linux but in
    *bytes* on macOS (and BSDs), so the raw value was off by 1024x when
    benchmarking on a Mac.  Normalise by platform so ``peak_rss_kb``
    means the same thing everywhere.
    """
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        peak //= 1024
    return peak


def bench_targets(names: Optional[Sequence[str]] = None) -> List[str]:
    """Experiments to time: ``benchmarks/bench_*.py`` coverage, which
    mirrors the registry; falls back to the registry when the
    ``benchmarks/`` tree is not present (installed package)."""
    if names:
        resolved = []
        for name in names:
            try:
                resolved.append(resolve(name))
            except KeyError:
                raise SystemExit(
                    unknown_experiment_message(name)) from None
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
        return resolved
    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    found = sorted(
        path.stem[len("bench_"):]
        for path in bench_dir.glob("bench_*.py")
    ) if bench_dir.is_dir() else []
    covered = [name for name in MODULES if name in set(found)]
    return covered or list(MODULES)


def time_experiment(name: str, scale: SimScale, seed: int = 1,
                    ) -> Dict[str, object]:
    """Run one experiment and return its timing record."""
    record: Dict[str, object] = {"experiment": name, "scale": scale.name}
    try:
        exp = load(name)
        METRICS.reset("netsim.")
        started = time.perf_counter()
        result = exp.run(scale=scale, seed=seed)
        elapsed = time.perf_counter() - started
        counters = METRICS.snapshot("netsim.")
        events = counters.get("netsim.events", 0)
        record.update(
            ok=True,
            seconds=round(elapsed, 4),
            rows=len(result.rows),
            events=events,
            events_per_sec=round(events / elapsed, 1)
            if elapsed > 0 else 0.0,
            solver_calls=counters.get("netsim.solver.solves", 0),
            solver_cache_hits=counters.get("netsim.solver.cache_hits", 0),
            flows_resolved=counters.get("netsim.solver.flows_resolved", 0),
            flows_reused=counters.get("netsim.solver.flows_reused", 0),
            peak_rss_kb=_peak_rss_kb(),
        )
    except Exception as exc:  # noqa: BLE001 - harness must survive
        record.update(
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            trace=traceback.format_exc(limit=5),
        )
    return record


def _time_fig06_default(seed: int = 1) -> float:
    """The acceptance metric: fig06 wall time at DEFAULT scale."""
    exp = load("fig06_fct_cdf")
    started = time.perf_counter()
    exp.run(scale=DEFAULT, seed=seed)
    return time.perf_counter() - started


def _profile_experiment(name: str, scale: SimScale, out: str,
                        seed: int = 1) -> str:
    exp = load(name)
    profiler = cProfile.Profile()
    profiler.enable()
    exp.run(scale=scale, seed=seed)
    profiler.disable()
    profiler.dump_stats(out)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(15)
    return buf.getvalue()


def run_bench(scale_name: str = "bench", out: str = "BENCH_netsim.json",
              names: Optional[Sequence[str]] = None, seed: int = 1,
              profile: bool = False) -> int:
    """Time the catalogue, write ``out``, return a process exit code.

    Non-zero when any experiment errors (CI fails on regressions).
    """
    scale = SCALES[scale_name]
    targets = bench_targets(names)
    results = []
    for name in targets:
        print(f"bench {name} (scale={scale.name}) ...", file=sys.stderr)
        record = time_experiment(name, scale, seed=seed)
        if record["ok"]:
            print(f"  {record['seconds']:.3f}s  "
                  f"{record['events_per_sec']:,} events/s  "
                  f"rss {record['peak_rss_kb']:,} KB", file=sys.stderr)
        else:
            print(f"  FAILED: {record['error']}", file=sys.stderr)
        results.append(record)

    fig06_seconds = _time_fig06_default(seed=seed)
    payload = {
        "schema": 1,
        "scale": scale.name,
        "seed": seed,
        "baseline": dict(BASELINE),
        "fig06_default_seconds": round(fig06_seconds, 3),
        "fig06_speedup": round(
            BASELINE["fig06_default_seconds"] / fig06_seconds, 2),
        "results": results,
    }
    pathlib.Path(out).write_text(json.dumps(payload, indent=2) + "\n",
                                 encoding="utf-8")
    failures = [r["experiment"] for r in results if not r["ok"]]
    ok_count = len(results) - len(failures)
    print(f"wrote {out}: {ok_count}/{len(results)} ok, "
          f"fig06 default {fig06_seconds:.3f}s "
          f"({payload['fig06_speedup']}x vs baseline)", file=sys.stderr)

    if profile:
        timed = [r for r in results if r["ok"]]
        if timed:
            slowest = max(timed, key=lambda r: r["seconds"])
            prof_out = str(pathlib.Path(out).with_suffix(".prof"))
            print(f"profiling {slowest['experiment']} -> {prof_out}",
                  file=sys.stderr)
            print(_profile_experiment(slowest["experiment"], scale,
                                      prof_out, seed=seed))
    if failures:
        print(f"failed experiments: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0
