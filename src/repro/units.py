"""Unit helpers shared across the simulator, emulator and experiments.

Conventions used throughout the code base:

- data sizes are **bytes** (floats are allowed for scaled model sizes);
- link and processing capacities are **bytes per second**;
- time is **seconds** of virtual (simulated) time.

The constants below convert the units the paper talks about (Gbps links,
MB chunks, KB flows) into those base units.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

#: One kilobyte / megabyte / gigabyte in bytes (decimal, as in networking).
KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0

#: One kibibyte/mebibyte/gibibyte, for memory-flavoured sizes.
KiB = 1024.0
MiB = 1024.0**2
GiB = 1024.0**3


def Gbps(rate: float) -> float:
    """Convert gigabits per second into bytes per second."""
    return rate * 1e9 / 8.0


def Mbps(rate: float) -> float:
    """Convert megabits per second into bytes per second."""
    return rate * 1e6 / 8.0


def Kbps(rate: float) -> float:
    """Convert kilobits per second into bytes per second."""
    return rate * 1e3 / 8.0


def to_gbps(bytes_per_second: float) -> float:
    """Convert bytes per second back into gigabits per second."""
    return bytes_per_second * 8.0 / 1e9


def percentile(values: Sequence[float], p: float) -> float:
    """Return the ``p``-th percentile of ``values`` (linear interpolation).

    ``p`` is in [0, 100].  The implementation matches numpy's default
    (``linear``) method so results are comparable with published numbers,
    while keeping the core library dependency-free.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[int(rank)]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Interpolation rounding must never escape the data range.
    return min(max(value, ordered[0]), ordered[-1])


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    if count == 0:
        raise ValueError("mean of empty sequence")
    return total / count


def cdf_points(values: Sequence[float]) -> List[tuple]:
    """Return ``(value, cumulative_fraction)`` points of the empirical CDF."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


#: Tolerance used when comparing virtual times / byte counts for equality.
EPSILON = 1e-9


def approx_equal(a: float, b: float, eps: float = EPSILON) -> bool:
    """True when ``a`` and ``b`` differ by at most ``eps`` (absolute)."""
    return abs(a - b) <= eps
