"""Worker placement policies.

The paper deploys workers "using a locality-aware allocation algorithm
that greedily assigns workers to servers as close to each other as
possible" (§4.1).  :class:`LocalityAwarePlacer` implements that: a job
anchors at the least-loaded rack and fills hosts rack-by-rack, preferring
the anchor rack, then other racks of the same pod, then remote pods.
:class:`RandomPlacer` is the ablation baseline.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.topology.base import Topology


class PlacementError(RuntimeError):
    """Raised when a job cannot be placed (more workers than hosts)."""


class LocalityAwarePlacer:
    """Greedy locality-aware placement with per-host load balancing.

    Each host can run any number of workers across jobs, but at most one
    worker of a given job; the placer tracks cumulative load per host and
    prefers lightly-loaded hosts within each locality ring.

    The master is placed *remotely* by default: frontends and reducers
    generally do not sit in their workers' rack, and the paper's results
    (core-tier boxes intercepting the most flows, Fig. 12) only make
    sense when aggregation traffic actually traverses the network core.
    ``remote_master=False`` co-locates it for the locality ablation.
    """

    def __init__(self, topo: Topology, rng: random.Random,
                 remote_master: bool = True,
                 fragmentation: float = 0.0) -> None:
        if not 0.0 <= fragmentation <= 1.0:
            raise ValueError("fragmentation must be in [0, 1]")
        self._topo = topo
        self._rng = rng
        self._remote_master = remote_master
        self._fragmentation = fragmentation
        self._load: Dict[str, int] = {h: 0 for h in topo.hosts()}
        self._racks: Dict[int, List[str]] = {}
        for host in topo.hosts():
            self._racks.setdefault(topo.rack_of(host), []).append(host)

    def place_job(self, n_workers: int, with_master: bool = True) -> List[str]:
        """Pick ``n_workers`` (+1 master if requested) distinct hosts.

        Returns ``[master, worker0, worker1, ...]`` when ``with_master``,
        else just the workers.
        """
        total = n_workers + (1 if with_master else 0)
        if total > len(self._load):
            raise PlacementError(
                f"job needs {total} hosts, topology has {len(self._load)}"
            )
        anchor = self._anchor_rack()
        ordered_racks = self._racks_by_proximity(anchor)
        chosen: List[str] = []
        for rack in ordered_racks:
            if len(chosen) == total:
                break
            hosts = sorted(
                self._racks[rack], key=lambda h: (self._load[h], h)
            )
            for host in hosts:
                chosen.append(host)
                if len(chosen) == total:
                    break
        # Fragmentation: under bin-packing pressure some workers cannot
        # get a slot near the job and land in a random rack instead --
        # the regime in which rack-level aggregation degenerates (lone
        # workers ship raw data across the core).
        if self._fragmentation > 0.0:
            taken = set(chosen)
            for i in range(1, len(chosen)):
                if self._rng.random() >= self._fragmentation:
                    continue
                spare = [h for h in sorted(self._load)
                         if h not in taken]
                if not spare:
                    break
                lightest = min(self._load[h] for h in spare)
                pool = [h for h in spare if self._load[h] == lightest]
                replacement = self._rng.choice(pool)
                taken.discard(chosen[i])
                chosen[i] = replacement
                taken.add(replacement)
        for host in chosen:
            self._load[host] += 1
        if with_master and self._remote_master:
            workers = chosen[1:]
            master = self._remote_master_host(set(workers), anchor)
            self._load[chosen[0]] -= 1  # release the colocated slot
            self._load[master] += 1
            return [master] + workers
        return chosen

    def _remote_master_host(self, workers: set, anchor: int) -> str:
        """A lightly-loaded host outside the anchor rack."""
        candidates = [
            h for h in sorted(self._load)
            if h not in workers and self._topo.rack_of(h) != anchor
        ]
        if not candidates:  # single-rack topology: fall back to any host
            candidates = [h for h in sorted(self._load)
                          if h not in workers]
        lightest = min(self._load[h] for h in candidates)
        pool = [h for h in candidates if self._load[h] == lightest]
        return self._rng.choice(pool)

    def _anchor_rack(self) -> int:
        """The rack with the lowest aggregate load (ties broken randomly)."""
        loads = {
            rack: sum(self._load[h] for h in hosts)
            for rack, hosts in self._racks.items()
        }
        best = min(loads.values())
        candidates = sorted(r for r, l in loads.items() if l == best)
        return self._rng.choice(candidates)

    def _racks_by_proximity(self, anchor: int) -> List[int]:
        anchor_pod = self._pod_of_rack(anchor)

        def key(rack: int):
            same_rack = 0 if rack == anchor else 1
            same_pod = 0 if self._pod_of_rack(rack) == anchor_pod else 1
            return (same_rack, same_pod, rack)

        return sorted(self._racks, key=key)

    def _pod_of_rack(self, rack: int) -> int:
        host = self._racks[rack][0]
        return self._topo.pod_of(host)


class RandomPlacer:
    """Uniform random placement (the locality ablation baseline)."""

    def __init__(self, topo: Topology, rng: random.Random) -> None:
        self._hosts = sorted(topo.hosts())
        self._rng = rng

    def place_job(self, n_workers: int, with_master: bool = True) -> List[str]:
        total = n_workers + (1 if with_master else 0)
        if total > len(self._hosts):
            raise PlacementError(
                f"job needs {total} hosts, topology has {len(self._hosts)}"
            )
        return self._rng.sample(self._hosts, total)
