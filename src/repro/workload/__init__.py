"""Synthetic data-centre workloads (§4.1 of the paper).

The paper's simulation workload is modelled after published traces of a
cluster running large data-mining jobs: Pareto flow sizes, a power-law
number of workers per job, a fixed fraction of aggregatable traffic, and
locality-aware worker placement.  All of that is generated here, fully
seeded and deterministic.
"""

from repro.workload.placement import LocalityAwarePlacer, RandomPlacer
from repro.workload.stragglers import StragglerModel, inject_stragglers
from repro.workload.synthetic import (
    AggJob,
    BackgroundFlow,
    Workload,
    WorkloadParams,
    generate_workload,
)

__all__ = [
    "AggJob",
    "BackgroundFlow",
    "Workload",
    "WorkloadParams",
    "generate_workload",
    "LocalityAwarePlacer",
    "RandomPlacer",
    "StragglerModel",
    "inject_stragglers",
]
