"""Open-loop serving workload: Zipfian tenants, Poisson arrivals.

Closed, scripted experiments (``repro.workload.synthetic``) generate a
fixed set of jobs up front.  The serving layer (``repro.serve``) needs
the *open-loop* shape of §5's evaluation instead: a population of users
issues requests at an aggregate rate regardless of whether the service
keeps up, tenants are hit with Zipfian popularity (a few hot tenants
dominate), and each request is an independent Solr-style
partition/aggregate query or an mlgrad gradient round.

Everything is a pure function of (params, seed): the same parameters
replay the exact same arrival stream, tenant draws, request kinds and
payload seeds -- the property the deterministic-replay tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

#: Request kinds the serving layer understands.
OP_QUERY = "query"     #: Solr-style partition/aggregate top-k query
OP_MLGRAD = "mlgrad"   #: one distributed gradient-aggregation round

OPS = (OP_QUERY, OP_MLGRAD)


@dataclass(frozen=True)
class OpenLoopParams:
    """Open-loop generator configuration.

    Attributes:
        users: size of the simulated user population.  The offered
            aggregate request rate is ``users * per_user_rate``
            requests per virtual second -- an open loop: arrivals keep
            coming whether or not the service keeps up.
        duration: virtual seconds of arrivals to generate.
        per_user_rate: sustained request rate of one user (req/s).
        tenants: number of distinct tenants sharing the deployment.
        zipf_s: Zipf exponent of tenant popularity (rank 1 hottest).
        query_fraction: fraction of requests that are Solr-style
            queries; the remainder are mlgrad rounds.
        workers: worker fan-in of each request (hosts holding partials).
        results_per_worker: per-worker result count of a query request.
        gradient_dims: gradient vector length of an mlgrad request.
    """

    users: int = 10_000
    duration: float = 10.0
    per_user_rate: float = 0.001
    tenants: int = 8
    zipf_s: float = 1.2
    query_fraction: float = 0.8
    workers: int = 8
    results_per_worker: int = 4
    gradient_dims: int = 8

    def __post_init__(self) -> None:
        if self.users < 1 or self.tenants < 1 or self.workers < 1:
            raise ValueError("users, tenants and workers must be >= 1")
        if self.duration <= 0 or self.per_user_rate <= 0:
            raise ValueError("duration and per_user_rate must be positive")
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ValueError("query_fraction must be in [0, 1]")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")

    @property
    def offered_rate(self) -> float:
        """Aggregate offered request rate (req/virtual second)."""
        return self.users * self.per_user_rate

    @property
    def expected_requests(self) -> float:
        return self.offered_rate * self.duration


@dataclass(frozen=True)
class Arrival:
    """One open-loop request arrival."""

    at: float          #: arrival time on the virtual clock
    tenant: str        #: tenant id, Zipf-ranked (``tenant-1`` hottest)
    op: str            #: OP_QUERY or OP_MLGRAD
    request_id: str    #: globally unique id within the run
    payload_seed: int  #: seed for the request's payload generator


class ZipfTenants:
    """Deterministic Zipf(s) sampler over ``tenant-1 .. tenant-n``.

    Rank 1 is the hottest tenant; the cumulative weight table makes a
    draw O(log n) via bisection.
    """

    def __init__(self, n: int, s: float) -> None:
        if n < 1:
            raise ValueError("need at least one tenant")
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self.names: Tuple[str, ...] = tuple(
            f"tenant-{rank}" for rank in range(1, n + 1))
        acc = 0.0
        cumulative: List[float] = []
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def share(self, tenant: str) -> float:
        """The tenant's expected fraction of all requests."""
        index = self.names.index(tenant)
        previous = self._cumulative[index - 1] if index else 0.0
        return self._cumulative[index] - previous

    def draw(self, rng: random.Random) -> str:
        import bisect

        u = rng.random()
        return self.names[bisect.bisect_left(self._cumulative, u)]


def generate_arrivals(params: OpenLoopParams,
                      seed: int = 1) -> List[Arrival]:
    """The full arrival stream, sorted by time, seed-deterministic.

    Inter-arrival gaps are exponential at the aggregate offered rate
    (a Poisson process -- the standard open-loop model); tenant, op and
    payload seed are drawn per arrival from the same seeded stream.
    """
    return list(iter_arrivals(params, seed))


def iter_arrivals(params: OpenLoopParams,
                  seed: int = 1) -> Iterator[Arrival]:
    """Lazy variant of :func:`generate_arrivals` (same stream)."""
    rng = random.Random(seed * 0x5E5E + 17)
    tenants = ZipfTenants(params.tenants, params.zipf_s)
    rate = params.offered_rate
    t = 0.0
    index = 0
    while True:
        t += rng.expovariate(rate)
        if t >= params.duration:
            return
        op = OP_QUERY if rng.random() < params.query_fraction \
            else OP_MLGRAD
        yield Arrival(
            at=t,
            tenant=tenants.draw(rng),
            op=op,
            request_id=f"req-{index}",
            payload_seed=rng.randrange(1 << 30),
        )
        index += 1


def pick_endpoints(hosts: Sequence[str], payload_seed: int,
                   n_workers: int) -> Tuple[str, List[str]]:
    """Master + worker hosts of one request, from its payload seed."""
    rng = random.Random(payload_seed ^ 0xE11D)
    n = min(n_workers, max(1, len(hosts) - 1))
    chosen = rng.sample(range(len(hosts)), n + 1)
    return hosts[chosen[0]], [hosts[i] for i in chosen[1:]]
