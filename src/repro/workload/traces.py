"""Workload traces: save, load and inspect workloads as JSON lines.

The synthetic generator covers the paper's evaluation, but downstream
users have their own traces.  This module defines a simple JSONL
interchange format -- one record per job or background flow -- so real
cluster traces can be replayed through every aggregation strategy, and
generated workloads can be archived for exact re-runs.

Record shapes::

    {"type": "job", "job_id": ..., "master": ..., "alpha": ...,
     "start_time": ..., "n_trees": ...,
     "workers": [[host, bytes], ...], "worker_delays": [...]}
    {"type": "background", "flow_id": ..., "src": ..., "dst": ...,
     "size": ..., "start_time": ...}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.units import mean, percentile
from repro.workload.synthetic import AggJob, BackgroundFlow, Workload


class TraceError(ValueError):
    """Raised for malformed trace files."""


def job_to_record(job: AggJob) -> Dict:
    record = {
        "type": "job",
        "job_id": job.job_id,
        "master": job.master,
        "alpha": job.alpha,
        "start_time": job.start_time,
        "n_trees": job.n_trees,
        "workers": [[host, size] for host, size in job.workers],
    }
    if job.worker_delays:
        record["worker_delays"] = list(job.worker_delays)
    return record


def flow_to_record(flow: BackgroundFlow) -> Dict:
    return {
        "type": "background",
        "flow_id": flow.flow_id,
        "src": flow.src,
        "dst": flow.dst,
        "size": flow.size,
        "start_time": flow.start_time,
    }


def record_to_job(record: Dict) -> AggJob:
    try:
        return AggJob(
            job_id=record["job_id"],
            master=record["master"],
            workers=tuple(
                (host, float(size)) for host, size in record["workers"]
            ),
            alpha=float(record["alpha"]),
            start_time=float(record.get("start_time", 0.0)),
            worker_delays=tuple(record.get("worker_delays", ())),
            n_trees=int(record.get("n_trees", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"bad job record {record!r}: {exc}") from exc


def record_to_flow(record: Dict) -> BackgroundFlow:
    try:
        return BackgroundFlow(
            flow_id=record["flow_id"],
            src=record["src"],
            dst=record["dst"],
            size=float(record["size"]),
            start_time=float(record.get("start_time", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"bad flow record {record!r}: {exc}") from exc


def dump_workload(workload: Workload) -> str:
    """Serialise a workload to JSONL text."""
    lines = [json.dumps(job_to_record(job), sort_keys=True)
             for job in workload.jobs]
    lines += [json.dumps(flow_to_record(flow), sort_keys=True)
              for flow in workload.background]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_workload(text: str) -> Workload:
    """Parse JSONL text into a workload."""
    workload = Workload()
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {number}: invalid JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "job":
            workload.jobs.append(record_to_job(record))
        elif kind == "background":
            workload.background.append(record_to_flow(record))
        else:
            raise TraceError(f"line {number}: unknown record type {kind!r}")
    return workload


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    Path(path).write_text(dump_workload(workload), encoding="utf-8")


def load_workload(path: Union[str, Path]) -> Workload:
    return parse_workload(Path(path).read_text(encoding="utf-8"))


def workload_summary(workload: Workload) -> Dict[str, float]:
    """Headline statistics of a workload (used by ``trace inspect``)."""
    worker_counts = [len(job.workers) for job in workload.jobs]
    sizes = [size for job in workload.jobs for _, size in job.workers]
    sizes += [flow.size for flow in workload.background]
    total_bytes = workload.aggregatable_bytes + workload.background_bytes
    return {
        "jobs": len(workload.jobs),
        "background_flows": len(workload.background),
        "worker_flows": sum(worker_counts),
        "mean_workers_per_job": mean(worker_counts) if worker_counts else 0.0,
        "max_workers_per_job": max(worker_counts, default=0),
        "total_bytes": total_bytes,
        "aggregatable_byte_fraction": (
            workload.aggregatable_bytes / total_bytes if total_bytes else 0.0
        ),
        "median_flow_bytes": percentile(sizes, 50.0) if sizes else 0.0,
        "p99_flow_bytes": percentile(sizes, 99.0) if sizes else 0.0,
    }
