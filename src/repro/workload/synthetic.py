"""Synthetic workload generation (§4.1).

The generated workload is a mix of:

- **aggregation jobs** -- partition/aggregation requests with one master
  and a power-law number of workers ("80% of requests or jobs have fewer
  than 10 workers", after the Microsoft/Facebook production study the
  paper cites), placed locality-aware, each worker holding a Pareto-sized
  partial result;
- **background flows** -- the non-aggregatable remainder of the traffic
  (e.g. HDFS reads), point-to-point between uniformly random hosts.

The paper's OCR dropped several constants; the defaults here are the
documented assumptions from DESIGN.md: Pareto mean 100 KB / shape 1.05
(truncated), 40% of flows aggregatable, α = 10%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Sequence, Tuple

from repro.topology.base import Topology
from repro.units import KB, MB
from repro.workload.placement import LocalityAwarePlacer, RandomPlacer


@dataclass(frozen=True)
class AggJob:
    """One partition/aggregation job (or online request).

    Attributes:
        job_id: unique id.
        master: host id of the master (frontend / reducer).
        workers: tuple of ``(host_id, partial_result_bytes)``.
        alpha: aggregation output ratio -- every aggregation point forwards
            ``alpha`` times the bytes it receives (see DESIGN.md).
        start_time: when the job's flows may start.
        worker_delays: per-worker extra start delay (straggler injection);
            empty means no delays.
        n_trees: number of disjoint aggregation trees to spread this job
            over (NetAgg strategies only; others ignore it).
    """

    job_id: str
    master: str
    workers: Tuple[Tuple[str, float], ...]
    alpha: float
    start_time: float = 0.0
    worker_delays: Tuple[float, ...] = ()
    n_trees: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if not self.workers:
            raise ValueError(f"job {self.job_id!r} has no workers")
        if self.worker_delays and len(self.worker_delays) != len(self.workers):
            raise ValueError("worker_delays length must match workers")
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        hosts = [h for h, _ in self.workers]
        if len(set(hosts)) != len(hosts):
            raise ValueError(f"job {self.job_id!r} reuses a worker host")

    def delay_of(self, worker_index: int) -> float:
        if not self.worker_delays:
            return 0.0
        return self.worker_delays[worker_index]

    @property
    def total_bytes(self) -> float:
        return sum(size for _, size in self.workers)

    def with_delays(self, delays: Sequence[float]) -> "AggJob":
        return replace(self, worker_delays=tuple(delays))


@dataclass(frozen=True)
class BackgroundFlow:
    """A non-aggregatable point-to-point flow."""

    flow_id: str
    src: str
    dst: str
    size: float
    start_time: float = 0.0


@dataclass
class Workload:
    """Jobs plus background flows."""

    jobs: List[AggJob] = field(default_factory=list)
    background: List[BackgroundFlow] = field(default_factory=list)

    @property
    def aggregatable_bytes(self) -> float:
        return sum(job.total_bytes for job in self.jobs)

    @property
    def background_bytes(self) -> float:
        return sum(flow.size for flow in self.background)


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic generator (defaults = DESIGN.md assumptions)."""

    n_flows: int = 400
    aggregatable_fraction: float = 0.4
    alpha: float = 0.10
    mean_flow_size: float = 100 * KB
    pareto_shape: float = 1.05
    max_flow_size: float = 100 * MB
    min_workers: int = 2
    max_workers: int = 64
    worker_pareto_shape: float = 1.5
    n_trees: int = 1
    random_placement: bool = False
    #: Masters (frontends/reducers) live outside their workers' rack by
    #: default; False co-locates them (the locality ablation).
    remote_master: bool = True
    #: Probability a worker is displaced to a random rack by bin-packing
    #: pressure (fragmented clusters are where rack-level aggregation
    #: degenerates and on-path aggregation shines).
    fragmentation: float = 0.25
    #: How jobs/flows arrive over time:
    #: - "simultaneous": everything at t=0 (the paper's worst case);
    #: - "uniform": starts drawn uniformly over ``arrival_span``;
    #: - "poisson": a Poisson process with mean inter-arrival
    #:   ``arrival_span / n_items`` (the paper's "dynamic workloads with
    #:   various arrival patterns").
    arrival_process: str = "simultaneous"
    arrival_span: float = 0.0  # horizon for uniform/poisson arrivals

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        if not 0.0 <= self.aggregatable_fraction <= 1.0:
            raise ValueError("aggregatable_fraction must be in [0, 1]")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise ValueError("worker count bounds are inconsistent")
        if self.arrival_process not in ("simultaneous", "uniform",
                                        "poisson"):
            raise ValueError(
                f"unknown arrival_process {self.arrival_process!r}"
            )
        if self.arrival_span < 0.0:
            raise ValueError("arrival_span must be >= 0")
        if self.arrival_process != "simultaneous" and \
                self.arrival_span <= 0.0:
            raise ValueError(
                f"{self.arrival_process} arrivals need arrival_span > 0"
            )



def _arrival_times(rng: random.Random, params: "WorkloadParams",
                   n_items: int) -> List[float]:
    """Start times for ``n_items`` per the configured arrival process."""
    if params.arrival_process == "simultaneous" or n_items == 0:
        return [0.0] * n_items
    if params.arrival_process == "uniform":
        return sorted(rng.uniform(0.0, params.arrival_span)
                      for _ in range(n_items))
    # Poisson process over the span: exponential inter-arrivals with the
    # mean chosen so the expected last arrival lands near the horizon.
    mean_gap = params.arrival_span / n_items
    now = 0.0
    times = []
    for _ in range(n_items):
        now += rng.expovariate(1.0 / mean_gap)
        times.append(now)
    return times


def pareto_size(rng: random.Random, mean: float, shape: float,
                maximum: float) -> float:
    """One truncated Pareto sample with the requested mean.

    For shape a > 1 the Pareto mean is ``a * xm / (a - 1)``; we derive the
    scale ``xm`` from the requested mean and truncate the tail.
    """
    if shape <= 1.0:
        raise ValueError("pareto shape must exceed 1 for a finite mean")
    xm = mean * (shape - 1.0) / shape
    sample = xm / (rng.random() ** (1.0 / shape))
    return min(sample, maximum)


def worker_count(rng: random.Random, params: WorkloadParams) -> int:
    """Power-law worker count: ~80% of jobs below ten workers."""
    sample = params.min_workers / (
        rng.random() ** (1.0 / params.worker_pareto_shape)
    )
    return max(params.min_workers, min(params.max_workers, int(sample)))


def generate_workload(
    topo: Topology,
    params: WorkloadParams = WorkloadParams(),
    seed: int = 1,
) -> Workload:
    """Generate a deterministic workload for ``topo``.

    ``params.n_flows`` counts *worker flows plus background flows*: the
    aggregatable fraction is honoured in flow count, matching the paper's
    "only 40% of flows are aggregatable" mix.
    """
    rng = random.Random(seed)
    placer = (
        RandomPlacer(topo, rng) if params.random_placement
        else LocalityAwarePlacer(topo, rng,
                                 remote_master=params.remote_master,
                                 fragmentation=params.fragmentation)
    )
    hosts = sorted(topo.hosts())
    workload = Workload()

    target_agg_flows = round(params.n_flows * params.aggregatable_fraction)
    # Pre-draw generous arrival schedules (jobs can't exceed the flow
    # budget, so target_agg_flows bounds the job count).
    job_arrivals = _arrival_times(rng, params, max(target_agg_flows, 1))
    background_arrivals = _arrival_times(
        rng, params, max(params.n_flows - target_agg_flows, 0) or 1
    )
    agg_flows = 0
    job_idx = 0
    while agg_flows < target_agg_flows:
        n_workers = worker_count(rng, params)
        n_workers = min(n_workers, max(1, target_agg_flows - agg_flows))
        n_workers = min(n_workers, len(hosts) - 1)
        placed = placer.place_job(n_workers, with_master=True)
        master, worker_hosts = placed[0], placed[1:]
        workers = tuple(
            (host, pareto_size(rng, params.mean_flow_size,
                               params.pareto_shape, params.max_flow_size))
            for host in worker_hosts
        )
        start = job_arrivals[job_idx % len(job_arrivals)]
        workload.jobs.append(AggJob(
            job_id=f"job:{job_idx}",
            master=master,
            workers=workers,
            alpha=params.alpha,
            start_time=start,
            n_trees=params.n_trees,
        ))
        agg_flows += n_workers
        job_idx += 1

    n_background = params.n_flows - agg_flows
    for i in range(max(0, n_background)):
        src, dst = rng.sample(hosts, 2)
        start = background_arrivals[i % len(background_arrivals)]
        workload.background.append(BackgroundFlow(
            flow_id=f"bg:{i}",
            src=src,
            dst=dst,
            size=pareto_size(rng, params.mean_flow_size,
                             params.pareto_shape, params.max_flow_size),
            start_time=start,
        ))
    return workload
