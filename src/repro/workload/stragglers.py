"""Straggler injection (Fig. 14).

The paper "artificially delay[s] the starting time of some of the flows
of a given request or job, following the distribution reported in the
literature" (the Mantri outlier study).  We model that with a Bernoulli
choice per worker (the straggler ratio) and an exponential delay for the
chosen workers -- exponential tails are the standard fit for task-runtime
outliers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.workload.synthetic import AggJob, Workload


@dataclass(frozen=True)
class StragglerModel:
    """Straggler injection parameters.

    Attributes:
        ratio: probability that a worker is a straggler, in [0, 1].
        mean_delay: mean of the exponential start-time delay (seconds).
    """

    ratio: float
    mean_delay: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ValueError(f"straggler ratio must be in [0, 1], got {self.ratio}")
        if self.mean_delay <= 0.0:
            raise ValueError("mean_delay must be positive")

    def delays_for(self, job: AggJob, rng: random.Random) -> List[float]:
        return [
            rng.expovariate(1.0 / self.mean_delay) if rng.random() < self.ratio
            else 0.0
            for _ in job.workers
        ]


def inject_stragglers(
    workload: Workload, model: StragglerModel, seed: int = 1
) -> Workload:
    """Return a copy of ``workload`` with straggler delays applied."""
    rng = random.Random(seed)
    delayed = Workload(background=list(workload.background))
    for job in workload.jobs:
        delayed.jobs.append(job.with_delays(model.delays_for(job, rng)))
    return delayed
