"""Command-line interface: regenerate any paper experiment.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro run fig08 --scale bench
    python -m repro run fig22
    python -m repro run all --scale quick --out results.txt
    python -m repro run fig09 --out results.json   # JSON, round-trips
    python -m repro bench --scale quick
    python -m repro bench --compare BENCH_netsim.json --max-regress 0.15
    python -m repro sweep fig06 --seeds 1,2,3 --processes 4
    python -m repro analyze --run fig06
    python -m repro analyze --trace trace_fig06.json
    python -m repro serve --port 8080
    python -m repro loadgen --users 1e6 --duration 60
    python -m repro watch --url http://127.0.0.1:8080
    python -m repro info

Experiment names accept the short form (``fig08``) or the full module
name (``fig08_output_ratio``).  Every experiment goes through the
registry in :mod:`repro.experiments` and the canonical
``run(scale=..., seed=...)`` entry point.

Uniform contract: every workload-running subcommand (``run``,
``bench``, ``trace``, ``analyze``, ``serve``, ``loadgen``) accepts the
same ``--scale/--seed/--out`` trio (shared argparse parent,
:func:`common_options`), and ``--out`` infers its format from the
extension everywhere: ``*.json`` serialises, anything else gets the
text rendering.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, TextIO, Tuple

import repro.experiments as experiments
from repro.experiments import (
    BENCH,
    DEFAULT,
    PAPER,
    QUICK,
    ExperimentResult,
    SimScale,
)

#: Ordered experiment catalogue (kept as an alias of the registry's
#: module list for back-compat with older scripts).
EXPERIMENTS = experiments.MODULES

SCALES = {
    "quick": QUICK,
    "bench": BENCH,
    "default": DEFAULT,
    "paper": PAPER,
}


def common_options(scale_default: str = "bench",
                   out_help: str = "write results to a file (*.json "
                                   "serialises; any other extension gets "
                                   "the text rendering)"
                   ) -> argparse.ArgumentParser:
    """The shared ``--scale/--seed/--out`` argparse parent.

    Every workload-running subcommand composes this parent so the trio
    spells and behaves identically across the CLI; only the scale
    default and the ``--out`` help text vary per command.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--scale", choices=sorted(SCALES),
                        default=scale_default,
                        help=f"simulation scale (default: {scale_default})")
    parent.add_argument("--seed", type=int, default=1,
                        help="deterministic RNG seed (default: 1)")
    parent.add_argument("--out", help=out_help)
    return parent


def write_result(result: ExperimentResult, out: Optional[str],
                 announce: bool = True) -> None:
    """Write one result to ``out``, format inferred from the extension.

    ``*.json`` gets ``ExperimentResult.to_dict`` (round-trippable);
    anything else gets ``to_text``.  ``out=None`` prints the text to
    stdout.
    """
    if not out:
        print(result.to_text())
        return
    with open(out, "w", encoding="utf-8") as fh:
        if out.endswith(".json"):
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        else:
            fh.write(result.to_text())
            fh.write("\n")
    if announce:
        print(f"wrote {out}", file=sys.stderr)


def resolve(name: str) -> str:
    """Map a short name (fig08, tab01) to its module name."""
    try:
        return experiments.resolve(name)
    except KeyError:
        raise SystemExit(
            experiments.unknown_experiment_message(name)) from None
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def run_experiment(name: str, scale: SimScale, seed: int,
                   ) -> Tuple[ExperimentResult, float]:
    """Run one experiment via the registry; returns (result, seconds).

    The observability registry is reset around the run so the result's
    ``metrics`` snapshot covers exactly this experiment.
    """
    from repro.obs import METRICS

    exp = experiments.load(name)
    METRICS.reset()
    started = time.time()
    result = exp.run(scale=scale, seed=seed)
    elapsed = time.time() - started
    result.metrics = METRICS.snapshot()
    return result, elapsed


def cmd_list(_args: argparse.Namespace) -> int:
    for exp in experiments.all_experiments():
        print(f"{exp.module:26s} {exp.summary}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [resolve(args.experiment)]
    as_json = bool(args.out) and args.out.endswith(".json")
    out: TextIO
    close = False
    if args.out:
        out = open(args.out, "w", encoding="utf-8")
        close = True
    else:
        out = sys.stdout
    try:
        total = 0.0
        collected = []
        for name in names:
            print(f"running {name} (scale={args.scale}) ...",
                  file=sys.stderr)
            result, elapsed = run_experiment(name, scale, args.seed)
            total += elapsed
            if as_json:
                collected.append(result.to_dict())
                continue
            print(result.to_text(), file=out)
            if args.plot:
                from repro.report import summarise

                print(summarise(result), file=out)
            print(f"[{elapsed:.1f}s]\n", file=out)
        if as_json:
            json.dump(collected, out, indent=2)
            out.write("\n")
        print(f"done: {len(names)} experiment(s) in {total:.1f}s",
              file=sys.stderr)
    finally:
        if close:
            out.close()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import SCALES as SWEEP_SCALES, sweep

    names = list(EXPERIMENTS) if "all" in args.experiments \
        else [resolve(name) for name in args.experiments]
    scales = [s.strip() for s in args.scale.split(",") if s.strip()]
    for scale_name in scales:
        if scale_name not in SWEEP_SCALES:
            raise SystemExit(f"unknown scale {scale_name!r}; choose from "
                             f"{sorted(SWEEP_SCALES)}")
    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        raise SystemExit("--seeds must be comma-separated integers, "
                         f"got {args.seeds!r}") from None
    if not scales or not seeds:
        raise SystemExit("sweep needs at least one scale and one seed")
    print(f"sweep: {len(names)} experiment(s) x {len(scales)} scale(s) "
          f"x {len(seeds)} seed(s)", file=sys.stderr)
    started = time.perf_counter()
    results = sweep(names, scales=scales, seeds=seeds,
                    processes=args.processes)
    elapsed = time.perf_counter() - started
    if args.out and args.out.endswith(".json"):
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    elif args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for result in results:
                fh.write(result.to_text())
                fh.write("\n\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        for result in results:
            print(result.to_text())
            print()
    print(f"done: {len(results)} merged result(s) in {elapsed:.1f}s",
          file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench, run_compare

    if args.compare:
        # Compare mode never rewrites the committed baseline; it runs
        # at the baseline's scale/seed so the numbers are comparable.
        return run_compare(args.compare, max_regress=args.max_regress,
                           trajectory=args.trajectory,
                           names=args.only or None)
    return run_bench(scale_name=args.scale, out=args.out,
                     names=args.only or None, seed=args.seed,
                     profile=args.profile, repeat=args.repeat)


def _trace_platform_companion(scale: SimScale, seed: int) -> None:
    """One functional platform request under the ambient tracer.

    Flow-level experiments (fig06 etc.) only exercise the simulator, so
    a bare experiment trace would carry ``netsim`` spans alone.  This
    companion drives :class:`~repro.core.platform.NetAggPlatform`
    through a top-k aggregation over the same topology so every trace
    also shows the platform (shim lifecycle) and aggbox (per-partial
    aggregation) timelines.
    """
    from repro.aggregation import deploy_boxes
    from repro.aggbox.functions import SearchResult, TopKFunction
    from repro.core.platform import NetAggPlatform
    from repro.faults import FaultSchedule, PlatformFaultInjector
    from repro.topology.threetier import three_tier
    from repro.wire.records import decode_search_results, \
        encode_search_results

    topo = three_tier(scale.topo)
    deploy_boxes(topo)
    # An empty fault schedule (rather than faults=None) makes the shim
    # probe each box and burn send latency, so the platform spans in
    # the trace have real durations for the critical-path extractor.
    platform = NetAggPlatform(
        topo, faults=PlatformFaultInjector(FaultSchedule()))
    function = TopKFunction(k=10)
    platform.register_app("topk", function,
                          encode_search_results, decode_search_results)
    hosts = sorted(topo.hosts())
    master = hosts[0]
    partials = [
        (host, [SearchResult(doc_id=i * 100 + j,
                             score=float((i * 37 + j * 13) % 97))
                for j in range(6)])
        for i, host in enumerate(hosts[1:9])
    ]
    platform.execute_request("topk", f"trace:{seed}", master, partials)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.topology.threetier import three_tier
    from repro.workload.synthetic import generate_workload
    from repro.workload.traces import (
        load_workload,
        save_workload,
        workload_summary,
    )

    if args.target == "generate":
        if not args.out:
            raise SystemExit("trace generate requires --out")
        scale = SCALES[args.scale]
        topo = three_tier(scale.topo)
        workload = generate_workload(topo, scale.workload, seed=args.seed)
        save_workload(workload, args.out)
        print(f"wrote {len(workload.jobs)} jobs + "
              f"{len(workload.background)} background flows to {args.out}")
        return 0
    if args.target == "inspect":
        if not args.path:
            raise SystemExit("trace inspect requires a trace file path")
        workload = load_workload(args.path)
        for key, value in workload_summary(workload).items():
            if isinstance(value, float):
                print(f"{key:28s} {value:,.3f}")
            else:
                print(f"{key:28s} {value:,}")
        return 0

    # `trace <experiment>`: run it under a live tracer and export a
    # Chrome/Perfetto trace_event JSON (load in ui.perfetto.dev).
    from repro.obs import METRICS, Tracer, tracing, write_trace

    name = resolve(args.target)
    scale = SCALES[args.scale]
    out = args.out or f"trace_{args.target}.json"
    tracer = Tracer()
    METRICS.reset()
    with tracing(tracer):
        print(f"tracing {name} (scale={args.scale}) ...", file=sys.stderr)
        _, elapsed = run_experiment(name, scale, args.seed)
        _trace_platform_companion(scale, args.seed)
    snapshot = METRICS.snapshot()
    write_trace(tracer, out, metrics=snapshot)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}: {len(snapshot)} metrics")
    spans = tracer.spans
    layers = ", ".join(
        f"{layer}={sum(1 for s in spans if s.layer == layer)}"
        for layer in tracer.layers())
    print(f"wrote {out}: {len(spans)} spans ({layers}), "
          f"{len(tracer.instants)} instants, "
          f"{len(tracer.samples)} counter samples  [{elapsed:.1f}s]")
    return 0


#: Strategy name -> (factory, needs agg boxes deployed).
STRATEGIES = {
    "none": ("NoAggregationStrategy", False),
    "rack": ("RackLevelStrategy", False),
    "binary": ("BinaryTreeStrategy", False),
    "chain": ("ChainStrategy", False),
    "netagg": ("NetAggStrategy", True),
}


def _sweep_strategies(scale: SimScale, names: List[str], seed: int) -> None:
    """Simulate each named strategy once under the ambient tracer.

    Every :func:`repro.experiments.common.simulate` call produces one
    ``flowsim.run`` span labelled with the strategy's name, so the
    diagnosis gets one run (and one bottleneck table) per strategy.
    """
    import repro.aggregation as aggregation
    from repro.experiments.common import simulate

    for name in names:
        if name not in STRATEGIES:
            raise SystemExit(
                f"unknown strategy {name!r} "
                f"(choose from {', '.join(sorted(STRATEGIES))})")
        factory_name, needs_boxes = STRATEGIES[name]
        strategy = getattr(aggregation, factory_name)()
        simulate(scale, strategy,
                 deploy=aggregation.deploy_boxes if needs_boxes else None,
                 seed=seed)


def _diagnosis_result(diagnosis: dict, source: str) -> ExperimentResult:
    """Wrap a diagnosis dict in an ExperimentResult for reporting."""
    from repro.obs.analyze import CATEGORIES

    result = ExperimentResult(
        experiment="analyze",
        description=f"Critical-path and bottleneck diagnosis of {source}",
        columns=("run", "dominant_tier", "bottleneck_link") + CATEGORIES,
        notes="Fractions are critical-path seconds per category / total "
              "attributed seconds (they sum to 1).  The bottleneck link "
              "is the top row of the run's credit-ranked link table.",
    )
    for run in diagnosis.get("runs", []):
        timeline = run.get("timeline", {})
        links = timeline.get("links", [])
        fractions = (run.get("critical_path") or {}).get("fractions", {})
        result.add_row(**{
            "run": run.get("strategy") or "(unlabelled)",
            "dominant_tier": timeline.get("dominant_tier", ""),
            "bottleneck_link": links[0]["link"] if links else "",
            **{cat: round(float(fractions.get(cat, 0.0)), 4)
               for cat in CATEGORIES},
        })
    platform = diagnosis.get("platform")
    if platform:
        fractions = platform.get("fractions", {})
        result.add_row(**{
            "run": "platform",
            "dominant_tier": platform.get("dominant", ""),
            "bottleneck_link": "",
            **{cat: round(float(fractions.get(cat, 0.0)), 4)
               for cat in CATEGORIES},
        })
    result.diagnosis = diagnosis
    return result


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.report import summarise

    if bool(args.trace) == bool(args.run or args.strategies):
        raise SystemExit(
            "analyze needs exactly one source: --trace <file>, or "
            "--run <experiment> (optionally with --strategies)")

    if args.trace:
        from repro.obs.analyze import diagnose_file

        diagnosis = diagnose_file(args.trace)
        source = args.trace
    else:
        from repro.obs import METRICS, Tracer, tracing
        from repro.obs.analyze import diagnose_tracer

        scale = SCALES[args.scale]
        if args.incast:
            # The paper's §2 partition/aggregate microbenchmark: wide
            # fan-in per job, workers scattered across racks.  This is
            # the configuration under which the edge->core bottleneck
            # shift between `none` and `netagg` is visible at small
            # scale.
            scale = scale.with_workload(min_workers=24,
                                        random_placement=True)
        tracer = Tracer()
        METRICS.reset()
        with tracing(tracer):
            if args.strategies:
                names = [n.strip() for n in args.strategies.split(",")
                         if n.strip()]
                print(f"simulating strategies {', '.join(names)} "
                      f"(scale={args.scale}) ...", file=sys.stderr)
                _sweep_strategies(scale, names, args.seed)
                source = f"strategies {','.join(names)}"
            else:
                name = resolve(args.run)
                print(f"tracing {name} (scale={args.scale}) ...",
                      file=sys.stderr)
                run_experiment(name, scale, args.seed)
                _trace_platform_companion(scale, args.seed)
                source = name
        diagnosis = diagnose_tracer(tracer)

    result = _diagnosis_result(diagnosis, source)
    print(result.to_text())
    optimizer = diagnosis.get("optimizer")
    if optimizer:
        print(_optimizer_text(optimizer))
    serve = diagnosis.get("serve")
    if serve:
        print(_serve_text(serve))
    print(summarise(result))
    if args.out:
        write_result(result, args.out)
    return 0


def _optimizer_text(optimizer: dict) -> str:
    """Render the diagnosis's optimizer section for the terminal."""
    actions = optimizer.get("actions", {})
    migrations = optimizer.get("migrations", {})
    lines = [
        "== optimizer: self-healing actions ==",
        "ticks={ticks} audits={audits} drains={drains} "
        "undrains={undrains} parked={parked}".format(
            ticks=optimizer.get("ticks", 0),
            audits=optimizer.get("audits", 0),
            drains=optimizer.get("drains", 0),
            undrains=optimizer.get("undrains", 0),
            parked=optimizer.get("parked", 0)),
    ]
    if actions:
        lines.append("actions: " + "  ".join(
            f"{kind}={count}" for kind, count in sorted(actions.items())))
    if migrations:
        lines.append("migrations: " + "  ".join(
            f"{outcome}={count}"
            for outcome, count in sorted(migrations.items())))
    for entry in optimizer.get("log", []):
        lines.append(
            "  t={at:8.3f}  {kind:<8s} {target:<20s} "
            "[{strategy}] {reason}".format(
                at=float(entry.get("at", 0.0)),
                kind=str(entry.get("kind", "")),
                target=str(entry.get("target", "")),
                strategy=str(entry.get("strategy", "")),
                reason=str(entry.get("reason", ""))))
    return "\n".join(lines)


def _serve_text(serve: dict) -> str:
    """Render the diagnosis's serve section for the terminal."""
    lines = [
        "== serve: per-tenant latency attribution ==",
        f"requests={serve.get('requests', 0)}",
    ]
    for tenant, row in sorted(serve.get("tenants", {}).items()):
        statuses = "  ".join(
            f"{code}={count}"
            for code, count in sorted(row.get("statuses", {}).items()))
        lines.append(
            "  {tenant:<12s} req={req:<6d} ok={ok:<6d} "
            "wait={wait:8.4f}s service={service:8.4f}s "
            "p99={p99:8.4f}s  {statuses}".format(
                tenant=str(tenant),
                req=int(row.get("requests", 0)),
                ok=int(row.get("ok", 0)),
                wait=float(row.get("mean_wait", 0.0)),
                service=float(row.get("mean_service", 0.0)),
                p99=float(row.get("p99_latency", 0.0)),
                statuses=statuses))
    return "\n".join(lines)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import AggregationService, ServeConfig, serve_forever
    from repro.serve.service import TenantPolicy

    scale = SCALES[args.scale]
    config = ServeConfig(topo=scale.topo,
                         default_policy=TenantPolicy(slo=args.slo),
                         admission=not args.no_admission)
    service = AggregationService(config)
    try:
        asyncio.run(serve_forever(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    # On shutdown, report what the service saw (format by extension).
    report = service.report
    if report.total_requests():
        write_result(report.to_result(
            description=f"serving report ({report.total_requests()} "
                        "requests)"), args.out)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.serve.watch import watch_loop

    return watch_loop(args.url, interval=args.interval,
                      iterations=args.iterations, top=args.top)


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_loadgen
    from repro.serve.service import TenantPolicy
    from repro.workload.openloop import OpenLoopParams

    scale = SCALES[args.scale]
    params = OpenLoopParams(
        users=args.users,
        duration=args.duration,
        per_user_rate=args.per_user_rate,
        tenants=args.tenants,
    )
    admission = not args.no_admission
    config = ServeConfig(topo=scale.topo,
                         default_policy=TenantPolicy(slo=args.slo),
                         admission=admission)
    print(f"loadgen: {params.users:,} users -> "
          f"{params.offered_rate:.1f} req/s offered over "
          f"{params.duration:g}s (scale={args.scale}, seed={args.seed}, "
          f"admission={'on' if admission else 'off'}) ...",
          file=sys.stderr)
    outcome = run_loadgen(params, config=config, seed=args.seed,
                          slo=args.slo, admission=admission)
    write_result(outcome.result, args.out)
    errors = outcome.report.accounting_errors()
    if errors:
        for error in errors:
            print(f"SLO-accounting error: {error}", file=sys.stderr)
        return 1
    print(f"aggregate goodput {outcome.aggregate_goodput:.1f} req/s, "
          "0 accounting errors", file=sys.stderr)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    import repro.aggregation as aggregation
    from repro.netsim.metrics import fct_summary, slowdown_summary
    from repro.netsim.simulator import FlowSim
    from repro.topology.threetier import three_tier
    from repro.workload.traces import load_workload

    workload = load_workload(args.trace)
    scale = SCALES[args.scale]
    rows = []
    names = sorted(STRATEGIES) if args.strategy == "all" \
        else [args.strategy]
    for name in names:
        factory_name, needs_boxes = STRATEGIES[name]
        strategy = getattr(aggregation, factory_name)()
        topo = three_tier(scale.topo)
        if needs_boxes:
            aggregation.deploy_boxes(topo)
        sim = FlowSim(topo.network)
        sim.add_flows(strategy.plan(workload, topo))
        result = sim.run()
        fct = fct_summary(result)
        slow = slowdown_summary(result, topo.network)
        rows.append((name, fct, slow))
        print(f"{name:8s} p50 {fct.median * 1e3:8.2f} ms   "
              f"p99 {fct.p99 * 1e3:8.2f} ms   "
              f"slowdown p99 {slow.p99:6.2f}x   "
              f"({fct.count} flows)")
    if len(rows) > 1:
        best = min(rows, key=lambda r: r[1].p99)
        print(f"\nbest 99th-percentile FCT: {best[0]}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — NetAgg (CoNEXT 2014) reproduction")
    print(f"{len(EXPERIMENTS)} experiments; scales: {', '.join(SCALES)}")
    for label, scale in SCALES.items():
        topo = scale.topo
        print(f"  {label:8s} {topo.n_hosts:5d} hosts, "
              f"{scale.workload.n_flows} flows")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.bench import DEFAULT_MAX_REGRESS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate NetAgg's evaluation figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments").set_defaults(
        func=cmd_list)

    run = sub.add_parser(
        "run", help="run one experiment (or 'all')",
        parents=[common_options(
            scale_default="bench",
            out_help="write results to a file (*.json serialises "
                     "via ExperimentResult.to_json)")])
    run.add_argument("experiment",
                     help="experiment name (fig08, tab01, ...) or 'all'")
    run.add_argument("--plot", action="store_true",
                     help="append sparkline summaries to the tables")
    run.set_defaults(func=cmd_run)

    bench = sub.add_parser(
        "bench", help="time every experiment, write BENCH_netsim.json",
        parents=[common_options(
            scale_default="bench",
            out_help="output JSON path (default: BENCH_netsim.json)")])
    bench.set_defaults(out="BENCH_netsim.json")
    bench.add_argument("--only", nargs="*", metavar="EXPERIMENT",
                       help="restrict to these experiments")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile the slowest experiment "
                            "(dumps <out>.prof)")
    bench.add_argument("--repeat", type=int, default=1,
                       help="time each experiment N times, keep the "
                            "fastest (use 3 when refreshing the "
                            "committed baseline)")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="regression gate: re-time the baseline's "
                            "experiments (at its scale/seed) and exit "
                            "non-zero on slowdowns")
    bench.add_argument("--max-regress", type=float,
                       default=DEFAULT_MAX_REGRESS,
                       help="allowed fractional slowdown for --compare "
                            f"(default: {DEFAULT_MAX_REGRESS})")
    bench.add_argument("--trajectory", default="BENCH_trajectory.jsonl",
                       help="JSONL file --compare appends each "
                            "comparison to (default: "
                            "BENCH_trajectory.jsonl)")
    bench.set_defaults(func=cmd_bench)

    sweep_p = sub.add_parser(
        "sweep",
        help="multi-seed/scale experiment grid on all cores",
        description="Run an (experiment x scale x seed) grid through "
                    "the multiprocess sweep runner; one merged result "
                    "per (experiment, scale), each row prefixed with "
                    "its scale/seed.  Output is bit-for-bit identical "
                    "at any worker count.")
    sweep_p.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                         help="experiment names (short or module form), "
                              "or 'all'")
    sweep_p.add_argument("--scale", default="bench",
                         help="comma-separated scale names "
                              "(default: bench)")
    sweep_p.add_argument("--seeds", default="1",
                         help="comma-separated RNG seeds (default: 1)")
    sweep_p.add_argument("--processes", type=int, default=None,
                         help="worker processes (default: one per core; "
                              "REPRO_PROCESSES also overrides)")
    sweep_p.add_argument("--out",
                         help="write results to a file (*.json "
                              "serialises; any other extension gets the "
                              "text rendering)")
    sweep_p.set_defaults(func=cmd_sweep)

    analyze = sub.add_parser(
        "analyze",
        help="critical-path and bottleneck diagnosis of a trace or run",
        parents=[common_options(
            scale_default="quick",
            out_help="write the diagnosis ExperimentResult to this file "
                     "(*.json serialises, embedded JSON diagnosis "
                     "included; other extensions get the text table)")])
    analyze.add_argument("--trace", metavar="FILE",
                         help="analyze an exported trace_event JSON")
    analyze.add_argument("--run", metavar="EXPERIMENT",
                         help="run this experiment under a tracer and "
                              "analyze the live trace")
    analyze.add_argument("--strategies", metavar="A,B,...",
                         help="instead of an experiment, simulate these "
                              "strategies (none, rack, binary, chain, "
                              "netagg) on the scale's workload and "
                              "diagnose each run")
    analyze.add_argument("--incast", action="store_true",
                         help="use the paper's incast microbenchmark "
                              "workload (wide fan-in, random placement) "
                              "-- shows the edge->core bottleneck shift")
    analyze.set_defaults(func=cmd_analyze)

    trace = sub.add_parser(
        "trace",
        help="trace an experiment (Perfetto JSON), or generate/inspect "
             "workload traces",
        parents=[common_options(
            scale_default="quick",
            out_help="output path (trace_event JSON for experiments, "
                     "JSONL for 'generate'; default: "
                     "trace_<experiment>.json)")])
    trace.add_argument(
        "target",
        help="experiment name (fig06, ...) to run under the tracer, or "
             "'generate' / 'inspect' for workload traces")
    trace.add_argument(
        "path", nargs="?",
        help="workload trace file (for 'inspect')")
    trace.add_argument("--metrics-out", metavar="PATH",
                       help="also dump the METRICS registry snapshot as "
                            "JSON (experiment tracing only)")
    trace.set_defaults(func=cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the live HTTP/JSON aggregation service",
        parents=[common_options(
            scale_default="quick",
            out_help="on shutdown, write the serving report here "
                     "(*.json serialises; else text)")])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port, 0 picks a free one "
                            "(default: 8080)")
    serve.add_argument("--slo", type=float, default=0.25,
                       help="per-request latency SLO in virtual seconds "
                            "(default: 0.25)")
    serve.add_argument("--no-admission", action="store_true",
                       help="disable per-tenant admission control")
    serve.set_defaults(func=cmd_serve)

    watch = sub.add_parser(
        "watch",
        help="live text dashboard over a running serve front-end",
        description="Polls GET /v1/stats and GET /metrics of a running "
                    "`python -m repro serve` and renders the top-N "
                    "tenants by windowed rate: live p99, goodput, SLO "
                    "burn rates and episode state, plus the hottest "
                    "platform/aggbox counters.")
    watch.add_argument("--url", default="http://127.0.0.1:8080",
                       help="front-end base URL "
                            "(default: http://127.0.0.1:8080)")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="poll interval in wall seconds (default: 1)")
    watch.add_argument("--iterations", type=int, default=None,
                       help="render N frames then exit "
                            "(default: run until interrupted)")
    watch.add_argument("--top", type=int, default=10,
                       help="tenants shown (default: 10)")
    watch.set_defaults(func=cmd_watch)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load test against a fresh serving deployment",
        parents=[common_options(
            scale_default="quick",
            out_help="write the per-tenant report (*.json serialises; "
                     "else text)")])
    loadgen.add_argument("--users", type=lambda s: int(float(s)),
                         default=10_000,
                         help="user population; offered rate = users x "
                              "per-user rate (default: 10000; accepts "
                              "1e6 notation)")
    loadgen.add_argument("--duration", type=float, default=10.0,
                         help="arrival window in virtual seconds "
                              "(default: 10)")
    loadgen.add_argument("--tenants", type=int, default=8,
                         help="Zipf tenant population (default: 8)")
    loadgen.add_argument("--per-user-rate", type=float, default=0.001,
                         help="requests/s each user offers "
                              "(default: 0.001)")
    loadgen.add_argument("--slo", type=float, default=0.25,
                         help="latency SLO in virtual seconds "
                              "(default: 0.25)")
    loadgen.add_argument("--no-admission", action="store_true",
                         help="disable per-tenant admission control "
                              "(the fig_serve ablation arm)")
    loadgen.set_defaults(func=cmd_loadgen)

    replay = sub.add_parser(
        "replay", help="replay a JSONL trace through a strategy")
    replay.add_argument("trace")
    replay.add_argument("--strategy", default="all",
                        choices=sorted(STRATEGIES) + ["all"])
    replay.add_argument("--scale", choices=sorted(SCALES),
                        default="bench",
                        help="topology to replay on (must contain the "
                             "trace's hosts)")
    replay.set_defaults(func=cmd_replay)

    sub.add_parser("info", help="version and scale summary").set_defaults(
        func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other tools.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
