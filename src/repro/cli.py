"""Command-line interface: regenerate any paper experiment.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro run fig08 --scale bench
    python -m repro run fig22
    python -m repro run all --scale quick --out results.txt
    python -m repro run fig09 --out results.json   # JSON, round-trips
    python -m repro bench --scale quick
    python -m repro info

Experiment names accept the short form (``fig08``) or the full module
name (``fig08_output_ratio``).  Every experiment goes through the
registry in :mod:`repro.experiments` and the canonical
``run(scale=..., seed=...)`` entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, TextIO, Tuple

import repro.experiments as experiments
from repro.experiments import (
    BENCH,
    DEFAULT,
    PAPER,
    QUICK,
    ExperimentResult,
    SimScale,
)

#: Ordered experiment catalogue (kept as an alias of the registry's
#: module list for back-compat with older scripts).
EXPERIMENTS = experiments.MODULES

SCALES = {
    "quick": QUICK,
    "bench": BENCH,
    "default": DEFAULT,
    "paper": PAPER,
}


def resolve(name: str) -> str:
    """Map a short name (fig08, tab01) to its module name."""
    try:
        return experiments.resolve(name)
    except KeyError:
        raise SystemExit(
            experiments.unknown_experiment_message(name)) from None
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def run_experiment(name: str, scale: SimScale, seed: int,
                   ) -> Tuple[ExperimentResult, float]:
    """Run one experiment via the registry; returns (result, seconds).

    The observability registry is reset around the run so the result's
    ``metrics`` snapshot covers exactly this experiment.
    """
    from repro.obs import METRICS

    exp = experiments.load(name)
    METRICS.reset()
    started = time.time()
    result = exp.run(scale=scale, seed=seed)
    elapsed = time.time() - started
    result.metrics = METRICS.snapshot()
    return result, elapsed


def cmd_list(_args: argparse.Namespace) -> int:
    for exp in experiments.all_experiments():
        print(f"{exp.module:26s} {exp.summary}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [resolve(args.experiment)]
    as_json = bool(args.out) and args.out.endswith(".json")
    out: TextIO
    close = False
    if args.out:
        out = open(args.out, "w", encoding="utf-8")
        close = True
    else:
        out = sys.stdout
    try:
        total = 0.0
        collected = []
        for name in names:
            print(f"running {name} (scale={args.scale}) ...",
                  file=sys.stderr)
            result, elapsed = run_experiment(name, scale, args.seed)
            total += elapsed
            if as_json:
                collected.append(result.to_dict())
                continue
            print(result.to_text(), file=out)
            if args.plot:
                from repro.report import summarise

                print(summarise(result), file=out)
            print(f"[{elapsed:.1f}s]\n", file=out)
        if as_json:
            json.dump(collected, out, indent=2)
            out.write("\n")
        print(f"done: {len(names)} experiment(s) in {total:.1f}s",
              file=sys.stderr)
    finally:
        if close:
            out.close()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench

    return run_bench(scale_name=args.scale, out=args.out,
                     names=args.only or None, seed=args.seed,
                     profile=args.profile)


def _trace_platform_companion(scale: SimScale, seed: int) -> None:
    """One functional platform request under the ambient tracer.

    Flow-level experiments (fig06 etc.) only exercise the simulator, so
    a bare experiment trace would carry ``netsim`` spans alone.  This
    companion drives :class:`~repro.core.platform.NetAggPlatform`
    through a top-k aggregation over the same topology so every trace
    also shows the platform (shim lifecycle) and aggbox (per-partial
    aggregation) timelines.
    """
    from repro.aggregation import deploy_boxes
    from repro.aggbox.functions import SearchResult, TopKFunction
    from repro.core.platform import NetAggPlatform
    from repro.topology.threetier import three_tier
    from repro.wire.records import decode_search_results, \
        encode_search_results

    topo = three_tier(scale.topo)
    deploy_boxes(topo)
    platform = NetAggPlatform(topo)
    function = TopKFunction(k=10)
    platform.register_app("topk", function,
                          encode_search_results, decode_search_results)
    hosts = sorted(topo.hosts())
    master = hosts[0]
    partials = [
        (host, [SearchResult(doc_id=i * 100 + j,
                             score=float((i * 37 + j * 13) % 97))
                for j in range(6)])
        for i, host in enumerate(hosts[1:9])
    ]
    platform.execute_request("topk", f"trace:{seed}", master, partials)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.topology.threetier import three_tier
    from repro.workload.synthetic import generate_workload
    from repro.workload.traces import (
        load_workload,
        save_workload,
        workload_summary,
    )

    if args.target == "generate":
        if not args.out:
            raise SystemExit("trace generate requires --out")
        scale = SCALES[args.scale]
        topo = three_tier(scale.topo)
        workload = generate_workload(topo, scale.workload, seed=args.seed)
        save_workload(workload, args.out)
        print(f"wrote {len(workload.jobs)} jobs + "
              f"{len(workload.background)} background flows to {args.out}")
        return 0
    if args.target == "inspect":
        if not args.path:
            raise SystemExit("trace inspect requires a trace file path")
        workload = load_workload(args.path)
        for key, value in workload_summary(workload).items():
            if isinstance(value, float):
                print(f"{key:28s} {value:,.3f}")
            else:
                print(f"{key:28s} {value:,}")
        return 0

    # `trace <experiment>`: run it under a live tracer and export a
    # Chrome/Perfetto trace_event JSON (load in ui.perfetto.dev).
    from repro.obs import METRICS, Tracer, tracing, write_trace

    name = resolve(args.target)
    scale = SCALES[args.scale]
    out = args.out or f"trace_{args.target}.json"
    tracer = Tracer()
    METRICS.reset()
    with tracing(tracer):
        print(f"tracing {name} (scale={args.scale}) ...", file=sys.stderr)
        _, elapsed = run_experiment(name, scale, args.seed)
        _trace_platform_companion(scale, args.seed)
    write_trace(tracer, out, metrics=METRICS.snapshot())
    spans = tracer.spans
    layers = ", ".join(
        f"{layer}={sum(1 for s in spans if s.layer == layer)}"
        for layer in tracer.layers())
    print(f"wrote {out}: {len(spans)} spans ({layers}), "
          f"{len(tracer.instants)} instants, "
          f"{len(tracer.samples)} counter samples  [{elapsed:.1f}s]")
    return 0


#: Strategy name -> (factory, needs agg boxes deployed).
STRATEGIES = {
    "none": ("NoAggregationStrategy", False),
    "rack": ("RackLevelStrategy", False),
    "binary": ("BinaryTreeStrategy", False),
    "chain": ("ChainStrategy", False),
    "netagg": ("NetAggStrategy", True),
}


def cmd_replay(args: argparse.Namespace) -> int:
    import repro.aggregation as aggregation
    from repro.netsim.metrics import fct_summary, slowdown_summary
    from repro.netsim.simulator import FlowSim
    from repro.topology.threetier import three_tier
    from repro.workload.traces import load_workload

    workload = load_workload(args.trace)
    scale = SCALES[args.scale]
    rows = []
    names = sorted(STRATEGIES) if args.strategy == "all" \
        else [args.strategy]
    for name in names:
        factory_name, needs_boxes = STRATEGIES[name]
        strategy = getattr(aggregation, factory_name)()
        topo = three_tier(scale.topo)
        if needs_boxes:
            aggregation.deploy_boxes(topo)
        sim = FlowSim(topo.network)
        sim.add_flows(strategy.plan(workload, topo))
        result = sim.run()
        fct = fct_summary(result)
        slow = slowdown_summary(result, topo.network)
        rows.append((name, fct, slow))
        print(f"{name:8s} p50 {fct.median * 1e3:8.2f} ms   "
              f"p99 {fct.p99 * 1e3:8.2f} ms   "
              f"slowdown p99 {slow.p99:6.2f}x   "
              f"({fct.count} flows)")
    if len(rows) > 1:
        best = min(rows, key=lambda r: r[1].p99)
        print(f"\nbest 99th-percentile FCT: {best[0]}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — NetAgg (CoNEXT 2014) reproduction")
    print(f"{len(EXPERIMENTS)} experiments; scales: {', '.join(SCALES)}")
    for label, scale in SCALES.items():
        topo = scale.topo
        print(f"  {label:8s} {topo.n_hosts:5d} hosts, "
              f"{scale.workload.n_flows} flows")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate NetAgg's evaluation figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments").set_defaults(
        func=cmd_list)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     help="experiment name (fig08, tab01, ...) or 'all'")
    run.add_argument("--scale", choices=sorted(SCALES), default="bench",
                     help="simulation scale (default: bench)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--out",
                     help="write results to a file (*.json serialises "
                          "via ExperimentResult.to_json)")
    run.add_argument("--plot", action="store_true",
                     help="append sparkline summaries to the tables")
    run.set_defaults(func=cmd_run)

    bench = sub.add_parser(
        "bench", help="time every experiment, write BENCH_netsim.json")
    bench.add_argument("--scale", choices=sorted(SCALES), default="bench",
                       help="simulation scale (default: bench)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--out", default="BENCH_netsim.json",
                       help="output JSON path (default: BENCH_netsim.json)")
    bench.add_argument("--only", nargs="*", metavar="EXPERIMENT",
                       help="restrict to these experiments")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile the slowest experiment "
                            "(dumps <out>.prof)")
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="trace an experiment (Perfetto JSON), or generate/inspect "
             "workload traces")
    trace.add_argument(
        "target",
        help="experiment name (fig06, ...) to run under the tracer, or "
             "'generate' / 'inspect' for workload traces")
    trace.add_argument(
        "path", nargs="?",
        help="workload trace file (for 'inspect')")
    trace.add_argument("--scale", choices=sorted(SCALES), default="quick",
                       help="simulation scale (default: quick)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--out",
                       help="output path (trace_event JSON for "
                            "experiments, JSONL for 'generate'; default: "
                            "trace_<experiment>.json)")
    trace.set_defaults(func=cmd_trace)

    replay = sub.add_parser(
        "replay", help="replay a JSONL trace through a strategy")
    replay.add_argument("trace")
    replay.add_argument("--strategy", default="all",
                        choices=sorted(STRATEGIES) + ["all"])
    replay.add_argument("--scale", choices=sorted(SCALES),
                        default="bench",
                        help="topology to replay on (must contain the "
                             "trace's hosts)")
    replay.set_defaults(func=cmd_replay)

    sub.add_parser("info", help="version and scale summary").set_defaults(
        func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other tools.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
