"""Deployment cost model for the feasibility study (§2.4, Fig. 3)."""

from repro.cost.model import (
    CostReport,
    PriceList,
    netagg_cost,
    upgrade_cost,
)

__all__ = ["PriceList", "CostReport", "upgrade_cost", "netagg_cost"]
