"""Upgrade-cost calculator (§2.4, "Cost analysis").

The paper compares deploying agg boxes against upgrading the network,
with equipment prices from Popa et al., "A Cost Comparison of Data
Center Network Architectures" (CoNEXT'10).  We use the same flavour of
per-port/per-server price list (documented constants below -- the
absolute dollars matter less than their ratios) and count the equipment
delta each option needs over the base set-up (1 Gbps edges, 4:1
over-subscription).

Options modelled:

- ``FullBisec-10G`` -- full-bisection topology with 10 Gbps edges;
- ``Oversub-10G``   -- keep the over-subscription, 10 Gbps edges;
- ``FullBisec-1G``  -- full bisection at 1 Gbps;
- ``NetAgg``        -- agg boxes on every switch (base network);
- ``Incremental-NetAgg`` -- boxes on the aggregation tier only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.topology.threetier import ThreeTierParams
from repro.units import Gbps


@dataclass(frozen=True)
class PriceList:
    """Unit prices in USD (Popa et al. flavour).

    ``port_*`` prices are per switch port (amortised switch cost);
    ``nic_*`` per server adapter; servers are commodity boxes.
    """

    port_1g: float = 100.0
    port_10g: float = 900.0
    nic_1g: float = 50.0
    nic_10g: float = 500.0
    aggbox_server: float = 2500.0

    def port(self, rate: float) -> float:
        return self.port_10g if rate > Gbps(1.0) else self.port_1g

    def nic(self, rate: float) -> float:
        return self.nic_10g if rate > Gbps(1.0) else self.nic_1g


@dataclass
class CostReport:
    """Itemised equipment cost."""

    label: str
    items: List[Tuple[str, int, float]] = field(default_factory=list)

    def add(self, description: str, quantity: int, unit_price: float) -> None:
        if quantity < 0:
            raise ValueError("quantity must be >= 0")
        self.items.append((description, quantity, unit_price))

    @property
    def total(self) -> float:
        return sum(qty * unit for _, qty, unit in self.items)


def network_cost(params: ThreeTierParams,
                 prices: PriceList = PriceList(),
                 label: str = "network") -> CostReport:
    """Total network equipment cost of a three-tier configuration.

    Edge equipment is per port/NIC; inter-switch fabric is charged
    *capacity-proportionally* (10G-port price per 10 Gbps of capacity,
    both ends of every tier), which is how bisection bandwidth actually
    drives cost in the Popa et al. comparison -- discrete per-switch port
    counts would hide small over-subscription deltas behind minimum
    connectivity requirements.
    """
    report = CostReport(label=label)
    report.add("edge switch ports", params.n_hosts,
               prices.port(params.edge_rate))
    report.add("server NICs", params.n_hosts, prices.nic(params.edge_rate))
    # Total uplink capacity: ToR->aggr and aggr->core carry the same
    # post-over-subscription volume; each link has two port ends.
    tor_uplink_total = (params.n_tors * params.hosts_per_tor
                        * params.edge_rate / params.oversubscription)
    fabric_capacity = tor_uplink_total * 2  # two inter-switch tiers
    port_equivalents = math.ceil(fabric_capacity * 2 / Gbps(10.0))
    report.add("inter-switch fabric (10G-port equivalents)",
               port_equivalents, prices.port_10g)
    return report


def upgrade_cost(base: ThreeTierParams, target: ThreeTierParams,
                 prices: PriceList = PriceList(),
                 label: str = "upgrade") -> CostReport:
    """Equipment delta to move the network from ``base`` to ``target``.

    Only additional/replaced equipment is charged (you cannot resell
    ports you rip out, so replacements cost the full new price).
    """
    base_cost = network_cost(base, prices)
    target_cost = network_cost(target, prices, label=label)
    report = CostReport(label=label)
    base_items = {d: (q, u) for d, q, u in base_cost.items}
    for description, quantity, unit in target_cost.items:
        base_q, base_u = base_items.get(description, (0, 0.0))
        if unit != base_u:
            # Rate class changed: all target equipment is new.
            report.add(f"{description} (replaced)", quantity, unit)
        elif quantity > base_q:
            report.add(f"{description} (added)", quantity - base_q, unit)
    return report


def netagg_cost(n_boxes: int, prices: PriceList = PriceList(),
                label: str = "NetAgg",
                link_rate: float = Gbps(10.0)) -> CostReport:
    """Cost of deploying ``n_boxes`` agg boxes (server + NIC + port)."""
    if n_boxes < 0:
        raise ValueError("n_boxes must be >= 0")
    report = CostReport(label=label)
    report.add("agg box servers", n_boxes, prices.aggbox_server)
    report.add("agg box NICs", n_boxes, prices.nic(link_rate))
    report.add("agg box switch ports", n_boxes, prices.port(link_rate))
    return report
