"""``python -m repro watch`` -- a live text dashboard over the wire.

Polls a running ``repro serve`` front-end (``GET /v1/stats`` +
``GET /metrics``) and renders the top-N tenants by windowed request
rate -- live p99, goodput, burn rates and episode state -- plus the
hottest platform/aggbox counters from the exposition.  Pure functions
do the rendering (:func:`render_dashboard` is unit-tested offline);
only :func:`watch_loop` touches the network and the wall clock.

The dashboard is read-only: it consumes exactly the two bounded GET
endpoints, so watching a service never perturbs its virtual clock,
admission state or ledgers.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Metric prefixes the hot-counters section surfaces, in render order.
HOT_PREFIXES = ("repro_serve_", "repro_aggbox_", "repro_platform_",
                "repro_obs_")

#: Counters per prefix group shown in the hot section.
HOT_PER_GROUP = 4


def fetch_json(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET a JSON document (raises urllib errors on failure)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_text(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def parse_exposition_values(text: str) -> List[Tuple[str, float]]:
    """(name-with-labels, value) pairs of an exposition document."""
    out: List[Tuple[str, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.rsplit(None, 1)
        if len(fields) != 2:
            continue
        try:
            out.append((fields[0], float(fields[1])))
        except ValueError:
            continue
    return out


def hot_counters(metrics_text: str,
                 per_group: int = HOT_PER_GROUP) -> List[str]:
    """The largest samples per prefix group, formatted for the board."""
    values = parse_exposition_values(metrics_text)
    lines: List[str] = []
    for prefix in HOT_PREFIXES:
        group = sorted(
            (pair for pair in values if pair[0].startswith(prefix)),
            key=lambda pair: (-pair[1], pair[0]))[:per_group]
        lines.extend(f"  {name:<52s} {value:>14,.6g}"
                     for name, value in group if value)
    return lines


def _tenant_rows(stats: Dict[str, Any],
                 top: int) -> List[Tuple[str, Dict[str, Any]]]:
    tenants = stats.get("tenants", {})
    ranked = sorted(
        tenants.items(),
        key=lambda kv: (-(kv[1].get("window") or {}).get("rate_rps", 0.0),
                        -kv[1].get("requests", 0), kv[0]))
    return ranked[:top]


def render_dashboard(stats: Dict[str, Any], metrics_text: str = "",
                     top: int = 10) -> str:
    """The dashboard as one printable string (pure; unit-testable)."""
    clock = stats.get("clock", 0.0)
    lines = [
        f"repro watch  --  clock {clock:10.3f}s  "
        f"requests {stats.get('requests', 0):,}",
        "",
        f"{'tenant':<14s} {'req':>7s} {'ok':>6s} {'206':>5s} "
        f"{'429':>5s} {'503':>5s} {'win p99':>9s} {'good/s':>8s} "
        f"{'burn f':>7s} {'burn s':>7s}  state",
    ]
    for name, row in _tenant_rows(stats, top):
        window = row.get("window") or {}
        burning = window.get("burning", 0.0)
        lines.append(
            f"{name:<14s} {row.get('requests', 0):>7,d} "
            f"{row.get('ok', 0):>6,d} {row.get('r206', 0):>5,d} "
            f"{row.get('r429', 0):>5,d} {row.get('r503', 0):>5,d} "
            f"{window.get('p99', row.get('p99', 0.0)):>8.4f}s "
            f"{window.get('goodput_rps', 0.0):>8.1f} "
            f"{window.get('burn_fast', 0.0):>7.2f} "
            f"{window.get('burn_slow', 0.0):>7.2f}  "
            f"{'BURN' if burning else 'ok'}")
    if not stats.get("tenants"):
        lines.append("  (no traffic yet)")
    alerts = stats.get("alerts") or {}
    if alerts:
        burning = ", ".join(alerts.get("burning", [])) or "none"
        lines.append("")
        lines.append(f"alerts: {alerts.get('total', 0)} fired, "
                     f"burning: {burning}")
        for alert in alerts.get("recent", [])[-3:]:
            lines.append(
                "  t={at:9.3f}  {key:<14s} fast {fast:6.2f}x  "
                "slow {slow:6.2f}x".format(
                    at=float(alert.get("at", 0.0)),
                    key=str(alert.get("key", "")),
                    fast=float(alert.get("fast_burn", 0.0)),
                    slow=float(alert.get("slow_burn", 0.0))))
    hot = hot_counters(metrics_text) if metrics_text else []
    if hot:
        lines.append("")
        lines.append("hot metrics:")
        lines.extend(hot)
    return "\n".join(lines)


def watch_loop(url: str, interval: float = 1.0,
               iterations: Optional[int] = None, top: int = 10,
               out=None, sleep: Callable[[float], None] = time.sleep,
               ) -> int:
    """Poll and render until interrupted (or ``iterations`` exhausted).

    ``out``/``sleep`` are injectable for tests; the default renders to
    stdout with an ANSI home+clear between frames.
    """
    out = out if out is not None else sys.stdout
    base = url.rstrip("/")
    frames = 0
    while iterations is None or frames < iterations:
        try:
            stats = fetch_json(base + "/v1/stats")
            metrics_text = fetch_text(base + "/metrics")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"watch: {base} unreachable: {exc}", file=sys.stderr)
            return 1
        if out is sys.stdout and frames:
            out.write("\x1b[H\x1b[2J")
        out.write(render_dashboard(stats, metrics_text, top=top))
        out.write("\n")
        out.flush()
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        sleep(interval)
    return 0
