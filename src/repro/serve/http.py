"""A minimal asyncio HTTP/JSON front-end for the serving layer.

Dependency-free (``asyncio.start_server`` + hand-rolled HTTP/1.1
parsing) so the repo stays stdlib-only.  Endpoints:

- ``GET  /healthz``     -- liveness: ``{"ok": true, "clock": ...}``;
- ``GET  /v1/stats``    -- the per-tenant serving report so far, plus
  live windowed stats and the burn-rate alert feed when the service's
  telemetry plane is on;
- ``GET  /metrics``     -- Prometheus text-format exposition
  (``repro.obs.live.render_prometheus``);
- ``POST /v1/query``    -- one Solr-style partition/aggregate query;
- ``POST /v1/mlgrad``   -- one gradient-aggregation round.

Both GET endpoints read only bounded state (log-bucket digests,
windowed ring buffers, the registry's metric objects): their cost does
not grow with the number of requests served.

POST bodies are the JSON request dicts
:meth:`repro.serve.service.AggregationService.handle` understands
(``tenant``, ``id``, and either explicit payloads or a
``payload_seed``); the response body is the handler's response dict and
the HTTP status mirrors its ``status`` field, so an admission NACK
really is an HTTP 429 on the wire.

``python -m repro serve`` wraps :func:`serve_forever`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple, Union

from repro.serve.service import AggregationService
from repro.workload.openloop import OP_MLGRAD, OP_QUERY

_MAX_BODY = 4 * 1024 * 1024

_REASONS = {
    200: "OK", 206: "Partial Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    """A request that failed *before* routing (parse/frame layer).

    Carries everything needed to answer with a well-formed JSON error
    instead of dropping the connection.  ``close`` is set when the
    stream cannot be resynchronised (an unread oversized body, a
    garbled request line), so the error is answered and the connection
    is then closed.
    """

    def __init__(self, status: int, error: str, reason: str,
                 close: bool = True) -> None:
        super().__init__(reason)
        self.status = status
        self.error = error
        self.reason = reason
        self.close = close


class HttpFrontend:
    """The asyncio server wrapping one :class:`AggregationService`."""

    def __init__(self, service: AggregationService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_cancelled(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- request plumbing --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    # Malformed and oversized requests get a real
                    # response (400/413 with a JSON body), never a
                    # silently dropped connection.
                    await _write_response(
                        writer, exc.status,
                        {"status": exc.status, "error": exc.error,
                         "reason": exc.reason})
                    if exc.close:
                        break
                    continue
                if request is None:
                    break
                method, path, body = request
                status, payload = await self.dispatch(method, path, body)
                await _write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def dispatch(self, method: str, path: str, body: bytes,
                       ) -> Tuple[int, Union[Dict[str, Any], str]]:
        """Route one parsed HTTP request (also the test seam).

        A ``str`` payload is written as ``text/plain`` (the Prometheus
        exposition); dicts are written as JSON.
        """
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "clock": self.service.clock}
        if method == "GET" and path == "/metrics":
            return 200, self.service.metrics_exposition()
        if method == "GET" and path == "/v1/stats":
            report = self.service.report
            telemetry = self.service.telemetry
            payload: Dict[str, Any] = {
                "requests": report.total_requests(),
                "clock": self.service.clock,
                "tenants": {
                    name: {
                        "requests": t.requests, "ok": t.ok,
                        "r206": t.partial,
                        "r429": t.rejected_admission,
                        "r503": t.rejected_unavailable,
                        "errors": t.errors,
                        # Digest estimates: O(bins) per scrape, never a
                        # sort over the full latency ledger.
                        "p50": t.p50_estimate(),
                        "p99": t.p99_estimate(),
                    }
                    for name, t in sorted(report.tenants.items())
                },
            }
            if telemetry is not None:
                for name, row in payload["tenants"].items():
                    row["window"] = telemetry.windowed(name)
                payload["alerts"] = {
                    "total": len(telemetry.monitor.alerts),
                    "burning": telemetry.monitor.active(),
                    "recent": [a.to_dict() for a in
                               telemetry.monitor.alerts[-5:]],
                }
            return 200, payload
        op = {"/v1/query": OP_QUERY, "/v1/mlgrad": OP_MLGRAD}.get(path)
        if op is None:
            return 404, {"status": 404, "error": "not-found",
                         "reason": f"no route {path!r}"}
        if method != "POST":
            return 405, {"status": 405, "error": "method-not-allowed",
                         "reason": f"{path} requires POST"}
        try:
            request = json.loads(body or b"{}")
            if not isinstance(request, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            return 400, {"status": 400, "error": "bad-json",
                         "reason": str(exc)}
        request["op"] = op
        response = await self.service.handle_async(request)
        return int(response["status"]), response


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one HTTP/1.1 request; None on clean EOF.

    Raises :class:`_HttpError` on frame-level problems -- a garbled
    request line (400), an unparseable or negative ``Content-Length``
    (400), a body larger than the 4 MiB frame limit (413) -- so the
    connection handler can answer them properly.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        raise _HttpError(400, "bad-request-line",
                         "request line is not valid HTTP")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HttpError(400, "bad-content-length",
                         "Content-Length is not an integer")
    if length < 0:
        raise _HttpError(400, "bad-content-length",
                         "Content-Length is negative")
    if length > _MAX_BODY:
        # The body is not read, so the stream cannot be resynced:
        # answer 413 and close.
        raise _HttpError(
            413, "payload-too-large",
            f"body of {length} bytes exceeds the {_MAX_BODY}-byte limit")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, body


#: Content type of the Prometheus text exposition format.
_EXPOSITION_TYPE = "text/plain; version=0.0.4; charset=utf-8"


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload: Union[Dict[str, Any], str]) -> None:
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = _EXPOSITION_TYPE
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()


async def serve_forever(service: AggregationService,
                        host: str = "127.0.0.1", port: int = 8080,
                        announce=print) -> None:
    """Run the HTTP front-end until cancelled (the CLI entry point)."""
    frontend = HttpFrontend(service)
    bound_host, bound_port = await frontend.start(host, port)
    announce(f"repro.serve listening on http://{bound_host}:{bound_port} "
             f"(POST /v1/query, POST /v1/mlgrad, GET /healthz, "
             f"GET /v1/stats, GET /metrics)")
    try:
        await frontend.serve_until_cancelled()
    finally:
        await frontend.stop()
