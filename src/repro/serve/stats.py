"""Per-tenant SLO accounting for the serving layer.

Every response the service produces is folded into one
:class:`TenantStats` ledger; :class:`ServeReport` turns the ledgers
into the per-tenant goodput / latency / SLO-attainment table the
``loadgen`` CLI and the ``fig_serve`` experiment print.

The accounting is self-checking: :meth:`ServeReport.accounting_errors`
re-derives every total from its parts and returns the discrepancies
(an empty list is asserted by the CI smoke load-test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentResult
from repro.obs.metrics import Histogram
from repro.units import percentile

#: Response statuses the service emits (HTTP-style).
STATUS_OK = 200
STATUS_PARTIAL = 206        #: partial aggregate (workers behind a partition)
STATUS_BAD_REQUEST = 400
STATUS_NOT_FOUND = 404
STATUS_PAYLOAD_TOO_LARGE = 413
STATUS_REJECTED = 429       #: admission NACK (rate-limit / queue-depth)
STATUS_INTERNAL = 500
STATUS_UNAVAILABLE = 503    #: breaker-open fail-fast or queue shedding


@dataclass
class TenantStats:
    """One tenant's serving ledger."""

    tenant: str
    slo: float
    requests: int = 0
    ok: int = 0
    ok_within_slo: int = 0
    partial: int = 0                # 206 (degraded but answered)
    partial_within_slo: int = 0
    rejected_admission: int = 0     # 429
    rejected_unavailable: int = 0   # 503
    errors: int = 0                 # 500
    latencies: List[float] = field(default_factory=list)
    waits: List[float] = field(default_factory=list)
    #: Bounded log-bucket digest of the same latencies: live endpoints
    #: (``/v1/stats``) read percentile *estimates* from here in O(bins)
    #: instead of sorting the full ledger on every scrape.
    digest: Histogram = field(
        default_factory=lambda: Histogram("tenant.latency"))

    def record(self, status: int, latency: float = 0.0,
               wait: float = 0.0) -> None:
        self.requests += 1
        if status in (STATUS_OK, STATUS_PARTIAL):
            # A 206 is an *answered* request (the tenant accepted the
            # completeness), so it shares the latency ledger; the
            # partial counters keep the degradation visible.
            if status == STATUS_OK:
                self.ok += 1
                if latency <= self.slo:
                    self.ok_within_slo += 1
            else:
                self.partial += 1
                if latency <= self.slo:
                    self.partial_within_slo += 1
            self.latencies.append(latency)
            self.waits.append(wait)
            self.digest.observe(latency)
        elif status == STATUS_REJECTED:
            self.rejected_admission += 1
        elif status == STATUS_UNAVAILABLE:
            self.rejected_unavailable += 1
        else:
            self.errors += 1

    def p50(self) -> float:
        return percentile(self.latencies, 50.0) if self.latencies else 0.0

    def p99(self) -> float:
        return percentile(self.latencies, 99.0) if self.latencies else 0.0

    def p50_estimate(self) -> float:
        """Digest p50: O(bins) regardless of request count."""
        return self.digest.percentile(50.0)

    def p99_estimate(self) -> float:
        """Digest p99: O(bins) regardless of request count."""
        return self.digest.percentile(99.0)

    def attainment(self) -> float:
        """Fraction of *offered* requests answered within the SLO
        (exact and accepted-partial responses both count)."""
        answered = self.ok_within_slo + self.partial_within_slo
        return answered / self.requests if self.requests else 0.0

    def goodput(self, duration: float) -> float:
        """Requests per second answered within the SLO."""
        answered = self.ok_within_slo + self.partial_within_slo
        return answered / duration if duration > 0 else 0.0


class ServeReport:
    """All tenants' ledgers plus the run-level accounting checks."""

    def __init__(self, slo: float) -> None:
        self.slo = slo
        self.tenants: Dict[str, TenantStats] = {}
        self.duration: float = 0.0

    def stats(self, tenant: str, slo: Optional[float] = None) -> TenantStats:
        ledger = self.tenants.get(tenant)
        if ledger is None:
            ledger = TenantStats(tenant=tenant,
                                 slo=self.slo if slo is None else slo)
            self.tenants[tenant] = ledger
        return ledger

    def record(self, tenant: str, status: int, latency: float = 0.0,
               wait: float = 0.0, slo: Optional[float] = None) -> None:
        self.stats(tenant, slo=slo).record(status, latency, wait)

    # -- aggregates --------------------------------------------------------

    def total_requests(self) -> int:
        return sum(t.requests for t in self.tenants.values())

    def total_ok_within_slo(self) -> int:
        return sum(t.ok_within_slo + t.partial_within_slo
                   for t in self.tenants.values())

    def aggregate_goodput(self) -> float:
        return (self.total_ok_within_slo() / self.duration
                if self.duration > 0 else 0.0)

    def accounting_errors(self) -> List[str]:
        """Discrepancies between totals and their parts (want: empty)."""
        problems: List[str] = []
        for tenant in sorted(self.tenants):
            t = self.tenants[tenant]
            parts = (t.ok + t.partial + t.rejected_admission
                     + t.rejected_unavailable + t.errors)
            if parts != t.requests:
                problems.append(
                    f"{tenant}: {t.requests} requests != {parts} "
                    "accounted outcomes")
            if len(t.latencies) != t.ok + t.partial:
                problems.append(
                    f"{tenant}: {len(t.latencies)} latencies for "
                    f"{t.ok + t.partial} answered responses")
            if t.ok_within_slo > t.ok:
                problems.append(
                    f"{tenant}: {t.ok_within_slo} within-SLO > {t.ok} ok")
            if t.partial_within_slo > t.partial:
                problems.append(
                    f"{tenant}: {t.partial_within_slo} within-SLO > "
                    f"{t.partial} partial")
            if any(l < 0 for l in t.latencies) \
                    or any(w < 0 for w in t.waits):
                problems.append(f"{tenant}: negative latency or wait")
        return problems

    # -- rendering ---------------------------------------------------------

    def to_result(self, description: str = "",
                  notes: str = "") -> ExperimentResult:
        """The per-tenant table as an :class:`ExperimentResult`.

        Tenants sort by request volume (hottest first); an ``ALL`` row
        aggregates the deployment.  Round-trips through the result's
        JSON helpers, so ``--out foo.json`` works like every other
        subcommand.
        """
        result = ExperimentResult(
            experiment="serve",
            description=description or "per-tenant serving report",
            columns=("tenant", "requests", "ok", "r206", "r429", "r503",
                     "err", "goodput_rps", "p50", "p99",
                     "slo_attainment"),
            notes=notes or (
                f"slo={self.slo:g}s over {self.duration:g}s; goodput = "
                "within-SLO responses / duration; attainment = "
                "within-SLO / offered"),
        )
        ordered = sorted(self.tenants.values(),
                         key=lambda t: (-t.requests, t.tenant))
        for t in ordered:
            result.add_row(
                tenant=t.tenant, requests=t.requests, ok=t.ok,
                r206=t.partial, r429=t.rejected_admission,
                r503=t.rejected_unavailable,
                err=t.errors, goodput_rps=t.goodput(self.duration),
                p50=t.p50(), p99=t.p99(),
                slo_attainment=t.attainment(),
            )
        all_latencies = [l for t in ordered for l in t.latencies]
        result.add_row(
            tenant="ALL",
            requests=self.total_requests(),
            ok=sum(t.ok for t in ordered),
            r206=sum(t.partial for t in ordered),
            r429=sum(t.rejected_admission for t in ordered),
            r503=sum(t.rejected_unavailable for t in ordered),
            err=sum(t.errors for t in ordered),
            goodput_rps=self.aggregate_goodput(),
            p50=percentile(all_latencies, 50.0) if all_latencies else 0.0,
            p99=percentile(all_latencies, 99.0) if all_latencies else 0.0,
            slo_attainment=(self.total_ok_within_slo()
                            / max(self.total_requests(), 1)),
        )
        return result
