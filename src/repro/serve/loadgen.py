"""Open-loop load generator driving an :class:`AggregationService`.

The generator replays a seed-deterministic arrival stream
(:mod:`repro.workload.openloop`: Poisson arrivals at the population's
aggregate rate, Zipfian tenant popularity) against a live service via
its asyncio interface, then renders the per-tenant goodput / p99 / SLO
report.  Identical ``(params, seed)`` produce an identical report --
arrivals, tenant draws, payload seeds, queueing and admission decisions
all live on seeded RNGs and the deterministic virtual clock.

``python -m repro loadgen`` is the CLI around :func:`run_loadgen`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.experiments.common import ExperimentResult
from repro.obs import METRICS
from repro.serve.service import (
    AggregationService,
    ServeConfig,
    TenantPolicy,
)
from repro.workload.openloop import OpenLoopParams, iter_arrivals

#: Fraction of estimated platform capacity the default per-tenant
#: admission budget hands out in aggregate (headroom for bursts).
ADMIT_FRACTION = 0.7

#: Tasks submitted to the event loop per batch (bounds memory; order
#: within and across batches is submission order, so replay is exact).
_BATCH = 512


@dataclass(frozen=True)
class LoadGenResult:
    """Everything one load-test run produced."""

    result: ExperimentResult       #: per-tenant table (+ ALL row)
    report: "object"               #: the service's ServeReport ledger
    service: AggregationService    #: the driven service (for inspection)

    @property
    def aggregate_goodput(self) -> float:
        return self.report.aggregate_goodput()


def estimate_service_time(config: ServeConfig, samples: int = 8) -> float:
    """Mean uncontended service time of one request (virtual seconds).

    Measured on a scratch deployment (identical config, no admission,
    no faults) so the estimate never perturbs the real service's clock
    or breaker state.  Used to size per-tenant admission budgets
    against actual platform capacity instead of a magic constant.
    """
    scratch = AggregationService(replace(
        config, admission=False, faults=None, max_queue_wait=None,
        telemetry=False))
    started = scratch.clock
    for i in range(samples):
        scratch.handle({"op": "query", "tenant": "probe",
                        "id": f"probe-{i}", "payload_seed": i * 7919})
    elapsed = scratch.clock - started
    return max(elapsed / samples, 1e-6)


def tenant_policies(params: OpenLoopParams, config: ServeConfig,
                    slo: float) -> Dict[str, TenantPolicy]:
    """Equal per-tenant admission budgets from estimated capacity.

    Aggregate admitted rate is capped at ``ADMIT_FRACTION`` of the
    deployment's estimated throughput, split evenly across tenants:
    Zipf-hot tenants hit their bucket hard (429s), cold tenants rarely
    notice -- the isolation property ``fig_serve`` measures.
    """
    capacity = ADMIT_FRACTION / estimate_service_time(config)
    rate = max(capacity / params.tenants, 1e-3)
    return {
        f"tenant-{rank}": TenantPolicy(rate=rate, burst=max(2.0, rate),
                                       slo=slo)
        for rank in range(1, params.tenants + 1)
    }


async def drive(service: AggregationService, params: OpenLoopParams,
                seed: int = 1) -> int:
    """Submit the whole arrival stream; returns the request count."""
    submitted = 0
    batch = []
    for arrival in iter_arrivals(params, seed):
        request = {
            "op": arrival.op,
            "tenant": arrival.tenant,
            "id": arrival.request_id,
            "payload_seed": arrival.payload_seed,
            "workers": params.workers,
            "results_per_worker": params.results_per_worker,
            "gradient_dims": params.gradient_dims,
        }
        batch.append(service.handle_async(request, arrival=arrival.at))
        submitted += 1
        if len(batch) >= _BATCH:
            await asyncio.gather(*batch)
            batch = []
    if batch:
        await asyncio.gather(*batch)
    return submitted


def run_loadgen(params: OpenLoopParams,
                config: Optional[ServeConfig] = None,
                seed: int = 1,
                slo: float = 0.25,
                admission: bool = True) -> LoadGenResult:
    """One full load test: build service, replay arrivals, report.

    When ``config`` is None a service is built at QUICK topology with
    per-tenant admission budgets sized from estimated capacity
    (:func:`tenant_policies`); ``admission=False`` removes the gate
    for the ablation arm.
    """
    if config is None:
        config = ServeConfig(default_policy=TenantPolicy(slo=slo),
                             admission=admission)
    if config.admission and not config.tenants:
        config = replace(
            config,
            tenants=tenant_policies(params, config, slo),
            default_policy=replace(config.default_policy, slo=slo),
        )
    service = AggregationService(config)
    submitted = asyncio.run(drive(service, params, seed))
    report = service.report
    report.duration = params.duration
    METRICS.counter("serve.loadgen.submitted").inc(submitted)
    result = report.to_result(
        description=f"open-loop load test: {params.users:,} users, "
                    f"{params.offered_rate:.1f} req/s offered over "
                    f"{params.duration:g}s ({submitted} requests, "
                    f"seed {seed})",
    )
    result.experiment = "loadgen"
    return LoadGenResult(result=result, report=report, service=service)
