"""``repro.serve`` -- the live multi-tenant serving layer.

Turns the scripted NetAgg reproduction into a service you can hammer:

- :class:`AggregationService` (:mod:`repro.serve.service`) -- a live
  :class:`repro.core.platform.NetAggPlatform` deployment behind a
  request/response interface with HTTP-style statuses (200 exact
  aggregate, 206 partial aggregate with a completeness record, 429
  admission NACK, 503 breaker-open / overload shed / partition);
- :mod:`repro.serve.loadgen` -- an open-loop, Zipfian-tenant load
  generator (``python -m repro loadgen``) with deterministic replay;
- :mod:`repro.serve.http` -- the asyncio HTTP/JSON front-end
  (``python -m repro serve``);
- :mod:`repro.serve.stats` -- per-tenant goodput / latency / SLO
  attainment ledgers with self-checking accounting;
- :mod:`repro.serve.watch` -- the live text dashboard
  (``python -m repro watch``) over ``/v1/stats`` + ``/metrics``.
"""

from repro.serve.http import HttpFrontend, serve_forever
from repro.serve.loadgen import (
    LoadGenResult,
    estimate_service_time,
    run_loadgen,
    tenant_policies,
)
from repro.serve.service import (
    AggregationService,
    ServeConfig,
    TenantPolicy,
)
from repro.serve.stats import ServeReport, TenantStats
from repro.serve.watch import render_dashboard, watch_loop

__all__ = [
    "AggregationService",
    "HttpFrontend",
    "LoadGenResult",
    "ServeConfig",
    "ServeReport",
    "TenantPolicy",
    "TenantStats",
    "estimate_service_time",
    "render_dashboard",
    "run_loadgen",
    "serve_forever",
    "tenant_policies",
    "watch_loop",
]
