"""The live multi-tenant aggregation service over a NetAgg platform.

``AggregationService`` is the request-facing half of ``repro.serve``:
it owns one :class:`repro.core.platform.NetAggPlatform` deployment
(topology + agg boxes + registered apps) and turns JSON-shaped requests
into JSON-shaped responses with HTTP-style statuses:

- ``200`` -- the request executed end-to-end through the aggregation
  trees; the body carries the exact aggregate value and the request's
  latency (queueing wait + service time) on the virtual clock;
- ``206`` -- the aggregate is *partial*: workers behind a network
  partition were dropped (platform partial delivery) and the response
  carries a ``completeness`` record alongside the value.  A 206 is
  only returned when the covered fraction clears the tenant's
  ``min_completeness`` floor; below the floor the request is a ``503``
  (``incomplete``) instead -- a too-small answer is no answer;
- ``429`` -- the per-tenant admission gate refused the request
  (:class:`repro.core.admission.AdmissionNack`: rate-limit or
  queue-depth), before it touched any tree;
- ``503`` -- the service failed fast: every agg box's circuit
  breaker is open, the request queued longer than ``max_queue_wait``
  (front-door load shedding), a partition cut off all (or too many)
  of the request's workers;
- ``400``/``404``/``413``/``500`` -- malformed request, unknown op,
  oversized body (the HTTP front-end's frame limit), or an internal
  execution error (always a well-formed JSON body).

Two request kinds match the paper's served workloads: ``query`` (a
Solr-style partition/aggregate top-k search) and ``mlgrad`` (one
distributed gradient-aggregation round).  Payloads are either given
explicitly (``results``/``gradients``) or synthesised deterministically
from a ``payload_seed`` -- the loadgen path.

Concurrency: the platform is single-threaded on its deterministic
virtual clock, so the asyncio front-end serialises requests through
:meth:`handle_async` (an ``asyncio.Lock``; FIFO, hence deterministic)
and open-loop arrivals queue via
:meth:`NetAggPlatform.begin_request` -- latency = queueing wait +
service time, exactly like a busy single-worker server.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.aggbox.functions import TopKFunction
from repro.aggregation import deploy_boxes
from repro.apps.mlgrad import (
    VectorSumFunction,
    decode_vector,
    encode_vector,
)
from repro.core.admission import AdmissionNack, AdmissionPolicy
from repro.core.breaker import BreakerPolicy
from repro.core.overload import OverloadConfig
from repro.core.partition import PartitionPolicy, SubtreeUnreachable
from repro.core.platform import NetAggPlatform
from repro.faults import (
    FaultSchedule,
    PlatformFaultInjector,
    RetryPolicy,
)
from repro.obs import METRICS, get_tracer, set_tracer
from repro.obs.live import LiveTelemetry, SloObjective, render_prometheus
from repro.serve.stats import (
    STATUS_BAD_REQUEST,
    STATUS_INTERNAL,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_UNAVAILABLE,
    ServeReport,
)
from repro.topology.threetier import three_tier
from repro.wire.records import (
    SearchResult,
    decode_search_results,
    encode_search_results,
)
from repro.workload.openloop import OP_MLGRAD, OP_QUERY, pick_endpoints

#: App names the service registers on its platform.
APP_QUERY = "serve-solr"
APP_MLGRAD = "serve-mlgrad"


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's serving contract: admitted rate and latency SLO."""

    rate: float = 50.0    #: sustained admitted requests per virtual second
    burst: float = 10.0   #: token-bucket burst allowance
    slo: float = 0.25     #: latency SLO (virtual seconds)
    #: Smallest worker fraction a partial aggregate may cover and still
    #: be answered (206); below the floor the tenant gets a 503.
    min_completeness: float = 0.5

    def admission(self) -> AdmissionPolicy:
        return AdmissionPolicy(rate=self.rate, burst=self.burst)


@dataclass(frozen=True)
class ServeConfig:
    """Deployment configuration of one :class:`AggregationService`.

    ``admission=False`` removes the per-tenant gate entirely (the
    ``fig_serve`` ablation arm); everything else stays identical.
    """

    #: Topology preset the platform deploys over.
    topo: Any = None                       # ThreeTierParams; None = QUICK's
    #: Default per-tenant policy (tenants without an override).
    default_policy: TenantPolicy = TenantPolicy()
    #: Per-tenant overrides.
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    #: Per-tenant token-bucket admission on/off.
    admission: bool = True
    #: Per-box circuit breakers on/off.
    breaker: bool = True
    #: 503-shed requests that queued longer than this (None disables).
    max_queue_wait: Optional[float] = 1.0
    #: Fault schedule replayed against the platform (box failures etc.).
    faults: Optional[FaultSchedule] = None
    #: Shim retry policy override.
    retry: Optional[RetryPolicy] = None
    #: Partition-tolerance policy (partial delivery, hedging, gray
    #: avoidance); None keeps the fail-stop baseline, where a
    #: partitioned worker fails the whole request.
    partition: Optional[PartitionPolicy] = None
    #: Top-k of query requests.
    k: int = 10
    #: Live telemetry plane (windowed series, SLO burn-rate alerting,
    #: anomaly-triggered flight recorder) on/off.
    telemetry: bool = True
    #: Good-event fraction each tenant's SLO objective requires.
    slo_target: float = 0.9
    #: Burn-rate windows (virtual seconds): fast 5x-budget catch, slow
    #: 1x-budget confirmation (Google SRE multi-window pattern).
    slo_fast_window: float = 1.0
    slo_slow_window: float = 5.0
    #: Flight-recorder ring capacity (records per kind).
    recorder_capacity: int = 2048
    #: Directory flight-recorder dumps are written to (None keeps them
    #: in memory only, on the recorder's bounded ``dumps`` ring).
    dump_dir: Optional[str] = None

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)


class AggregationService:
    """A live NetAgg deployment behind a request/response interface."""

    def __init__(self, config: ServeConfig = ServeConfig()) -> None:
        from repro.experiments.common import QUICK

        self.config = config
        topo_params = config.topo if config.topo is not None else QUICK.topo
        self._topo = three_tier(topo_params)
        deploy_boxes(self._topo)
        self._box_ids = sorted(
            info.box_id for info in self._topo.all_boxes())
        overload = OverloadConfig(
            breaker=BreakerPolicy() if config.breaker else None,
            admission=(config.default_policy.admission()
                       if config.admission else None),
            admission_per_tenant={
                name: policy.admission()
                for name, policy in sorted(config.tenants.items())
            } if config.admission else None,
        )
        self._platform = NetAggPlatform(
            self._topo,
            faults=PlatformFaultInjector(config.faults or FaultSchedule(),
                                         topo=self._topo),
            retry=config.retry,
            overload=overload,
            partition=config.partition,
        )
        self._platform.register_app(
            APP_QUERY, TopKFunction(k=config.k),
            encode_search_results, decode_search_results)
        self._platform.register_app(
            APP_MLGRAD, VectorSumFunction(), encode_vector, decode_vector)
        self._hosts = sorted(self._topo.hosts())
        self._lock = asyncio.Lock()
        self.report = ServeReport(slo=config.default_policy.slo)
        #: The live telemetry plane (None when ``config.telemetry`` is
        #: off -- e.g. the capacity-probe scratch deployment).
        self.telemetry: Optional[LiveTelemetry] = None
        if config.telemetry:
            self.telemetry = LiveTelemetry(
                template=SloObjective(
                    key="",
                    target=config.slo_target,
                    fast_window=config.slo_fast_window,
                    slow_window=config.slo_slow_window,
                ),
                recorder_capacity=config.recorder_capacity,
                window=config.slo_slow_window,
                dump_dir=config.dump_dir,
            )

    @property
    def platform(self) -> NetAggPlatform:
        return self._platform

    @property
    def clock(self) -> float:
        return self._platform.clock

    # -- payloads ----------------------------------------------------------

    def _query_partials(
        self, request: Mapping[str, Any],
    ) -> List[Tuple[str, List[SearchResult]]]:
        """Per-worker scored results, explicit or seed-synthesised."""
        if "results" in request:
            rows = request["results"]
            if not isinstance(rows, list) or not rows:
                raise ValueError("'results' must be a non-empty list "
                                 "of per-worker [doc_id, score] lists")
            partials = []
            for index, worker_rows in enumerate(rows):
                host = self._hosts[index % len(self._hosts)]
                partials.append((host, [
                    SearchResult(doc_id=int(doc), score=float(score))
                    for doc, score in worker_rows
                ]))
            return partials
        seed = int(request.get("payload_seed", 0))
        n_workers = int(request.get("workers", 8))
        per_worker = int(request.get("results_per_worker", 4))
        _, workers = pick_endpoints(self._hosts, seed, n_workers)
        return [
            (host, [
                SearchResult(
                    doc_id=seed % 100_000 + i * 1000 + j,
                    score=float((seed + i * 37 + j * 13) % 997) / 997.0,
                )
                for j in range(per_worker)
            ])
            for i, host in enumerate(workers)
        ]

    def _mlgrad_partials(
        self, request: Mapping[str, Any],
    ) -> List[Tuple[str, List[float]]]:
        """Per-worker gradient vectors, explicit or seed-synthesised."""
        if "gradients" in request:
            rows = request["gradients"]
            if not isinstance(rows, list) or not rows:
                raise ValueError("'gradients' must be a non-empty list "
                                 "of equal-length float vectors")
            return [
                (self._hosts[index % len(self._hosts)],
                 [float(v) for v in vector])
                for index, vector in enumerate(rows)
            ]
        seed = int(request.get("payload_seed", 0))
        n_workers = int(request.get("workers", 8))
        dims = int(request.get("gradient_dims", 8))
        _, workers = pick_endpoints(self._hosts, seed, n_workers)
        return [
            (host, [
                ((seed + i * 31 + j * 7) % 1999 - 999) / 999.0
                for j in range(dims)
            ])
            for i, host in enumerate(workers)
        ]

    def _master_for(self, request: Mapping[str, Any]) -> str:
        seed = int(request.get("payload_seed", 0))
        master, _ = pick_endpoints(
            self._hosts, seed, int(request.get("workers", 8)))
        return master

    def expected_value(self, request: Mapping[str, Any]) -> Any:
        """The centralised (ground-truth) aggregate of a request.

        Used by exactness tests and retries: whatever path a request
        takes through the trees -- including rewired, degraded or
        retried paths -- its 200 response must carry exactly this value.
        """
        op = request.get("op")
        if op == OP_QUERY:
            partials = self._query_partials(request)
            merged = TopKFunction(k=self.config.k).merge(
                [results for _, results in partials])
            return _encode_results(merged)
        if op == OP_MLGRAD:
            partials = self._mlgrad_partials(request)
            return VectorSumFunction().merge(
                [vector for _, vector in partials])
        raise ValueError(f"unknown op {op!r}")

    # -- request handling --------------------------------------------------

    def handle(self, request: Mapping[str, Any],
               arrival: Optional[float] = None) -> Dict[str, Any]:
        """Serve one request synchronously (see the module docstring).

        ``arrival`` is the request's arrival time on the virtual clock
        (defaults to "now"); latency accounts queueing from then.
        """
        tenant = str(request.get("tenant", "anonymous"))
        op = str(request.get("op", ""))
        request_id = str(request.get("id", f"{tenant}:{op}:anon"))
        slo = self.config.policy_for(tenant).slo
        if arrival is None:
            arrival = self._platform.clock
        telemetry = self.telemetry
        # Always-on flight recording: while no real tracer is active,
        # the recorder's bounded ring captures this request's spans.
        # A caller-installed tracer (analyze/trace paths) wins; the
        # ambient tracer is restored either way, so nothing leaks.
        ambient = None
        if telemetry is not None and not get_tracer().enabled:
            ambient = set_tracer(telemetry.recorder)
        try:
            response = self._execute(request, tenant, op, request_id,
                                     arrival)
        finally:
            if ambient is not None:
                set_tracer(ambient)
        status = response["status"]
        latency = response.get("latency", 0.0)
        wait = response.get("wait", 0.0)
        self.report.record(tenant, status, latency, wait, slo=slo)
        METRICS.counter("serve.requests").inc()
        METRICS.counter(f"serve.status.{status}").inc()
        if status == STATUS_OK:
            METRICS.histogram("serve.latency").observe(latency)
        if telemetry is not None:
            now = self._platform.clock
            telemetry.observe_request(tenant, now, status, latency,
                                      slo=slo)
            error = response.get("error")
            if error == "breaker-open":
                telemetry.trigger("breaker.open", now, tenant=tenant,
                                  request=request_id)
            elif error in ("partition", "incomplete") \
                    or status == STATUS_PARTIAL:
                telemetry.trigger("partition.detected", now,
                                  tenant=tenant, request=request_id,
                                  scopes=",".join(
                                      response.get("scopes", [])))
        return response

    def metrics_exposition(self) -> str:
        """The Prometheus text-format document ``GET /metrics`` serves.

        Reads only bounded state (registry metric objects plus the
        telemetry plane's rings), so cost is independent of how many
        requests the service has handled.
        """
        return render_prometheus(telemetry=self.telemetry,
                                 at=self._platform.clock)

    async def handle_async(self, request: Mapping[str, Any],
                           arrival: Optional[float] = None,
                           ) -> Dict[str, Any]:
        """Asyncio entry point: serialises callers onto the platform.

        ``asyncio.Lock`` wakes waiters FIFO, so concurrent submissions
        execute in submission order -- the deterministic-replay
        property the loadgen tests pin.
        """
        async with self._lock:
            return self.handle(request, arrival=arrival)

    def _execute(self, request: Mapping[str, Any], tenant: str, op: str,
                 request_id: str, arrival: float) -> Dict[str, Any]:
        response = self._execute_inner(request, tenant, op, request_id,
                                       arrival)
        tracer = get_tracer()
        if tracer.enabled:
            # The request span cannot carry the status (only known at
            # end); the response instant completes the picture for
            # ``repro.obs.analyze.serve`` -- and fires for fail-fast
            # rejections that never open a span.
            completeness = response.get("completeness") or {}
            tracer.instant(
                "serve.response", self._platform.clock, layer="serve",
                tenant=tenant, op=op, request=request_id,
                status=response["status"],
                latency=response.get("latency", 0.0),
                hedges=response.get("hedges", 0),
                completeness=completeness.get("fraction", 1.0),
            )
        return response

    def _execute_inner(self, request: Mapping[str, Any], tenant: str,
                       op: str, request_id: str,
                       arrival: float) -> Dict[str, Any]:
        base = {"id": request_id, "tenant": tenant, "op": op}
        if op not in (OP_QUERY, OP_MLGRAD):
            return {**base, "status": STATUS_NOT_FOUND,
                    "error": "unknown-op",
                    "reason": f"op must be one of {OP_QUERY!r}, "
                              f"{OP_MLGRAD!r}"}
        start = self._platform.begin_request(arrival)
        wait = start - arrival
        base["wait"] = wait
        limit = self.config.max_queue_wait
        if limit is not None and wait > limit:
            return {**base, "status": STATUS_UNAVAILABLE,
                    "error": "overloaded",
                    "reason": f"queued {wait:.3f}s > {limit:g}s"}
        if self._breakers_refusing(start):
            return {**base, "status": STATUS_UNAVAILABLE,
                    "error": "breaker-open",
                    "reason": "all agg-box circuit breakers are open"}
        tracer = get_tracer()
        span = tracer.begin(
            "serve.request", start, layer="serve", tenant=tenant, op=op,
            request=request_id, arrival=arrival, wait=wait,
        ) if tracer.enabled else 0
        try:
            response = self._dispatch(request, base, op, tenant,
                                      request_id, arrival)
        finally:
            if span:
                tracer.end(span, self._platform.clock)
        return response

    def _dispatch(self, request: Mapping[str, Any], base: Dict[str, Any],
                  op: str, tenant: str, request_id: str,
                  arrival: float) -> Dict[str, Any]:
        try:
            if op == OP_QUERY:
                partials = self._query_partials(request)
                outcome = self._platform.execute_request(
                    APP_QUERY, request_id, self._master_for(request),
                    partials, tenant=tenant)
                value = _encode_results(outcome.value)
            else:
                partials = self._mlgrad_partials(request)
                outcome = self._platform.execute_request(
                    APP_MLGRAD, request_id, self._master_for(request),
                    partials, tenant=tenant)
                value = list(outcome.value)
        except AdmissionNack as nack:
            policy = self.config.policy_for(tenant)
            return {**base, "status": STATUS_REJECTED,
                    "error": "admission-nack", "reason": nack.reason,
                    "retry_after": 1.0 / policy.rate}
        except SubtreeUnreachable as exc:
            # Before RuntimeError: a partition is unavailability, not
            # an internal error -- the fail-stop (no-policy) arm and
            # the nothing-reachable case both land here.
            return {**base, "status": STATUS_UNAVAILABLE,
                    "error": "partition", "reason": str(exc),
                    "missing_workers": list(exc.missing_workers),
                    "scopes": list(exc.scopes)}
        except (ValueError, KeyError, TypeError) as exc:
            return {**base, "status": STATUS_BAD_REQUEST,
                    "error": "bad-request", "reason": str(exc)}
        except RuntimeError as exc:
            return {**base, "status": STATUS_INTERNAL,
                    "error": "internal", "reason": str(exc)}
        latency = self._platform.clock - arrival
        response = {**base, "status": STATUS_OK, "value": value,
                    "latency": latency,
                    "boxes": len(set(outcome.boxes_used)),
                    "retries": len(outcome.events_of_kind("retry"))}
        hedges = len(outcome.events_of_kind("hedge"))
        if hedges:
            response["hedges"] = hedges
        completeness = outcome.completeness
        if completeness is not None and not completeness.exact:
            policy = self.config.policy_for(tenant)
            if completeness.fraction < policy.min_completeness:
                return {**base, "status": STATUS_UNAVAILABLE,
                        "error": "incomplete",
                        "reason": (
                            f"completeness {completeness.fraction:.2f} "
                            f"below tenant floor "
                            f"{policy.min_completeness:g}"),
                        "completeness": completeness.to_dict()}
            response["status"] = STATUS_PARTIAL
            response["completeness"] = completeness.to_dict()
        return response

    def _breakers_refusing(self, now: float) -> bool:
        """True when every deployed box's breaker refuses sends.

        ``allow`` also performs the open -> half-open transition, so a
        503 storm self-heals after the breaker reset timeout.
        """
        board = self._platform.breakers
        if board is None or not self._box_ids:
            return False
        states = board.states()
        if not all(box in states for box in self._box_ids):
            return False
        return not any(board.breaker(box).allow(now)
                       for box in self._box_ids)


def _encode_results(results: List[SearchResult]) -> List[List[float]]:
    """Search results as JSON-ready ``[doc_id, score]`` pairs."""
    return [[r.doc_id, r.score] for r in results]
