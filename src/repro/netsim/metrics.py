"""Metric helpers for simulation results.

The paper reports the 99th-percentile flow completion time (FCT),
normalised against the rack-level aggregation baseline, plus CDFs of FCT
and of per-link traffic.  These helpers compute those series from
:class:`repro.netsim.simulator.SimulationResult` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.simulator import SimulationResult
from repro.units import cdf_points, mean, percentile


@dataclass(frozen=True)
class FctSummary:
    """Summary statistics over a set of flow completion times."""

    count: int
    mean: float
    median: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, fcts: Sequence[float], context: str = "") -> "FctSummary":
        """Summary of ``fcts``; raises :class:`ValueError` when empty.

        ``context`` describes the filter that produced the (empty)
        selection, so the error names what did not match instead of
        the bare "no flows matched the filter" that used to crash
        tiny-scale / heavy-fault experiments without a clue.
        """
        if not fcts:
            detail = f" ({context})" if context else ""
            raise ValueError(f"no flows matched the filter{detail}")
        return cls(
            count=len(fcts),
            mean=mean(fcts),
            median=percentile(fcts, 50.0),
            p99=percentile(fcts, 99.0),
            maximum=max(fcts),
        )

    @classmethod
    def empty(cls) -> "FctSummary":
        """The explicit no-flows summary: count 0, NaN statistics.

        Experiments that may legitimately select nothing (tiny scales,
        heavy fault schedules) degrade to this instead of dying; NaN
        propagates visibly through derived columns.
        """
        nan = float("nan")
        return cls(count=0, mean=nan, median=nan, p99=nan, maximum=nan)


def _filter_context(result: SimulationResult,
                    kinds: Optional[Sequence[str]],
                    aggregatable: Optional[bool]) -> str:
    return (
        f"kinds={list(kinds) if kinds is not None else 'any'}, "
        f"aggregatable={'any' if aggregatable is None else aggregatable}, "
        f"simulated flows={len(result.records)}"
    )


def fct_summary(
    result: SimulationResult,
    kinds: Optional[Sequence[str]] = None,
    aggregatable: Optional[bool] = None,
    empty_ok: bool = False,
) -> FctSummary:
    """FCT summary over flows matching the filters.

    With ``empty_ok`` a selection that matches nothing returns
    :meth:`FctSummary.empty` instead of raising.
    """
    fcts = result.fcts(kinds=kinds, aggregatable=aggregatable)
    if not fcts and empty_ok:
        return FctSummary.empty()
    return FctSummary.of(
        fcts, context=_filter_context(result, kinds, aggregatable))


def relative_p99(
    result: SimulationResult,
    baseline: SimulationResult,
    aggregatable: Optional[bool] = None,
) -> float:
    """99th-pct FCT of ``result`` relative to ``baseline`` (paper's y-axis).

    Values below 1.0 mean ``result`` beats the baseline.
    """
    ours = fct_summary(result, aggregatable=aggregatable).p99
    base = fct_summary(baseline, aggregatable=aggregatable).p99
    # NaN (an empty baseline selection summarised with empty_ok
    # upstream) compares False against everything, so it would slip
    # past the <= 0 guard and silently poison every ratio downstream.
    if math.isnan(base):
        raise ValueError(
            "baseline p99 FCT is NaN; nothing to normalise "
            f"({_filter_context(baseline, None, aggregatable)})")
    if base <= 0:
        raise ValueError(
            "baseline p99 FCT is zero; nothing to normalise "
            f"({_filter_context(baseline, None, aggregatable)})")
    return ours / base


def fct_cdf(
    result: SimulationResult,
    kinds: Optional[Sequence[str]] = None,
    aggregatable: Optional[bool] = None,
) -> List[Tuple[float, float]]:
    """Empirical CDF of FCTs (Fig. 6 / Fig. 7 series)."""
    return cdf_points(result.fcts(kinds=kinds, aggregatable=aggregatable))


def link_traffic_cdf(result: SimulationResult) -> List[Tuple[float, float]]:
    """Empirical CDF of per-link carried bytes (Fig. 9 series).

    Only physical links are included; links that carried no traffic are
    kept (they are real points of the distribution).
    """
    return cdf_points(list(result.link_traffic(wire_only=True).values()))


def median_link_traffic(result: SimulationResult) -> float:
    """Median over physical links of bytes carried."""
    return percentile(list(result.link_traffic(wire_only=True).values()), 50.0)


def job_completion_summary(result: SimulationResult) -> Dict[str, float]:
    """Per-job completion times (used by strategy-level sanity checks)."""
    return result.job_completion_times()


def tier_traffic(result: SimulationResult) -> Dict[str, float]:
    """Bytes carried per topology tier (edge / tor-aggr / aggr-core /
    box links), from the link ids' naming convention.

    Useful for diagnosing *where* an aggregation strategy removes
    traffic (e.g. Fig. 12's deployment analysis).
    """
    tiers = {"edge": 0.0, "tor-aggr": 0.0, "aggr-core": 0.0, "box": 0.0}
    for link_id, nbytes in result.link_traffic(wire_only=True).items():
        src, _, dst = link_id.partition("->")
        ends = {src.split(":")[0], dst.split(":")[0]}
        if "box" in link_id:
            tiers["box"] += nbytes
        elif "host" in ends:
            tiers["edge"] += nbytes
        elif ends == {"tor", "aggr"}:
            tiers["tor-aggr"] += nbytes
        elif ends == {"aggr", "core"}:
            tiers["aggr-core"] += nbytes
    return tiers


def slowdowns(result: SimulationResult, network,
              kinds: Optional[Sequence[str]] = None) -> List[float]:
    """Per-flow slowdown: FCT divided by the flow's ideal solo FCT.

    The ideal is the transfer time the flow would see alone on its path
    (size / bottleneck capacity).  Slowdown 1.0 = uncontended; the
    distribution's tail captures how much sharing hurt -- a standard
    congestion metric alongside absolute FCT.  Flows with no path or no
    bytes are skipped (their ideal is zero).
    """
    out = []
    capacities = network.capacities()
    for record in result.records.values():
        spec = record.spec
        if kinds is not None and spec.kind not in kinds:
            continue
        if not spec.path or spec.size <= 0:
            continue
        bottleneck = min(capacities[link] for link in spec.path)
        if spec.rate_cap is not None:
            bottleneck = min(bottleneck, spec.rate_cap)
        if bottleneck <= 0:
            continue  # link downed post-run; no meaningful ideal
        ideal = spec.size / bottleneck
        if ideal <= 0:
            continue
        out.append(record.fct / ideal)
    return out


def slowdown_summary(result: SimulationResult, network,
                     kinds: Optional[Sequence[str]] = None,
                     empty_ok: bool = False) -> FctSummary:
    """Summary statistics over per-flow slowdowns."""
    values = slowdowns(result, network, kinds=kinds)
    if not values and empty_ok:
        return FctSummary.empty()
    return FctSummary.of(
        values,
        context=f"slowdowns, kinds="
                f"{list(kinds) if kinds is not None else 'any'}, "
                f"simulated flows={len(result.records)}")
