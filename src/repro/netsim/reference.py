"""A deliberately-simple reference simulator for cross-validation.

:class:`repro.netsim.simulator.FlowSim` advances between exact events;
this module re-simulates the same flow set by brute force: fixed small
time steps, recomputing max-min rates every step and draining bytes.
It is orders of magnitude slower and slightly inaccurate at step
granularity -- which is the point: two implementations with different
failure modes should agree within the step error, and the property
tests assert they do.

Only used by tests; never by the experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.netsim.fairness import max_min_rates
from repro.netsim.network import Network
from repro.netsim.simulator import FlowSpec


def simulate_reference(
    network: Network,
    specs: Sequence[FlowSpec],
    time_step: float,
    max_time: float = 1e6,
) -> Dict[str, Tuple[float, float]]:
    """Brute-force simulation; returns flow id -> (admitted, drained).

    Semantics mirror :class:`FlowSim`: a flow is admitted when its start
    time has passed and all its children have drained; active flows
    share bandwidth max-min fairly; zero-size/empty-path flows finish on
    admission.  Completions are detected at step boundaries, so drain
    times are accurate to within one ``time_step``.
    """
    if time_step <= 0:
        raise ValueError("time_step must be positive")
    capacities = network.capacities()
    by_id = {spec.flow_id: spec for spec in specs}
    remaining: Dict[str, float] = {}
    admitted: Dict[str, float] = {}
    drained: Dict[str, float] = {}

    def ready(spec: FlowSpec, now: float) -> bool:
        if spec.flow_id in admitted:
            return False
        if now < spec.start_time - 1e-12:
            return False
        return all(child in drained for child in spec.children)

    now = 0.0
    while len(drained) < len(by_id):
        if now > max_time:
            raise RuntimeError("reference simulation exceeded max_time")
        # Admit (repeat until stable: zero-size flows cascade).
        progress = True
        while progress:
            progress = False
            for spec in by_id.values():
                if not ready(spec, now):
                    continue
                admitted[spec.flow_id] = max(now, spec.start_time)
                if spec.size <= 0 or (not spec.path
                                      and spec.rate_cap is None):
                    drained[spec.flow_id] = admitted[spec.flow_id]
                else:
                    remaining[spec.flow_id] = spec.size
                progress = True

        if not remaining:
            # Idle until the next start time.
            future = [
                spec.start_time for spec in by_id.values()
                if spec.flow_id not in admitted
                and spec.start_time > now
            ]
            if not future:
                if len(drained) < len(by_id):
                    # Remaining flows wait on children that finish at
                    # exactly `now`; loop once more.
                    now += time_step
                continue
            now = min(future)
            continue

        rates = max_min_rates(
            {fid: by_id[fid].path for fid in remaining},
            capacities,
            {fid: by_id[fid].rate_cap for fid in remaining
             if by_id[fid].rate_cap is not None},
        )
        now += time_step
        finished: List[str] = []
        for flow_id in remaining:
            rate = rates[flow_id]
            if rate == float("inf"):
                remaining[flow_id] = 0.0
            else:
                remaining[flow_id] -= rate * time_step
            if remaining[flow_id] <= 1e-9:
                finished.append(flow_id)
        for flow_id in finished:
            del remaining[flow_id]
            drained[flow_id] = now

    return {
        flow_id: (admitted[flow_id], drained[flow_id])
        for flow_id in by_id
    }
