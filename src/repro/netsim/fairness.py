"""Exact max-min fair rate allocation (progressive filling).

Given a set of flows, each traversing a list of capacitated links and
optionally carrying an individual rate cap, the solver raises all rates in
lock-step until a link (or a cap) saturates, freezes the affected flows,
and repeats.  The result is the unique max-min fair allocation -- the
steady state that per-flow-fair TCP converges to, which is what the
paper's packet-level simulator models.

Two implementations are provided:

- :func:`max_min_rates_py` -- a readable pure-Python reference;
- :func:`max_min_rates_np` -- a vectorised numpy version used in the hot
  path of :class:`repro.netsim.simulator.FlowSim`.

:func:`max_min_rates` picks numpy when available.  The two are
cross-checked by property-based tests.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

try:  # numpy is a hard dependency of the benchmarks, soft for the library
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Flows at or below this rate-gap are considered frozen at their cap.
_EPS = 1e-12


def max_min_rates(
    flow_links: Mapping[str, Sequence[str]],
    capacities: Mapping[str, float],
    rate_caps: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Max-min fair rates for ``flow_links`` over ``capacities``.

    Args:
        flow_links: flow id -> list of link ids it traverses.  A flow with
            an empty path is unconstrained by links (its rate is its cap,
            or ``float('inf')`` with no cap).
        capacities: link id -> capacity in bytes/second.  Every link
            referenced by a flow must be present.
        rate_caps: optional flow id -> maximum rate.

    Returns:
        flow id -> allocated rate (bytes/second).
    """
    if _np is not None:
        return max_min_rates_np(flow_links, capacities, rate_caps)
    return max_min_rates_py(flow_links, capacities, rate_caps)


def max_min_rates_py(
    flow_links: Mapping[str, Sequence[str]],
    capacities: Mapping[str, float],
    rate_caps: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Pure-Python progressive filling (reference implementation)."""
    caps = dict(rate_caps or {})
    rates: Dict[str, float] = {}
    active: Dict[str, Sequence[str]] = {}
    for flow_id, links in flow_links.items():
        for link in links:
            if link not in capacities:
                raise KeyError(f"flow {flow_id!r} uses unknown link {link!r}")
        rates[flow_id] = 0.0
        if not links and flow_id not in caps:
            rates[flow_id] = float("inf")
        else:
            active[flow_id] = tuple(links)

    remaining = dict(capacities)
    link_users: Dict[str, set] = {}
    for flow_id, links in active.items():
        for link in links:
            link_users.setdefault(link, set()).add(flow_id)

    while active:
        # How much can every active flow's rate still rise in lock-step?
        headrooms = {
            link: remaining[link] / len(users)
            for link, users in link_users.items()
            if users
        }
        gaps = {
            flow_id: caps[flow_id] - rates[flow_id]
            for flow_id in active
            if flow_id in caps
        }
        delta = min(
            min(headrooms.values(), default=float("inf")),
            min(gaps.values(), default=float("inf")),
        )
        tolerance = delta * 1e-9 + _EPS
        bottleneck_links = [
            link for link, headroom in headrooms.items()
            if headroom <= delta + tolerance
        ]
        capped_flows = [
            flow_id for flow_id, gap in gaps.items() if gap <= delta + tolerance
        ]
        if delta == float("inf"):
            # Only capless, linkless flows remain (cannot happen given the
            # construction above) -- guard against infinite loops anyway.
            for flow_id in active:
                rates[flow_id] = float("inf")
            break

        delta = max(delta, 0.0)
        for flow_id in active:
            rates[flow_id] += delta
        for link, users in link_users.items():
            remaining[link] -= delta * len(users)
            if remaining[link] < 0.0:
                remaining[link] = 0.0

        frozen = set(capped_flows)
        for link in bottleneck_links:
            frozen.update(link_users.get(link, ()))
        if not frozen:
            # Numerical corner case: nothing saturated within tolerance.
            # Freeze the flows on the currently tightest link to guarantee
            # progress (cannot recur forever: each round removes flows).
            tightest = min(
                (l for l in link_users if link_users[l]),
                key=lambda l: remaining[l],
                default=None,
            )
            if tightest is None:
                break
            frozen.update(link_users[tightest])
        for flow_id in frozen:
            links = active.pop(flow_id, ())
            for link in links:
                link_users[link].discard(flow_id)
    return rates


def max_min_rates_np(
    flow_links: Mapping[str, Sequence[str]],
    capacities: Mapping[str, float],
    rate_caps: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Vectorised progressive filling used by the simulator hot path."""
    if _np is None:  # pragma: no cover
        raise RuntimeError("numpy is not available")
    flow_ids = list(flow_links)
    n_flows = len(flow_ids)
    if n_flows == 0:
        return {}
    link_ids = list(capacities)
    link_index = {link: i for i, link in enumerate(link_ids)}

    incidence_flow = []
    incidence_link = []
    for fi, flow_id in enumerate(flow_ids):
        # A path that repeats a link charges it once (set semantics),
        # matching the pure-Python implementation.
        for link in set(flow_links[flow_id]):
            if link not in link_index:
                raise KeyError(f"flow {flow_id!r} uses unknown link {link!r}")
            incidence_flow.append(fi)
            incidence_link.append(link_index[link])
    inc_flow = _np.asarray(incidence_flow, dtype=_np.int64)
    inc_link = _np.asarray(incidence_link, dtype=_np.int64)

    remaining = _np.asarray([capacities[l] for l in link_ids], dtype=_np.float64)
    capacity_arr = remaining.copy()
    rates = _np.zeros(n_flows, dtype=_np.float64)
    caps = _np.full(n_flows, _np.inf, dtype=_np.float64)
    if rate_caps:
        flow_index = {flow_id: i for i, flow_id in enumerate(flow_ids)}
        for flow_id, cap in rate_caps.items():
            if flow_id in flow_index:
                caps[flow_index[flow_id]] = cap
    # Flows with no links and no cap get infinite rate immediately.
    has_links = _np.zeros(n_flows, dtype=bool)
    if len(inc_flow):
        has_links[_np.unique(inc_flow)] = True
    active = has_links | _np.isfinite(caps)
    rates[~active] = _np.inf

    while active.any():
        active_edges = active[inc_flow]
        users = _np.zeros(len(link_ids), dtype=_np.float64)
        if active_edges.any():
            _np.add.at(users, inc_link[active_edges], 1.0)
        with _np.errstate(divide="ignore", invalid="ignore"):
            headroom = _np.where(users > 0, remaining / users, _np.inf)
        delta_links = headroom.min() if len(headroom) else _np.inf
        gaps = _np.where(active, caps - rates, _np.inf)
        delta_caps = gaps.min()
        delta = min(delta_links, delta_caps)
        if not _np.isfinite(delta):
            rates[active] = _np.inf
            break
        delta = max(delta, 0.0)

        rates[active] += delta
        remaining -= delta * users
        _np.maximum(remaining, 0.0, out=remaining)

        saturated_links = (users > 0) & (remaining <= 1e-9 * capacity_arr)
        freeze = _np.zeros(n_flows, dtype=bool)
        if saturated_links.any():
            sat_edge = saturated_links[inc_link] & active_edges
            freeze[inc_flow[sat_edge]] = True
        finite_caps = _np.isfinite(caps)
        at_cap = _np.zeros(n_flows, dtype=bool)
        at_cap[finite_caps] = (caps[finite_caps] - rates[finite_caps]) <= (
            1e-9 * caps[finite_caps] + _EPS
        )
        freeze |= active & at_cap
        freeze &= active
        if not freeze.any():
            # Numerical guard: freeze the flows on the tightest link.
            if saturated_links.any() or not active_edges.any():
                rates[active] = _np.where(
                    _np.isfinite(caps[active]), caps[active], rates[active]
                )
                break
            tightest = int(_np.argmin(headroom))
            sat_edge = (inc_link == tightest) & active_edges
            freeze[inc_flow[sat_edge]] = True
        active &= ~freeze

    return {flow_id: float(rates[i]) for i, flow_id in enumerate(flow_ids)}
