"""A minimal discrete-event engine.

The flow simulator has its own specialised loop (rates change globally at
each event), but the testbed emulator and the agg-box scheduler need a
classic event queue: timestamped callbacks executed in order, with a
stable tie-break so runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventQueue:
    """Priority queue of ``(time, callback)`` events with a virtual clock.

    Events scheduled for the same time fire in insertion order.  The clock
    only moves forward; scheduling an event in the past raises.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._counter = itertools.count()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def __len__(self) -> int:
        # _cancelled may hold tokens that already ran; count what is real.
        return sum(1 for _, token, _ in self._heap
                   if token not in self._cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns a token usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when}, clock already at {self._now}"
            )
        token = next(self._counter)
        heapq.heappush(self._heap, (when, token, callback))
        return token

    def cancel(self, token: int) -> None:
        """Cancel a scheduled event (no-op if it already ran)."""
        self._cancelled.add(token)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        when, _token, callback = heapq.heappop(self._heap)
        self._now = when
        callback()
        return True

    def step_batch(self) -> int:
        """Run every event stamped with the next timestamp, as one batch.

        Coalesces simultaneous events: the clock advances once and all
        callbacks scheduled at that time run in insertion order --
        including events a callback schedules *at* the (now current)
        batch time.  Returns the number executed (0 when idle).
        """
        self._drop_cancelled()
        if not self._heap:
            return 0
        when = self._heap[0][0]
        executed = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0][0] > when:
                return executed
            _, _token, callback = heapq.heappop(self._heap)
            self._now = when
            callback()
            executed += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the number of events executed.  When ``until`` is given the
        clock is advanced to exactly ``until`` even if no event fires there.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, token, _ = heapq.heappop(self._heap)
            self._cancelled.discard(token)
