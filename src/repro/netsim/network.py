"""Capacitated directed links and the network container.

Links are identified by string ids.  By convention the topology builders
name them ``"<src>-><dst>"``; *virtual* links (e.g. the processing
capacity of an agg box) are named ``"proc:<box>"`` and behave exactly like
wire links as far as the fairness solver is concerned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional


@dataclass
class Link:
    """One directed capacitated link.

    Attributes:
        link_id: unique id, e.g. ``"host:3->tor:0"``.
        capacity: bytes per second.
        src: id of the upstream node ("" for virtual links).
        dst: id of the downstream node ("" for virtual links).
        virtual: True for non-wire constraints such as agg-box processing.
        bytes_carried: cumulative bytes accounted onto this link.
    """

    link_id: str
    capacity: float
    src: str = ""
    dst: str = ""
    virtual: bool = False
    bytes_carried: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id!r} needs capacity > 0")

    @property
    def is_down(self) -> bool:
        """True when the link was administratively downed (capacity 0)."""
        return self.capacity <= 0.0


class Network:
    """A set of named links, with per-link traffic accounting."""

    def __init__(self, links: Optional[Iterable[Link]] = None) -> None:
        self._links: Dict[str, Link] = {}
        for link in links or ():
            self.add_link(link)

    def add_link(self, link: Link) -> None:
        if link.link_id in self._links:
            raise ValueError(f"duplicate link id {link.link_id!r}")
        self._links[link.link_id] = link

    def __contains__(self, link_id: str) -> bool:
        return link_id in self._links

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links.values())

    def __len__(self) -> int:
        return len(self._links)

    def link(self, link_id: str) -> Link:
        return self._links[link_id]

    def capacities(self) -> Dict[str, float]:
        """Link id -> capacity, in the shape the fairness solver wants."""
        return {link_id: link.capacity for link_id, link in self._links.items()}

    def set_capacity(self, link_id: str, capacity: float) -> None:
        """Change a link's capacity in place (0 = down).

        Links are built with positive capacity; this is the only way a
        link reaches 0, which marks it failed (:attr:`Link.is_down`).
        Note :class:`repro.netsim.simulator.FlowSim` snapshots
        capacities at ``run()`` -- use its capacity *events* to change
        capacity mid-simulation.
        """
        if capacity < 0:
            raise ValueError(f"link {link_id!r} capacity must be >= 0")
        self._links[link_id].capacity = capacity

    def account(self, link_id: str, nbytes: float) -> None:
        """Record ``nbytes`` carried by ``link_id`` (for Fig. 9 metrics)."""
        self._links[link_id].bytes_carried += nbytes

    def reset_accounting(self) -> None:
        for link in self._links.values():
            link.bytes_carried = 0.0

    def wire_links(self) -> Iterator[Link]:
        """Iterate physical links only (excludes processing constraints)."""
        return (link for link in self._links.values() if not link.virtual)
