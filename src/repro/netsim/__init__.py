"""Flow-level discrete-event network simulator.

This package replaces the paper's OMNeT++ packet-level simulator.  TCP
max-min flow fairness -- which the paper's simulator implements at packet
granularity -- is computed here exactly with a progressive-filling
(water-filling) solver, re-run at every flow arrival or completion event.

Public entry points:

- :class:`repro.netsim.network.Network` -- directed capacitated links;
- :class:`repro.netsim.simulator.FlowSim` -- the simulator itself;
- :class:`repro.netsim.simulator.FlowSpec` -- one flow (with optional
  streaming dependencies, used to model on-path aggregation trees);
- :func:`repro.netsim.fairness.max_min_rates` -- standalone solver.
"""

from repro.netsim.engine import EventQueue
from repro.netsim.fairness import max_min_rates
from repro.netsim.network import Link, Network
from repro.netsim.routing import EcmpRouter
from repro.netsim.simulator import FlowSim, FlowSpec, SimulationResult

__all__ = [
    "EventQueue",
    "max_min_rates",
    "Link",
    "Network",
    "EcmpRouter",
    "FlowSim",
    "FlowSpec",
    "SimulationResult",
]
