"""Vectorized max-min fair rate allocation (the numpy backend).

:class:`VectorizedMaxMin` is a drop-in alternative to
:class:`repro.netsim.incremental.IncrementalMaxMin`: the same mutation
API (``add_flow`` / ``remove_flow`` / ``reroute`` / ``set_capacity``),
the same :meth:`rates` contract and the same
:class:`~repro.netsim.incremental.SolverStats` counters, but with the
progressive filling executed as array operations over link x flow
incidence arrays instead of per-flow Python objects.

**Data layout.**  Flows live in monotonically allocated *slots*; slot 0
is a reserved sink so the edge arrays never need renumbering when a
flow is removed.  The link x flow incidence is a CSR-style pair of
append-only index arrays (``edge_flow[i]`` traverses ``edge_link[i]``)
with a contiguous ``[estart, eend)`` range per slot; removing a flow
just repoints its edges at the sink slot (whose rate is pinned to 0, so
dead edges contribute nothing to any reduction) and the arrays are
compacted once dead edges outnumber live ones.  Per-link state is one
capacity vector plus a user-count vector, both maintained
incrementally.

**Warm-start solve.**  A solve first builds the exact *cascade region*
-- the set of flows whose rates the pending mutations can change --
from the perturbed links outward (see :meth:`_build_region`): each
link admits only the flows at or above a sound per-link floor (the
``min`` of its recorded water level and a single-link water-fill
level), and admissions re-queue the admitted flows' other links until
the region reaches a fixpoint.  Everything outside the region keeps
its cached rate and acts as a frozen capacity debit.  The region then
refills by progressive filling -- the dict-based heap kernel for
typical small regions, the lock-step array sweep for very large ones
-- exactly as :func:`repro.netsim.fairness.max_min_rates_py` would;
property tests cross-check the three solvers against each other to
within 1e-9.

numpy is a soft dependency: importing this module without numpy leaves
:data:`HAVE_NUMPY` false and :func:`make_solver` falls back to the
pure-Python incremental solver (the ``solver="auto"`` default on
:class:`repro.netsim.simulator.FlowSim`).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netsim.incremental import (
    IncrementalMaxMin,
    SolverStats,
    _THRESHOLD_SLACK,
)

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the numpy backend is importable in this interpreter.
HAVE_NUMPY = _np is not None

#: Valid values for the ``solver=`` knob on FlowSim / simulate().
SOLVER_BACKENDS = ("auto", "vectorized", "incremental")

_INF = float("inf")

#: Compact the edge arrays once this many dead edges accumulate (and
#: they outnumber the live ones); keeps reroute/stall storms from
#: growing every per-solve reduction without paying a rebuild per event.
_COMPACT_MIN_DEAD = 256

#: Re-solve regions at or below this many flows refill with the heap
#: kernel; larger regions use the lock-step array sweep.  Measured
#: crossover: per-round numpy dispatch (~20 array ops over full-length
#: arrays) outweighs the per-freeze Python cost until regions reach
#: about a thousand flows.
_LOCKSTEP_MIN_REGION = 1024


def make_solver(capacities: Mapping[str, float], backend: str = "auto"):
    """Build a max-min solver for ``capacities``.

    ``backend`` is the ``solver=`` knob: ``"vectorized"`` requires
    numpy, ``"incremental"`` is the pure-Python solver, and ``"auto"``
    (the default) picks the vectorized backend when numpy is importable
    and falls back to the incremental solver otherwise.
    """
    if backend == "auto":
        backend = "vectorized" if HAVE_NUMPY else "incremental"
    if backend == "incremental":
        return IncrementalMaxMin(capacities)
    if backend == "vectorized":
        return VectorizedMaxMin(capacities)
    raise ValueError(
        f"unknown solver backend {backend!r}; choose from {SOLVER_BACKENDS}")


class VectorizedMaxMin:
    """Max-min fair rates over a mutable flow set, solved with numpy.

    Same contract as :class:`IncrementalMaxMin`; additionally exposes
    the slot/array view the simulator's vectorized epoch loop uses:
    :meth:`add_flow` returns the flow's slot index and
    :meth:`rates_array` returns the (solved) per-slot rate vector.
    """

    def __init__(self, capacities: Mapping[str, float]) -> None:
        if _np is None:
            raise RuntimeError(
                "VectorizedMaxMin requires numpy (pip install .[fast]); "
                "use solver='incremental' or 'auto' for the pure-Python "
                "fallback")
        self._link_index: Dict[str, int] = {}
        caps: List[float] = []
        for link_id, cap in capacities.items():
            if cap < 0:
                raise ValueError(f"link {link_id!r} capacity must be >= 0")
            self._link_index[link_id] = len(caps)
            caps.append(cap)
        nlinks = len(caps)
        self._nlinks = nlinks
        self._cap = _np.asarray(caps, dtype=_np.float64)
        #: Python mirror of ``_cap`` (scalar reads during region BFS).
        self._cap_list: List[float] = list(caps)
        #: Per-link allocated-rate sum as of the last solve (removals
        #: since are subtracted; fresh flows are not yet included).
        self._lalloc = _np.zeros(nlinks, dtype=_np.float64)
        #: Per-link saturation water level from the last solve; +inf
        #: for links that bottleneck no flow.  A link's level rise can
        #: only lift flows frozen exactly at this level.
        self._llevel: List[float] = [_INF] * nlinks
        #: Per-link live user slots (the region BFS scans these).
        self._lflows: List[set] = [set() for _ in range(nlinks)]
        #: Links perturbed since the last solve (removals leaving the
        #: link, capacity changes) -- the region BFS seeds.
        self._seeds: set = set()
        #: Seeds whose *capacity* changed (the only k==0 visits whose
        #: level can drop rather than rise; see :meth:`_build_region`).
        self._cap_seeds: set = set()
        #: Persistent per-link fill scratch (re-initialised for each
        #: solve's touched links; list indexing beats per-solve dicts).
        self._f_rem: List[float] = [0.0] * nlinks
        self._f_mark: List[float] = [0.0] * nlinks
        self._f_ver: List[int] = [0] * nlinks
        self._f_rising: List[int] = [0] * nlinks

        # Slot 0 is the reserved sink for dead edges: inactive, rate 0.
        n0 = 16
        self._nslots = 1
        self._rate = _np.zeros(n0, dtype=_np.float64)
        #: Python mirror of ``_rate`` (scalar reads during region BFS).
        self._rlist: List[float] = [0.0] * n0
        self._fcap = _np.full(n0, _INF, dtype=_np.float64)
        self._estart = _np.zeros(n0, dtype=_np.int64)
        self._eend = _np.zeros(n0, dtype=_np.int64)

        e0 = 64
        self._nedges = 0
        self._dead_edges = 0
        self._eflow = _np.zeros(e0, dtype=_np.int64)
        self._elink = _np.zeros(e0, dtype=_np.int64)

        #: Per-slot link-index tuples (the Python-side view of the CSR
        #: ranges); the heap fill kernel walks these instead of slicing
        #: the edge arrays.
        self._slinks: List[Tuple[int, ...]] = [()]

        self._flows: Dict[str, int] = {}
        #: Slots added since the last solve (never assigned a rate); a
        #: remove of a fresh slot cancels the pending add outright.
        self._fresh: set = set()
        #: Count of non-cancellable pending perturbations.
        self._ndirty = 0
        self._rates_dict: Optional[Dict[str, float]] = None
        self.stats = SolverStats()

    # -- mutation ----------------------------------------------------------

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def _grow_slots(self, need: int) -> None:
        n = len(self._rate)
        if need <= n:
            return
        new = max(need, 2 * n)
        for name in ("_rate", "_fcap", "_estart", "_eend"):
            old = getattr(self, name)
            if name == "_fcap":
                arr = _np.full(new, _INF, dtype=old.dtype)
            else:
                arr = _np.zeros(new, dtype=old.dtype)
            arr[:n] = old
            setattr(self, name, arr)
        self._rlist.extend([0.0] * (new - n))

    def _grow_edges(self, need: int) -> None:
        n = len(self._eflow)
        if need <= n:
            return
        new = max(need, 2 * n)
        for name in ("_eflow", "_elink"):
            old = getattr(self, name)
            arr = _np.zeros(new, dtype=old.dtype)
            arr[:n] = old
            setattr(self, name, arr)

    def add_flow(self, flow_id: str, links: Sequence[str],
                 rate_cap: Optional[float] = None) -> int:
        """Add a flow traversing ``links`` (set semantics); returns the
        flow's slot index for array-side bookkeeping."""
        if flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow_id!r}")
        index = self._link_index
        try:
            link_ids = tuple({index[l]: None for l in links})
        except KeyError as exc:
            raise KeyError(
                f"flow {flow_id!r} uses unknown link {exc.args[0]!r}"
            ) from None
        slot = self._nslots
        self._grow_slots(slot + 1)
        self._nslots = slot + 1
        # +inf is the fresh sentinel: the flow is always part of the
        # next solve's re-solve region.
        self._rate[slot] = _INF
        self._rlist[slot] = _INF
        self._fcap[slot] = rate_cap if rate_cap is not None else _INF
        ne = len(link_ids)
        e0 = self._nedges
        self._grow_edges(e0 + ne)
        self._estart[slot] = e0
        self._eend[slot] = e0 + ne
        if ne:
            lflows = self._lflows
            for li in link_ids:
                lflows[li].add(slot)
            self._eflow[e0:e0 + ne] = slot
            self._elink[e0:e0 + ne] = _np.asarray(link_ids,
                                                  dtype=_np.int64)
        self._nedges = e0 + ne
        self._slinks.append(link_ids)
        self._flows[flow_id] = slot
        self._fresh.add(slot)
        self._rates_dict = None
        return slot

    def remove_flow(self, flow_id: str) -> None:
        """Remove a flow; nothing below its old rate is disturbed.  An
        un-add (remove of a flow added since the last solve) cancels
        cleanly: with no other pending perturbation the next
        :meth:`rates` call is a cache hit."""
        slot = self._flows.pop(flow_id)
        s = int(self._estart[slot])
        e = int(self._eend[slot])
        fresh = slot in self._fresh
        links = self._slinks[slot]
        lflows = self._lflows
        for li in links:
            lflows[li].discard(slot)
        if e > s:
            if not fresh:
                # The departed rate leaves the allocation sums at once;
                # the links become region seeds (their levels can rise).
                self._lalloc[self._elink[s:e]] -= self._rate[slot]
            self._eflow[s:e] = 0
            self._dead_edges += e - s
        self._slinks[slot] = ()
        if fresh:
            self._fresh.discard(slot)
            self._rate[slot] = 0.0
            self._rlist[slot] = 0.0
        else:
            self._seeds.update(links)
            self._rate[slot] = 0.0
            self._rlist[slot] = 0.0
            self._ndirty += 1
            self._rates_dict = None
        if self._dead_edges > _COMPACT_MIN_DEAD \
                and self._dead_edges > self._nedges - self._dead_edges:
            self._compact_edges()

    def reroute(self, flow_id: str, links: Sequence[str],
                rate_cap: Optional[float] = None) -> None:
        """Move a flow onto a new path; a reroute onto the identical
        link set with an unchanged rate cap is a pure no-op."""
        slot = self._flows.get(flow_id)
        if slot is None:
            raise KeyError(flow_id)
        index = self._link_index
        try:
            new_links = tuple({index[l]: None for l in links})
        except KeyError as exc:
            raise KeyError(
                f"flow {flow_id!r} uses unknown link {exc.args[0]!r}"
            ) from None
        new_cap = rate_cap if rate_cap is not None else _INF
        if new_cap == self._fcap[slot] and new_links == self._slinks[slot]:
            return
        # The slot dance is remove+add, but the water-level bound it
        # produces matches the deduped incremental reroute exactly: the
        # old rate plus the new links' even splits.
        self.remove_flow(flow_id)
        self.add_flow(flow_id, links, rate_cap=rate_cap)

    def set_capacity(self, link_id: str, capacity: float) -> None:
        """Change a link's capacity (0 = down); same-value is a no-op."""
        if capacity < 0:
            raise ValueError(f"link {link_id!r} capacity must be >= 0")
        li = self._link_index.get(link_id)
        if li is None:
            raise KeyError(f"unknown link {link_id!r}")
        old = float(self._cap[li])
        if old == capacity:
            return
        self._cap[li] = capacity
        self._cap_list[li] = capacity
        if self._lflows[li]:
            self._seeds.add(li)
            self._cap_seeds.add(li)
            self._ndirty += 1
            self._rates_dict = None

    def _compact_edges(self) -> None:
        """Drop dead (sink-pointed) edges, preserving slot ranges."""
        E = self._nedges
        mask = self._eflow[:E] != 0
        prefix = _np.zeros(E + 1, dtype=_np.int64)
        _np.cumsum(mask, out=prefix[1:])
        live = int(prefix[E])
        # Boolean fancy indexing copies, so in-place front-packing is safe.
        self._eflow[:live] = self._eflow[:E][mask]
        self._elink[:live] = self._elink[:E][mask]
        S = self._nslots
        self._estart[:S] = prefix[self._estart[:S]]
        self._eend[:S] = prefix[self._eend[:S]]
        self._nedges = live
        self._dead_edges = 0

    # -- solving -----------------------------------------------------------

    def rates(self) -> Mapping[str, float]:
        """The max-min allocation for the current flow set (a dict; do
        not mutate -- it is rebuilt after each solve)."""
        self._solve()
        memo = self._rates_dict
        if memo is None:
            rate = self._rate
            memo = {fid: float(rate[slot])
                    for fid, slot in self._flows.items()}
            self._rates_dict = memo
        return memo

    def rate(self, flow_id: str) -> float:
        return self.rates()[flow_id]

    def rates_array(self):
        """Solve if needed and return the per-slot rate vector (numpy
        float64, indexed by the slots :meth:`add_flow` returned; slots
        of removed flows read 0).  Treat as read-only."""
        self._solve()
        return self._rate

    def slot(self, flow_id: str) -> int:
        return self._flows[flow_id]

    @property
    def nslots(self) -> int:
        """Allocated slot count (every live slot index is below it)."""
        return self._nslots

    # -- internals ---------------------------------------------------------

    def _solve(self) -> None:
        if not self._fresh and not self._ndirty:
            self.stats.cache_hits += 1
            return
        self.stats.solves += 1
        slots, lflows, contrib = self._build_region()
        region = len(slots)
        if not region:
            # The perturbations provably changed no allocation (e.g. a
            # flow left a link that bottlenecks nobody).
            self._finish_solve(0)
            return

        slinks = self._slinks
        fcap = self._fcap
        rlist = self._rlist
        linked: List[int] = []
        for s in slots:
            if slinks[s]:
                linked.append(s)
            else:
                # Flows with no links freeze immediately at cap (or
                # +inf); only fresh flows can reach the region linkless.
                r = float(fcap[s])
                self._rate[s] = r
                rlist[s] = r
        if linked:
            if len(linked) <= _LOCKSTEP_MIN_REGION:
                self._fill_heap(linked, lflows, contrib)
            else:
                self._fill_lockstep(linked)
        self._finish_solve(region)

    def _build_region(self) -> List[int]:
        """Slots whose rates the pending perturbations can change.

        A worklist closure with sound per-link admission floors.  A
        link's allocation changes either because its level *rises*
        (capacity freed: only flows frozen exactly at its recorded
        water level ``_llevel`` can lift) or because it *drops* (new
        pressure: in the new solution every user of a saturated link
        sits at or below its level, and with the non-region users
        provably frozen the link cannot saturate below the single-link
        water-fill level ``_sat_level`` computed with the admitted
        region users as unleashed risers).  ``min`` of the two floors
        is therefore sound in both directions; admitting a user can
        only lower a link's drop-floor, so links re-enter the worklist
        until the region reaches a fixpoint.  Flows strictly below a
        link's floor keep their rates exactly -- the same warm-start
        argument as the incremental solver's global threshold, applied
        per link, which keeps regions near the true disturbance size.

        Returns ``(slots, region_users, contrib)``: the sorted region,
        plus -- built here as flows are admitted, so the fill kernel
        needs no second pass -- the region's users per touched link and
        each touched link's sum of region old (finite) rates.
        """
        rlist = self._rlist
        llevel = self._llevel
        lflows = self._lflows
        slinks = self._slinks
        cap_list = self._cap_list
        cap_seeds = self._cap_seeds
        region = set(self._fresh)
        #: Region users per link / their old-rate sums (fresh flows
        #: have no old rate and contribute nothing).
        adm: Dict[int, List[int]] = {}
        contrib: Dict[int, float] = {}
        queue: List[int] = []
        inq = set()
        for s in self._fresh:
            for li in slinks[s]:
                a = adm.get(li)
                if a is None:
                    adm[li] = [s]
                    contrib[li] = 0.0
                    inq.add(li)
                    queue.append(li)
                else:
                    a.append(s)
        for li in self._seeds:
            if li not in inq:
                inq.add(li)
                queue.append(li)
        #: Candidate memo: users of a visited link not yet in the
        #: region.  Flows only ever move candidate -> region, so a
        #: re-visit rescan of the previous candidates is complete --
        #: heavily-shared links are scanned in full only once.
        part: Dict[int, List[int]] = {}
        qi = 0
        while qi < len(queue):
            li = queue[qi]
            qi += 1
            inq.discard(li)
            prev = part.get(li)
            if prev is None:
                prev = lflows[li]
            cand = [s for s in prev if s not in region]
            part[li] = cand
            if not cand:
                continue
            k = len(lflows[li]) - len(cand)
            floor = llevel[li] * _THRESHOLD_SLACK
            if k or li in cap_seeds:
                # The link's pressure may have grown (admitted risers,
                # a capacity cut), so its level can also *drop* -- but
                # never below the even split ``cap / (k + n)``.  Only
                # candidates between that bound and the recorded level
                # depend on the exact water-fill level; skip it when
                # none are.  A ``k == 0`` visit of a non-capacity seed
                # has strictly *lost* load, so its level cannot drop at
                # all and the recorded-level floor alone is sound.
                lb = cap_list[li] / (k + len(cand)) * _THRESHOLD_SLACK
                if lb < floor:
                    for s in cand:
                        if lb <= rlist[s] < floor:
                            sat = self._sat_level(li, cand, k) \
                                * _THRESHOLD_SLACK
                            if sat < floor:
                                floor = sat
                            break
            for s in cand:
                r = rlist[s]
                if r >= floor:
                    region.add(s)
                    back = r if r != _INF else 0.0
                    for m in slinks[s]:
                        a = adm.get(m)
                        if a is None:
                            adm[m] = [s]
                            contrib[m] = back
                        else:
                            a.append(s)
                            contrib[m] += back
                        if m not in inq:
                            inq.add(m)
                            queue.append(m)
        return sorted(region), adm, contrib

    def _sat_level(self, li: int, env_slots: List[int], k: int) -> float:
        """Lowest level link ``li`` can saturate at, given ``k`` region
        users rising in lockstep and ``env_slots`` frozen at their
        current rates (single-link water-fill; +inf when it cannot
        saturate)."""
        cap = self._cap_list[li]
        rlist = self._rlist
        env = sorted(rlist[s] for s in env_slots)
        pre = 0.0
        n = len(env)
        for j, r in enumerate(env):
            lam = (cap - pre) / (k + n - j)
            if lam <= r:
                return lam if lam > 0.0 else 0.0
            pre += r
        if k == 0:
            return _INF
        lam = (cap - pre) / k
        return lam if lam > 0.0 else 0.0

    def _fill_lockstep(self, linked: List[int]) -> None:
        """Lock-step array sweep for very large regions: per round, one
        ``bincount`` gives each link its unfrozen-user count, the lowest
        link-saturation level (or unreached rate cap) becomes the next
        water level, and every flow on a saturating link (or at its
        cap) freezes with one scatter."""
        np = _np
        S = self._nslots
        E = self._nedges
        L = self._nlinks
        rate_v = self._rate[:S]
        fcap = self._fcap[:S]
        llevel = self._llevel
        unf = np.zeros(S, dtype=bool)
        unf[linked] = True
        n_unf = len(linked)

        ef = self._eflow[:E]
        el = self._elink[:E]
        env_rate = np.where(unf, 0.0, rate_v)
        debit = np.bincount(el, weights=env_rate[ef], minlength=L)
        lrem = self._cap - debit
        np.maximum(lrem, 0.0, out=lrem)

        unf_f = unf.astype(np.float64)
        users0 = np.bincount(el, weights=unf_f[ef], minlength=L)
        for li in np.nonzero(users0 > 0.0)[0].tolist():
            llevel[li] = _INF
        lmark = np.zeros(L, dtype=np.float64)
        level = 0.0
        while n_unf:
            users = np.bincount(el, weights=unf_f[ef], minlength=L)
            has = users > 0.0
            with np.errstate(divide="ignore", invalid="ignore"):
                sat = lmark + lrem / users
            sat[~has] = _INF
            link_min = float(sat.min()) if L else _INF
            cap_min = float(np.where(unf, fcap, _INF).min())
            at = link_min if link_min <= cap_min else cap_min
            if at == _INF:  # pragma: no cover - defensive
                rate_v[unf] = _INF
                break
            if at < level:
                at = level
            # Advance every link's residual to the new water level.
            lrem -= (at - lmark) * users
            np.maximum(lrem, 0.0, out=lrem)
            lmark[has] = at
            freeze = fcap <= at
            sel = has & (sat <= at)
            if sel.any():
                hit = np.zeros(S, dtype=bool)
                hit[ef[sel[el]]] = True
                freeze = freeze | hit
                for li in np.nonzero(sel)[0].tolist():
                    llevel[li] = at
            freeze &= unf
            if not freeze.any():  # pragma: no cover - numerical guard
                # Nothing met the level exactly (float drift): force
                # the tightest link's users, mirroring the batch solver.
                li = int(np.argmin(sat))
                hit = np.zeros(S, dtype=bool)
                hit[ef[el == li]] = True
                freeze = hit & unf
                if not freeze.any():
                    break
                llevel[li] = at
            rate_v[freeze] = np.minimum(at, fcap[freeze])
            unf = unf & ~freeze
            unf_f[freeze] = 0.0
            n_unf = int(unf.sum())
            level = at
        self._rlist[:S] = rate_v.tolist()

    def _finish_solve(self, region: int) -> None:
        self._fresh.clear()
        self._seeds.clear()
        self._cap_seeds.clear()
        self._ndirty = 0
        # Refresh the per-link allocated-rate sums from the solved rates
        # (dead edges point at the zero-rate sink, contributing nothing).
        E = self._nedges
        self._lalloc = _np.bincount(
            self._elink[:E], weights=self._rate[self._eflow[:E]],
            minlength=self._nlinks)
        self._rates_dict = None
        if region:
            self.stats.components_resolved += 1
            self.stats.flows_resolved += region
            self.stats.flows_reused += len(self._flows) - region

    def _fill_heap(self, region_slots: List[int],
                   lflows: Dict[int, List[int]],
                   contrib: Dict[int, float]) -> None:
        """Heap-kernel progressive fill of a small rising region.

        The same bottleneck-freezing algorithm as
        ``IncrementalMaxMin._fill`` (lazy link-saturation heap plus a
        rate-cap heap), run over region-local dicts: for the small
        regions a typical simulator event perturbs, both the per-round
        numpy dispatches of the lock-step sweep and any full-length
        (all links / all edges) setup cost more than the whole fill.
        Per-link residuals are reconstructed from the maintained
        allocation sums: ``cap - lalloc`` is the slack left by the
        whole last allocation, and adding back the region's own old
        rates (``contrib``, accumulated by the region BFS) yields the
        capacity available to the rising set.
        """
        slinks = self._slinks
        slots = region_slots
        arr = _np.asarray(slots, dtype=_np.int64)
        fcaps = self._fcap[arr].tolist()
        cap_heap: List[Tuple[float, int]] = [
            (cap, s) for cap, s in zip(fcaps, slots) if cap != _INF]
        n_active = len(slots)

        touched = list(lflows)
        llevel = self._llevel
        for li in touched:
            # Refreshed below as links fire; a link that never fires
            # bottlenecks nobody in the new allocation.
            llevel[li] = _INF
        caps_l = self._cap[touched].tolist()
        allocs = self._lalloc[touched].tolist()
        lrem = self._f_rem
        lmark = self._f_mark
        lver = self._f_ver
        lrising = self._f_rising
        link_heap: List[Tuple[float, int, int]] = []
        for li, cap_l, alloc in zip(touched, caps_l, allocs):
            left = cap_l - alloc + contrib[li]
            if left < 0.0:
                left = 0.0
            n = len(lflows[li])
            lrem[li] = left
            lmark[li] = 0.0
            lver[li] = 1
            lrising[li] = n
            link_heap.append((left / n, 1, li))
        heapify(link_heap)
        heapify(cap_heap)

        frozen: set = set()
        out_slots: List[int] = []
        out_rates: List[float] = []
        level = 0.0
        #: Scratch: links touched by the flows of one freeze batch, with
        #: how many of their rising users froze.  Charging each link
        #: once per batch is algebraically identical to the sequential
        #: per-flow charge (after the first advance to the batch level,
        #: subsequent charges at the same level are zero).
        charges: Dict[int, int] = {}

        while n_active:
            while cap_heap and cap_heap[0][1] in frozen:
                heappop(cap_heap)
            cap_level = cap_heap[0][0] if cap_heap else _INF
            while link_heap:
                sat_level, ver, li = link_heap[0]
                if lver[li] == ver:
                    break
                heappop(link_heap)
                n = lrising[li]
                if n > 0:
                    left = lrem[li]
                    if left < 0.0:
                        left = 0.0
                    heappush(link_heap, (lmark[li] + left / n, lver[li], li))
            link_level = link_heap[0][0] if link_heap else _INF
            if cap_level == _INF and link_level == _INF:
                # pragma: no cover - defensive (no-link flows are
                # frozen before the fill)
                for s in slots:
                    if s not in frozen:
                        out_slots.append(s)
                        out_rates.append(_INF)
                break
            if cap_level <= link_level:
                cap, s = heappop(cap_heap)
                if level < cap:
                    level = cap
                frozen.add(s)
                out_slots.append(s)
                out_rates.append(cap)
                n_active -= 1
                for m in slinks[s]:
                    n = lrising[m]
                    left = lrem[m] - (level - lmark[m]) * n
                    lrem[m] = left if left > 0.0 else 0.0
                    lmark[m] = level
                    lrising[m] = n - 1
                    lver[m] += 1
            else:
                sat_level, _, li = heappop(link_heap)
                if level < sat_level:
                    level = sat_level
                llevel[li] = level
                charges.clear()
                charges_get = charges.get
                for s in lflows[li]:
                    if s in frozen:
                        continue
                    frozen.add(s)
                    out_slots.append(s)
                    out_rates.append(level)
                    n_active -= 1
                    for m in slinks[s]:
                        charges[m] = charges_get(m, 0) + 1
                for m, k in charges.items():
                    n = lrising[m]
                    left = lrem[m] - (level - lmark[m]) * n
                    lrem[m] = left if left > 0.0 else 0.0
                    lmark[m] = level
                    lrising[m] = n - k
                    lver[m] += 1
        self._rate[out_slots] = out_rates
        rlist = self._rlist
        for s, r in zip(out_slots, out_rates):
            rlist[s] = r
