"""ECMP-style routing over pre-enumerated equal-cost paths.

The paper assumes ECMP [RFC 2992]: each flow is hashed onto one of the
equal-cost shortest paths between its endpoints.  Topology builders hand
this router the full set of equal-cost paths; the router picks one per
flow with a deterministic hash of the flow's 5-tuple-like key, so runs
are reproducible and flows of the same key stay on the same path (flow
affinity, as with real ECMP).
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Tuple


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SinglePathRouter:
    """Always take the first equal-cost path (the no-ECMP ablation)."""

    def choose(
        self, paths: Sequence[Tuple[str, ...]], flow_key: str
    ) -> Tuple[str, ...]:
        if not paths:
            raise ValueError(f"no paths available for flow {flow_key!r}")
        return tuple(paths[0])


class EcmpRouter:
    """Pick one of several equal-cost paths by hashing a flow key."""

    def __init__(self, salt: str = "") -> None:
        self._salt = salt

    def choose(
        self, paths: Sequence[Tuple[str, ...]], flow_key: str
    ) -> Tuple[str, ...]:
        """Return the path selected for ``flow_key``.

        Raises ``ValueError`` for an empty path set: the caller is expected
        to only route between connected endpoints.
        """
        if not paths:
            raise ValueError(f"no paths available for flow {flow_key!r}")
        if len(paths) == 1:
            return tuple(paths[0])
        index = stable_hash(self._salt + flow_key) % len(paths)
        return tuple(paths[index])
